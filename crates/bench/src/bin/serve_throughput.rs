//! Closed-loop and pipelined TCP throughput benchmark for the
//! `rfid-serve` daemon, plus a multi-process consistent-hash router leg.
//!
//! Six legs, all over loopback TCP:
//!
//! 1. **Uncached closed-loop** — `--clients` threads, one request in
//!    flight each, cache disabled: every request solves.
//! 2. **Cached closed-loop** — identical sequence, cache enabled. The
//!    workload is production-ish skewed: 90% of requests cycle a small
//!    hot pool, 10% long tail with modest reuse (`TAIL_REUSE`).
//! 3. **Full-frame pipelined** — one raw connection, cache prewarmed,
//!    precomputed `Schedule` frames written in batches of
//!    [`PIPELINE_BATCH`] before any response is read. The server walks
//!    its full hot path per request: serde parse, canonicalise, hash,
//!    cache lookup, payload re-render.
//! 4. **Key pipelined** — byte-for-byte the same harness, but the
//!    precomputed frames are protocol-v4 `Key` frames. The server
//!    shallow-scans the key and splices pre-rendered payload bytes into
//!    the reply; the two legs differ *only* in the server-side path, so
//!    their ratio ([`KEY_SPEEDUP_FLOOR`]) is the fast path's price tag.
//! 5. **Router scaling** — shard daemons spawned as *separate
//!    processes* (`--shard-daemon`, a hidden self-exec flag), fronted
//!    by an in-process consistent-hash [`Router`]. Each leg first
//!    prewarms every shard cache through the router (untimed), then
//!    times warm passes over the job set — so 1-vs-2-shard compares
//!    *forwarding* capacity, not solver time (schema 3 pushed cold
//!    jobs and measured the solver instead). The report records the
//!    throughput ratio and the fleet-wide counter invariant
//!    (`hits + misses + coalesced == requests`) aggregated at the
//!    router.
//! 6. **Router key path** — the same prewarmed 2-shard fleet driven
//!    with `Key` frames, which the router forwards by shallow scan.
//!
//! Usage:
//!   serve_throughput [--quick] [--requests N] [--clients N] [--workers N]
//!                    [--out PATH]
//!   serve_throughput --check PATH   # validate an existing report
//!
//! `--check` re-validates a committed `BENCH_serve.json` (schema fields,
//! counter invariants, the pipelined floors, router scaling) without
//! re-running. The key-path floor is relative to the full-frame leg *in
//! the same report*, which makes it host-aware by construction — both
//! legs ran back-to-back on the same box. The scaling floor is
//! host-aware too: a healthy warm-forwarding ratio (≥
//! [`SCALING_FLOOR_MULTICORE`]) is demanded only of reports generated
//! on ≥ 4 CPUs — on a 1-core box three CPU-bound processes time-slice
//! one core and the honest ratio is ~1.0, so the floor there is "adding
//! a shard must not collapse throughput" (≥ [`SCALING_FLOOR_1CORE`]).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rfid_model::{RadiusModel, Scenario, ScenarioKind};
use rfid_serve::protocol::encode_frame;
use rfid_serve::{
    JobSpec, Request, Router, RouterConfig, ServeConfig, Server, TcpClient, Workload,
    PROTOCOL_VERSION,
};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hot-pool size: 90% of requests cycle over this many distinct jobs.
const POPULAR_POOL: usize = 8;
/// Each long-tail job is requested this many times in total.
const TAIL_REUSE: usize = 4;
/// Acceptance floor for the cached-vs-uncached speedup. The MCS hot-path
/// rework cut cold-solve latency by an order of magnitude, which
/// compresses this ratio (the cache saves ~3 ms/solve now, not ~30) —
/// the floor guards against the cache *stopping to matter*, not against
/// the solver getting faster.
const SPEEDUP_FLOOR: f64 = 3.0;
/// Acceptance floor for the full-frame pipelined leg (req/s).
const PIPELINED_FLOOR: f64 = 10_000.0;
/// Acceptance floor for the key pipelined leg, as a multiple of the
/// full-frame pipelined leg in the same report. Relative rather than
/// absolute so it holds on any host: both legs share the harness and
/// the box, and the only difference is the server-side request path.
const KEY_SPEEDUP_FLOOR: f64 = 3.0;
/// Requests written per pipelined batch (under the reactor's
/// per-connection backpressure cap).
const PIPELINE_BATCH: usize = 256;
/// Timed warm passes over the router job set per router leg.
const ROUTER_PASSES: usize = 16;
/// Router scaling floor on hosts with ≥ 4 CPUs. Warm forwarding splits
/// the per-request work between the router (parse + forward) and the
/// shard (parse + canonicalise + render); with the shard the heavier
/// half, a second shard process must buy real throughput before the
/// router serialises.
const SCALING_FLOOR_MULTICORE: f64 = 1.2;
/// Router scaling floor on smaller hosts: no collapse.
const SCALING_FLOOR_1CORE: f64 = 0.6;
/// Workers per shard *process* in the router legs — deliberately below
/// a multicore host's CPU count so each shard is capacity-limited and
/// adding a second shard has headroom to scale into.
const SHARD_WORKERS: usize = 2;

#[derive(Debug, Serialize, Deserialize)]
struct Leg {
    cache_cap: usize,
    wall_ms: f64,
    requests_per_sec: f64,
    /// Client-observed per-request latency percentiles (ms).
    latency_p50_ms: f64,
    latency_p95_ms: f64,
    latency_p99_ms: f64,
    /// Server-side counters after the leg.
    cache_hits: u64,
    cache_misses: u64,
    /// Requests coalesced onto an identical in-flight solve.
    coalesced: u64,
    solved: u64,
    errors: u64,
}

/// One single-connection pipelined leg (cache prewarmed outside the
/// timed window; frames precomputed so the client's only timed work is
/// write/read syscalls and the two modes differ solely in the
/// server-side path).
#[derive(Debug, Serialize, Deserialize)]
struct PipelinedLeg {
    /// `"full-frame"` (`Schedule` frames) or `"key"` (v4 `Key` frames).
    mode: String,
    requests: usize,
    batch: usize,
    wall_ms: f64,
    requests_per_sec: f64,
    /// Per-reply latency percentiles (ms), measured from each batch's
    /// last written byte to the reply line coming back. Pipelined
    /// latency is queueing-dominated — position in the batch, not
    /// server work, sets the tail — so read these as "time to drain a
    /// [`PIPELINE_BATCH`] burst", comparable across modes.
    latency_p50_ms: f64,
    latency_p95_ms: f64,
    latency_p99_ms: f64,
    /// Admitted requests per the server (timed window + prewarm).
    admitted: u64,
    cache_hits: u64,
    cache_misses: u64,
    coalesced: u64,
    errors: u64,
}

/// One router leg: `shards` daemon *processes* behind one router, every
/// shard cache prewarmed through the router before the timed window.
#[derive(Debug, Serialize, Deserialize)]
struct RouterLeg {
    shards: usize,
    /// `"full-frame"` or `"key"` — what the timed window sent.
    mode: String,
    /// Untimed cold solves pushed through the router to warm the
    /// shards (= the distinct job count).
    prewarm_requests: u64,
    /// Timed warm requests (`passes` passes over the jobs).
    timed_requests: u64,
    wall_ms: f64,
    requests_per_sec: f64,
    /// Fleet-wide counters aggregated by the router after the leg
    /// (prewarm + timed window).
    fleet_requests: u64,
    fleet_hits: u64,
    fleet_misses: u64,
    fleet_coalesced: u64,
    fleet_solved: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct RouterScaling {
    /// Distinct jobs prewarmed into each leg's fleet.
    jobs: usize,
    /// Timed passes over the job set per leg.
    passes: usize,
    one_shard: RouterLeg,
    two_shards: RouterLeg,
    /// The prewarmed 2-shard fleet driven with v4 `Key` frames.
    two_shards_key: RouterLeg,
    /// `two_shards.requests_per_sec / one_shard.requests_per_sec`.
    scaling: f64,
}

/// Nearest-rank percentile over an already-sorted sample (ms).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    bench: String,
    schema_version: u32,
    /// CPUs available where the report was generated — the router
    /// scaling floor is judged against this.
    host_cpus: usize,
    requests: usize,
    clients: usize,
    workers: usize,
    distinct_jobs: usize,
    nominal_popular_pct: f64,
    measured_hit_rate: f64,
    cached: Leg,
    uncached: Leg,
    speedup: f64,
    pipelined: PipelinedLeg,
    pipelined_key: PipelinedLeg,
    /// `pipelined_key.requests_per_sec / pipelined.requests_per_sec`.
    key_speedup: f64,
    router: RouterScaling,
}

fn job(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(Workload::Generated {
        scenario: Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 48,
            n_tags: 576,
            region_side: 105.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        },
        seed,
    });
    spec.algorithm = "alg1".to_string();
    spec
}

/// The pipelined legs' hot job: a compact deployment so the measurement
/// is transport-and-cache-bound rather than payload-size-bound (the
/// closed-loop legs keep the full-size [`job`]). Interactive planners
/// polling a dashboard look like this: small scenario, high repeat rate.
fn compact_job(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(Workload::Generated {
        scenario: Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 12,
            n_tags: 72,
            region_side: 52.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        },
        seed,
    });
    spec.algorithm = "alg1".to_string();
    spec
}

/// The 90/10 request sequence: popular seeds are `0..POPULAR_POOL`, the
/// long tail starts at 1000 with every tail seed repeated `TAIL_REUSE`
/// times; the merged sequence is shuffled deterministically.
fn request_sequence(total: usize) -> (Vec<JobSpec>, usize) {
    let popular = total * 9 / 10;
    let tail = total - popular;
    let tail_distinct = tail.div_ceil(TAIL_REUSE);
    let mut seeds = Vec::with_capacity(total);
    for i in 0..popular {
        seeds.push((i % POPULAR_POOL) as u64);
    }
    for i in 0..tail {
        seeds.push(1000 + (i / TAIL_REUSE) as u64);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(0x5eed);
    for i in (1..seeds.len()).rev() {
        let j = rng.random_range(0..=i);
        seeds.swap(i, j);
    }
    let distinct = POPULAR_POOL.min(popular.max(1)) + tail_distinct;
    (seeds.into_iter().map(job).collect(), distinct)
}

/// Closed-loop hammer: `clients` threads pull from the shared sequence
/// and send one request at a time to `addr`. Returns wall time and the
/// per-request latencies.
fn hammer(addr: &str, sequence: &Arc<Vec<JobSpec>>, clients: usize) -> (Duration, Vec<f64>) {
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let sequence = Arc::clone(sequence);
            let next = Arc::clone(&next);
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut client = TcpClient::connect(&addr).expect("connect");
                let mut latencies_ms = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(spec) = sequence.get(i) else {
                        break latencies_ms;
                    };
                    let sent = Instant::now();
                    client.schedule(spec, None).expect("schedule");
                    latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                }
            })
        })
        .collect();
    let mut latencies_ms = Vec::with_capacity(sequence.len());
    for t in threads {
        latencies_ms.extend(t.join().expect("client thread"));
    }
    (start.elapsed(), latencies_ms)
}

/// Closed-loop hammer over v4 `Key` frames: every request must come
/// back as a warm cache hit (the keys were prewarmed).
fn hammer_keys(addr: &str, sequence: &Arc<Vec<String>>, clients: usize) -> Duration {
    let next = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let sequence = Arc::clone(sequence);
            let next = Arc::clone(&next);
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let mut client = TcpClient::connect(&addr).expect("connect");
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(key) = sequence.get(i) else {
                        break;
                    };
                    let reply = client.schedule_by_key(key, &[]).expect("key request");
                    assert!(reply.cached, "prewarmed key {key} answered uncached");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    start.elapsed()
}

/// One closed-loop leg against a fresh in-process daemon.
fn run_leg(sequence: &Arc<Vec<JobSpec>>, clients: usize, workers: usize, cache_cap: usize) -> Leg {
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            workers,
            queue_cap: 4096,
            cache_cap,
            cache_ttl: None,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let (wall, mut latencies_ms) = hammer(&server.addr().to_string(), sequence, clients);
    let stats = server.service().stats();
    server.shutdown();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    Leg {
        cache_cap,
        wall_ms: wall.as_secs_f64() * 1e3,
        requests_per_sec: sequence.len() as f64 / wall.as_secs_f64(),
        latency_p50_ms: percentile(&latencies_ms, 50.0),
        latency_p95_ms: percentile(&latencies_ms, 95.0),
        latency_p99_ms: percentile(&latencies_ms, 99.0),
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        coalesced: stats.coalesced,
        solved: stats.solved,
        errors: stats.errors,
    }
}

/// Writes precomputed request lines in batches over one raw TCP
/// connection, reading all replies between batches. Returns wall time
/// and per-reply latencies (measured from the batch write). Replies are
/// sanity-checked to be `Schedule` frames but deliberately not parsed:
/// both pipelined modes pay identical client-side costs, so the mode
/// delta isolates the server's request path.
fn raw_pipelined(addr: &str, lines: &[String], total: usize, batch: usize) -> (Duration, Vec<f64>) {
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = std::io::BufReader::new(stream);
    let mut latencies_ms = Vec::with_capacity(total);
    let mut reply = String::new();
    let start = Instant::now();
    let mut done = 0usize;
    while done < total {
        let n = batch.min(total - done);
        let mut wire = String::new();
        for i in 0..n {
            wire.push_str(&lines[(done + i) % lines.len()]);
        }
        writer.write_all(wire.as_bytes()).expect("batch write");
        let sent = Instant::now();
        for _ in 0..n {
            reply.clear();
            let read = reader.read_line(&mut reply).expect("batch reply");
            assert!(read > 0, "server closed mid-batch");
            assert!(
                reply.starts_with("{\"Schedule\""),
                "unexpected reply: {}",
                reply.trim_end()
            );
            latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
        }
        done += n;
    }
    (start.elapsed(), latencies_ms)
}

/// One pipelined leg: prewarm the hot pool through a normal client,
/// then drive `total` precomputed frames through [`raw_pipelined`].
/// `key_mode` swaps the precomputed frames from full `Schedule` frames
/// to v4 `Key` frames addressing the prewarmed entries.
fn run_pipelined_leg(key_mode: bool, total: usize, workers: usize) -> PipelinedLeg {
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            workers,
            queue_cap: 4096,
            cache_cap: 1024,
            cache_ttl: None,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr().to_string();
    let pool: Vec<JobSpec> = (0..POPULAR_POOL).map(|s| compact_job(s as u64)).collect();
    let mut keys = Vec::with_capacity(pool.len());
    {
        let mut client = TcpClient::connect(&addr).expect("connect");
        for spec in &pool {
            keys.push(client.schedule(spec, None).expect("prewarm").key);
        }
    }
    let lines: Vec<String> = if key_mode {
        keys.iter()
            .map(|key| {
                encode_frame(&Request::Key {
                    key: key.clone(),
                    ops: None,
                    request_id: None,
                    v: Some(PROTOCOL_VERSION),
                })
            })
            .collect()
    } else {
        pool.iter()
            .map(|job| {
                encode_frame(&Request::Schedule {
                    job: job.clone(),
                    deadline_ms: None,
                    request_id: None,
                    v: Some(PROTOCOL_VERSION),
                })
            })
            .collect()
    };
    let (wall, mut latencies_ms) = raw_pipelined(&addr, &lines, total, PIPELINE_BATCH);
    let stats = server.service().stats();
    server.shutdown();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    PipelinedLeg {
        mode: if key_mode { "key" } else { "full-frame" }.to_string(),
        requests: total,
        batch: PIPELINE_BATCH,
        wall_ms: wall.as_secs_f64() * 1e3,
        requests_per_sec: total as f64 / wall.as_secs_f64(),
        latency_p50_ms: percentile(&latencies_ms, 50.0),
        latency_p95_ms: percentile(&latencies_ms, 95.0),
        latency_p99_ms: percentile(&latencies_ms, 99.0),
        admitted: stats.requests,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        coalesced: stats.coalesced,
        errors: stats.errors,
    }
}

/// Spawns one shard daemon as a child *process* (self-exec with the
/// hidden `--shard-daemon` flag) and returns its handle plus the bound
/// address it announced on stdout.
fn spawn_shard(workers: usize) -> (std::process::Child, String) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .args(["--shard-daemon", "--workers", &workers.to_string()])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .expect("spawn shard daemon");
    let stdout = child.stdout.take().expect("child stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read shard address");
    let addr = line
        .trim()
        .strip_prefix("listening ")
        .expect("shard announced its address")
        .to_string();
    (child, addr)
}

/// The hidden child entry point: run one daemon, announce the bound
/// address, block until a shutdown frame.
fn shard_daemon_main(workers: usize) -> ! {
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            workers,
            queue_cap: 4096,
            cache_cap: 1024,
            cache_ttl: None,
            ..ServeConfig::default()
        },
    )
    .expect("bind shard");
    println!("listening {}", server.addr());
    std::io::stdout().flush().expect("flush address");
    server.run_until_shutdown();
    std::process::exit(0);
}

/// One router leg: `n_shards` daemon processes behind a fresh router.
/// Every job is first solved once *through the router* (untimed) so the
/// shard caches are warm, then `passes` passes over the job set are
/// timed — as full `Schedule` frames, or as v4 `Key` frames when
/// `key_mode` is set.
fn run_router_leg(
    n_shards: usize,
    jobs: &Arc<Vec<JobSpec>>,
    clients: usize,
    passes: usize,
    key_mode: bool,
) -> RouterLeg {
    let mut children = Vec::with_capacity(n_shards);
    let mut addrs = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let (child, addr) = spawn_shard(SHARD_WORKERS);
        children.push(child);
        addrs.push(addr);
    }
    let router = Router::start(
        "127.0.0.1:0",
        RouterConfig {
            shards: addrs.clone(),
            ..RouterConfig::default()
        },
    )
    .expect("start router");
    let router_addr = router.addr().to_string();
    // Prewarm: one cold solve per job, sequentially through the router,
    // collecting each job's content key for the key-mode timed window.
    let mut keys = Vec::with_capacity(jobs.len());
    {
        let mut client = TcpClient::connect(&router_addr).expect("prewarm connect");
        for spec in jobs.iter() {
            keys.push(client.schedule(spec, None).expect("prewarm").key);
        }
    }
    let timed_total = jobs.len() * passes;
    let wall = if key_mode {
        let sequence: Vec<String> = (0..timed_total)
            .map(|i| keys[i % keys.len()].clone())
            .collect();
        hammer_keys(&router_addr, &Arc::new(sequence), clients)
    } else {
        let sequence: Vec<JobSpec> = (0..timed_total)
            .map(|i| jobs[i % jobs.len()].clone())
            .collect();
        hammer(&router_addr, &Arc::new(sequence), clients).0
    };
    let mut stats_client = TcpClient::connect(&router_addr).expect("stats connect");
    let (fleet, _metrics) = stats_client.stats().expect("aggregated stats");
    drop(stats_client);
    router.shutdown();
    for addr in &addrs {
        let mut c = TcpClient::connect(addr).expect("connect shard for shutdown");
        c.shutdown_server().expect("shard shutdown");
    }
    for mut child in children {
        child.wait().expect("shard exit");
    }
    RouterLeg {
        shards: n_shards,
        mode: if key_mode { "key" } else { "full-frame" }.to_string(),
        prewarm_requests: jobs.len() as u64,
        timed_requests: timed_total as u64,
        wall_ms: wall.as_secs_f64() * 1e3,
        requests_per_sec: timed_total as f64 / wall.as_secs_f64(),
        fleet_requests: fleet.requests,
        fleet_hits: fleet.cache_hits,
        fleet_misses: fleet.cache_misses,
        fleet_coalesced: fleet.coalesced,
        fleet_solved: fleet.solved,
    }
}

fn check(path: &str) -> Result<(), String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let report: Report = serde_json::from_str(&body).map_err(|e| format!("parse {path}: {e}"))?;
    if report.bench != "serve_throughput" {
        return Err(format!("unexpected bench name {:?}", report.bench));
    }
    if report.schema_version < 4 {
        return Err(format!(
            "schema version {} predates the key-path legs",
            report.schema_version
        ));
    }
    if report.cached.errors != 0 || report.uncached.errors != 0 {
        return Err("request errors recorded in a closed-loop leg".into());
    }
    let total = report.cached.cache_hits + report.cached.cache_misses + report.cached.coalesced;
    if total != report.requests as u64 {
        return Err(format!(
            "cached leg hits+misses+coalesced ({total}) disagree with requests ({})",
            report.requests
        ));
    }
    for leg in [&report.cached, &report.uncached] {
        if !(leg.latency_p50_ms <= leg.latency_p95_ms && leg.latency_p95_ms <= leg.latency_p99_ms) {
            return Err(format!(
                "latency percentiles out of order (p50 {} / p95 {} / p99 {})",
                leg.latency_p50_ms, leg.latency_p95_ms, leg.latency_p99_ms
            ));
        }
        if leg.latency_p99_ms <= 0.0 {
            return Err("non-positive p99 latency".into());
        }
    }
    if !(0.0..=1.0).contains(&report.measured_hit_rate) {
        return Err(format!(
            "hit rate {} out of range",
            report.measured_hit_rate
        ));
    }
    if report.speedup < SPEEDUP_FLOOR {
        return Err(format!(
            "speedup {:.2}× below the {SPEEDUP_FLOOR}× floor",
            report.speedup
        ));
    }
    // Pipelined legs: counter invariants, latency ordering, and the two
    // floors — an absolute full-frame floor (the single-daemon
    // acceptance number) and the key leg's relative floor against the
    // full-frame leg of the *same report* (same harness, same host).
    for p in [&report.pipelined, &report.pipelined_key] {
        if p.errors != 0 {
            return Err(format!(
                "request errors recorded in the {} pipelined leg",
                p.mode
            ));
        }
        if p.cache_hits + p.cache_misses + p.coalesced != p.admitted {
            return Err(format!(
                "{} pipelined leg hits+misses+coalesced ({}) disagree with admitted ({})",
                p.mode,
                p.cache_hits + p.cache_misses + p.coalesced,
                p.admitted
            ));
        }
        if !(p.latency_p50_ms <= p.latency_p95_ms && p.latency_p95_ms <= p.latency_p99_ms) {
            return Err(format!(
                "{} pipelined latency percentiles out of order (p50 {} / p95 {} / p99 {})",
                p.mode, p.latency_p50_ms, p.latency_p95_ms, p.latency_p99_ms
            ));
        }
        if p.latency_p99_ms <= 0.0 {
            return Err(format!("non-positive {} pipelined p99 latency", p.mode));
        }
        // Every timed pipelined request hits the prewarmed pool.
        if p.cache_hits < p.requests as u64 {
            return Err(format!(
                "{} pipelined leg recorded {} hits for {} warm requests",
                p.mode, p.cache_hits, p.requests
            ));
        }
    }
    if report.pipelined.requests_per_sec < PIPELINED_FLOOR {
        return Err(format!(
            "pipelined full-frame leg {:.0} req/s below the {PIPELINED_FLOOR:.0} req/s floor",
            report.pipelined.requests_per_sec
        ));
    }
    let key_ratio = report.pipelined_key.requests_per_sec / report.pipelined.requests_per_sec;
    if key_ratio < KEY_SPEEDUP_FLOOR {
        return Err(format!(
            "key pipelined leg {:.0} req/s is only {key_ratio:.2}× the full-frame leg \
             ({:.0} req/s) — below the {KEY_SPEEDUP_FLOOR}× floor",
            report.pipelined_key.requests_per_sec, report.pipelined.requests_per_sec
        ));
    }
    // Router legs: the fleet-wide invariant must survive aggregation,
    // and the timed window must have been pure warm forwarding — every
    // timed request a hit, every miss confined to the prewarm.
    let r = &report.router;
    for leg in [&r.one_shard, &r.two_shards, &r.two_shards_key] {
        if leg.fleet_hits + leg.fleet_misses + leg.fleet_coalesced != leg.fleet_requests {
            return Err(format!(
                "router leg ({} shards, {}): fleet hits+misses+coalesced ({}) disagree with requests ({})",
                leg.shards,
                leg.mode,
                leg.fleet_hits + leg.fleet_misses + leg.fleet_coalesced,
                leg.fleet_requests
            ));
        }
        if leg.fleet_requests != leg.prewarm_requests + leg.timed_requests {
            return Err(format!(
                "router leg ({} shards, {}) admitted {} of {} prewarm + {} timed requests",
                leg.shards, leg.mode, leg.fleet_requests, leg.prewarm_requests, leg.timed_requests
            ));
        }
        if leg.fleet_hits != leg.timed_requests {
            return Err(format!(
                "router leg ({} shards, {}): {} fleet hits for {} warm timed requests — \
                 the timed window was not forwarding-bound",
                leg.shards, leg.mode, leg.fleet_hits, leg.timed_requests
            ));
        }
        if leg.prewarm_requests != r.jobs as u64 || leg.timed_requests != (r.jobs * r.passes) as u64
        {
            return Err(format!(
                "router leg ({} shards, {}) ran {}+{} requests for {} jobs × {} passes",
                leg.shards, leg.mode, leg.prewarm_requests, leg.timed_requests, r.jobs, r.passes
            ));
        }
    }
    let scaling_floor = if report.host_cpus >= 4 {
        SCALING_FLOOR_MULTICORE
    } else {
        SCALING_FLOOR_1CORE
    };
    if r.scaling < scaling_floor {
        return Err(format!(
            "router scaling {:.2}× below the {scaling_floor:.2}× floor for a {}-CPU host",
            r.scaling, report.host_cpus
        ));
    }
    println!(
        "OK: {} requests, hit rate {:.1}%, speedup {:.1}×, pipelined {:.0} req/s, \
         key {:.0} req/s ({:.1}×), router scaling {:.2}× ({} CPUs)",
        report.requests,
        report.measured_hit_rate * 100.0,
        report.speedup,
        report.pipelined.requests_per_sec,
        report.pipelined_key.requests_per_sec,
        key_ratio,
        r.scaling,
        report.host_cpus
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut requests: Option<usize> = None;
    let mut clients = 8usize;
    let mut workers = 4usize;
    let mut out = "results/BENCH_serve.json".to_string();
    let mut shard_daemon = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--shard-daemon" => shard_daemon = true,
            "--requests" => {
                requests = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--requests N"),
                )
            }
            "--clients" => {
                clients = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--clients N")
            }
            "--workers" => {
                workers = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers N")
            }
            "--out" => out = iter.next().expect("--out PATH").clone(),
            "--check" => {
                let path = iter.next().expect("--check PATH");
                if let Err(e) = check(path) {
                    eprintln!("FAIL: {e}");
                    std::process::exit(1);
                }
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if shard_daemon {
        shard_daemon_main(workers);
    }
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let total = requests.unwrap_or(if quick { 120 } else { 400 });
    let (sequence, distinct) = request_sequence(total);
    let sequence = Arc::new(sequence);
    eprintln!(
        "serve_throughput: {total} requests ({distinct} distinct), {clients} clients, {workers} workers, {host_cpus} CPUs"
    );

    eprintln!("leg 1/6: cache disabled (every request solves)");
    let uncached = run_leg(&sequence, clients, workers, 0);
    eprintln!(
        "  {:.0} req/s ({:.0} ms, {} solved, p50/p95/p99 {:.2}/{:.2}/{:.2} ms)",
        uncached.requests_per_sec,
        uncached.wall_ms,
        uncached.solved,
        uncached.latency_p50_ms,
        uncached.latency_p95_ms,
        uncached.latency_p99_ms
    );
    eprintln!("leg 2/6: cache enabled");
    let cached = run_leg(&sequence, clients, workers, 1024);
    eprintln!(
        "  {:.0} req/s ({:.0} ms, {} solved, {} hits, p50/p95/p99 {:.2}/{:.2}/{:.2} ms)",
        cached.requests_per_sec,
        cached.wall_ms,
        cached.solved,
        cached.cache_hits,
        cached.latency_p50_ms,
        cached.latency_p95_ms,
        cached.latency_p99_ms
    );

    let pipelined_total = if quick { 5_000 } else { 30_000 };
    eprintln!("leg 3/6: full-frame pipelined ({pipelined_total} requests, one connection)");
    let pipelined = run_pipelined_leg(false, pipelined_total, workers);
    eprintln!(
        "  {:.0} req/s ({:.0} ms, {} hits, p50/p95/p99 {:.2}/{:.2}/{:.2} ms)",
        pipelined.requests_per_sec,
        pipelined.wall_ms,
        pipelined.cache_hits,
        pipelined.latency_p50_ms,
        pipelined.latency_p95_ms,
        pipelined.latency_p99_ms
    );
    eprintln!("leg 4/6: key pipelined ({pipelined_total} requests, one connection)");
    let pipelined_key = run_pipelined_leg(true, pipelined_total, workers);
    eprintln!(
        "  {:.0} req/s ({:.0} ms, {} hits, p50/p95/p99 {:.2}/{:.2}/{:.2} ms)",
        pipelined_key.requests_per_sec,
        pipelined_key.wall_ms,
        pipelined_key.cache_hits,
        pipelined_key.latency_p50_ms,
        pipelined_key.latency_p95_ms,
        pipelined_key.latency_p99_ms
    );

    let router_jobs = if quick { 24 } else { 64 };
    let router_passes = if quick { 8 } else { ROUTER_PASSES };
    let jobs: Vec<JobSpec> = (0..router_jobs).map(|i| job(5000 + i as u64)).collect();
    let jobs = Arc::new(jobs);
    eprintln!(
        "leg 5/6: router scaling ({router_jobs} prewarmed jobs × {router_passes} passes, \
         {SHARD_WORKERS}-worker shard processes)"
    );
    let one_shard = run_router_leg(1, &jobs, clients, router_passes, false);
    eprintln!(
        "  1 shard:  {:.0} req/s ({:.0} ms)",
        one_shard.requests_per_sec, one_shard.wall_ms
    );
    let two_shards = run_router_leg(2, &jobs, clients, router_passes, false);
    eprintln!(
        "  2 shards: {:.0} req/s ({:.0} ms)",
        two_shards.requests_per_sec, two_shards.wall_ms
    );
    eprintln!("leg 6/6: router key path (2 shards, v4 Key frames)");
    let two_shards_key = run_router_leg(2, &jobs, clients, router_passes, true);
    eprintln!(
        "  2 shards: {:.0} req/s ({:.0} ms)",
        two_shards_key.requests_per_sec, two_shards_key.wall_ms
    );
    let router = RouterScaling {
        jobs: router_jobs,
        passes: router_passes,
        scaling: two_shards.requests_per_sec / one_shard.requests_per_sec,
        one_shard,
        two_shards,
        two_shards_key,
    };

    // Coalesced followers are served from the shared in-flight solve —
    // they count toward the reuse rate alongside true cache hits.
    let measured_hit_rate = (cached.cache_hits + cached.coalesced) as f64
        / (cached.cache_hits + cached.cache_misses + cached.coalesced).max(1) as f64;
    let report = Report {
        bench: "serve_throughput".to_string(),
        schema_version: 4,
        host_cpus,
        requests: total,
        clients,
        workers,
        distinct_jobs: distinct,
        nominal_popular_pct: 90.0,
        measured_hit_rate,
        speedup: cached.requests_per_sec / uncached.requests_per_sec,
        key_speedup: pipelined_key.requests_per_sec / pipelined.requests_per_sec,
        cached,
        uncached,
        pipelined,
        pipelined_key,
        router,
    };
    println!(
        "speedup: {:.1}× (hit rate {:.1}%), pipelined {:.0} req/s, key {:.0} req/s ({:.1}×), \
         router scaling {:.2}×",
        report.speedup,
        report.measured_hit_rate * 100.0,
        report.pipelined.requests_per_sec,
        report.pipelined_key.requests_per_sec,
        report.key_speedup,
        report.router.scaling
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write report");
    eprintln!("wrote {out}");
    if !quick {
        if report.speedup < SPEEDUP_FLOOR {
            eprintln!(
                "WARNING: speedup {:.2}× below the {SPEEDUP_FLOOR}× acceptance floor",
                report.speedup
            );
            std::process::exit(1);
        }
        if report.key_speedup < KEY_SPEEDUP_FLOOR {
            eprintln!(
                "WARNING: key-path speedup {:.2}× below the {KEY_SPEEDUP_FLOOR}× acceptance floor",
                report.key_speedup
            );
            std::process::exit(1);
        }
    }
}
