//! Scalability experiment — the paper's closing claim, tested.
//!
//! "All the algorithms proposed in this paper are well suited for
//! practical implementation … especially for large scale RFID systems."
//! This binary grows the deployment at constant density (24 tags per
//! reader, region scaled so the mean interference degree stays flat) and
//! measures one-shot weight and wall-clock per scheduler, plus Algorithm
//! 3's message volume — the quantities that must stay sane for the claim
//! to hold.

use rfid_core::{make_scheduler, AlgorithmKind, OneShotInput};
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, RadiusModel, Scenario, ScenarioKind, TagSet};
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[25, 50]
    } else {
        &[25, 50, 100, 200, 400]
    };
    const TRIALS: u64 = 3;
    println!("## Scalability — constant density (region side ∝ √n, 24 tags/reader)\n");
    println!("| n readers | algorithm | one-shot weight | runtime ms | msgs (alg3) |");
    println!("|---|---|---|---|---|");
    for &n in sizes {
        // side ∝ √n keeps reader density (and the interference degree)
        // constant: 50 readers ↔ 100×100.
        let side = 100.0 * (n as f64 / 50.0).sqrt();
        let scenario = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: n,
            n_tags: n * 24,
            region_side: side,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        };
        for kind in AlgorithmKind::paper_lineup() {
            let mut weight = 0.0;
            let mut ms = 0.0;
            let mut msgs: Option<u64> = None;
            for seed in 0..TRIALS {
                let d = scenario.generate(seed);
                let c = Coverage::build(&d);
                let g = interference_graph(&d);
                let unread = TagSet::all_unread(d.n_tags());
                let input = OneShotInput::new(&d, &c, &g, &unread);
                let mut s = make_scheduler(kind, seed);
                let t0 = Instant::now();
                let set = s.schedule(&input);
                ms += t0.elapsed().as_secs_f64() * 1e3;
                assert!(d.is_feasible(&set));
                weight += input.weight_of(&set) as f64;
                if let Some(stats) = s.comm_stats() {
                    *msgs.get_or_insert(0) += stats.messages;
                }
            }
            let t = TRIALS as f64;
            println!(
                "| {n} | {} | {:.0} | {:.1} | {} |",
                kind.label(),
                weight / t,
                ms / t,
                msgs.map_or("—".to_string(), |m| format!("{:.0}", m as f64 / t)),
            );
        }
    }
}
