//! MCS engine scaling benchmark — the tracked perf trajectory.
//!
//! Runs the full greedy covering schedule end to end at constant reader
//! density (the paper's 50 readers / 100×100 region, 24 tags per reader)
//! for n ∈ {200, 1000, 5000} and emits a machine-readable
//! `BENCH_mcs.json` with wall time and slots/sec per (size, algorithm).
//!
//! The committed `results/BENCH_mcs_seed.json` is the pre-optimisation
//! baseline recorded by this same binary; every later PR regenerates
//! `results/BENCH_mcs.json` and compares against it (see EXPERIMENTS.md).
//!
//! Usage:
//!   mcs_scaling [--quick] [--sizes 200,1000] [--trials N] [--out PATH]
//!   mcs_scaling --check PATH    # validate an existing BENCH_mcs.json
//!
//! `--quick` restricts to n = 200 (the CI perf-smoke configuration).

use rfid_core::{greedy_covering_schedule, make_scheduler, AlgorithmKind};
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, RadiusModel, Scenario, ScenarioKind};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// Paper density: 50 readers in a 100×100 region, 24 tags per reader.
const BASE_READERS: f64 = 50.0;
const BASE_REGION: f64 = 100.0;
const TAGS_PER_READER: usize = 24;
const LAMBDA_INTERFERENCE: f64 = 14.0;
const LAMBDA_INTERROGATION: f64 = 6.0;

/// One (size, algorithm) measurement.
#[derive(Debug, Serialize, Deserialize)]
struct Entry {
    n_readers: usize,
    n_tags: usize,
    algorithm: String,
    trials: usize,
    /// Covering-schedule size (slots), identical across trials.
    slots: usize,
    tags_served: usize,
    fallback_slots: usize,
    /// Mean wall time of `greedy_covering_schedule` alone.
    schedule_wall_ms: f64,
    /// Mean wall time including deployment + coverage + graph build.
    total_wall_ms: f64,
    slots_per_sec: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    bench: String,
    schema_version: u32,
    tags_per_reader: usize,
    lambda_interference: f64,
    lambda_interrogation: f64,
    entries: Vec<Entry>,
}

/// Constant-density scaling: the region side grows with √n so local
/// structure (degree, tags per interrogation disk) matches the paper's
/// evaluation scenario at every size.
fn scenario(n_readers: usize) -> Scenario {
    Scenario {
        kind: ScenarioKind::UniformRandom,
        n_readers,
        n_tags: n_readers * TAGS_PER_READER,
        region_side: BASE_REGION * (n_readers as f64 / BASE_READERS).sqrt(),
        radius_model: RadiusModel::PoissonPair {
            lambda_interference: LAMBDA_INTERFERENCE,
            lambda_interrogation: LAMBDA_INTERROGATION,
        },
    }
}

fn measure(n_readers: usize, kind: AlgorithmKind, trials: usize) -> Entry {
    let mut schedule_ms = 0.0;
    let mut total_ms = 0.0;
    let mut slots = 0;
    let mut tags_served = 0;
    let mut fallback_slots = 0;
    for trial in 0..trials {
        let seed = 42 + trial as u64;
        let total_start = Instant::now();
        let deployment = scenario(n_readers).generate(seed);
        let coverage = Coverage::build(&deployment);
        let graph = interference_graph(&deployment);
        let mut scheduler = make_scheduler(kind, seed ^ 0x5eed);
        let start = Instant::now();
        let schedule = greedy_covering_schedule(
            &deployment,
            &coverage,
            &graph,
            scheduler.as_mut(),
            1_000_000,
        );
        schedule_ms += start.elapsed().as_secs_f64() * 1e3;
        total_ms += total_start.elapsed().as_secs_f64() * 1e3;
        // The schedule is deterministic per seed; keep the last trial's.
        slots = schedule.size();
        tags_served = schedule.tags_served();
        fallback_slots = schedule.fallback_slots();
    }
    let schedule_wall_ms = schedule_ms / trials as f64;
    Entry {
        n_readers,
        n_tags: n_readers * TAGS_PER_READER,
        algorithm: kind.label().to_string(),
        trials,
        slots,
        tags_served,
        fallback_slots,
        schedule_wall_ms,
        total_wall_ms: total_ms / trials as f64,
        slots_per_sec: slots as f64 / (schedule_wall_ms / 1e3),
    }
}

/// Validates a BENCH_mcs.json: parses, checks the schema and that every
/// entry carries positive wall times. Exits non-zero on failure so CI can
/// gate on it.
fn check(path: &PathBuf) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let report: Report =
        serde_json::from_str(&text).map_err(|e| format!("malformed {path:?}: {e}"))?;
    if report.bench != "mcs_scaling" {
        return Err(format!("wrong bench name {:?}", report.bench));
    }
    if report.schema_version != 1 {
        return Err(format!("unknown schema_version {}", report.schema_version));
    }
    if report.entries.is_empty() {
        return Err("no entries".into());
    }
    let positive = |x: f64| x.is_finite() && x > 0.0;
    for e in &report.entries {
        if !positive(e.schedule_wall_ms) || !positive(e.slots_per_sec) || e.slots == 0 {
            return Err(format!(
                "degenerate entry for n={} {}: {e:?}",
                e.n_readers, e.algorithm
            ));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sizes = vec![200usize, 1000, 5000];
    let mut trials = 1usize;
    let mut out = PathBuf::from("results/BENCH_mcs.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => sizes = vec![200],
            "--sizes" => {
                i += 1;
                sizes = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("--sizes takes comma-separated integers"))
                    .collect();
            }
            "--trials" => {
                i += 1;
                trials = args[i].parse().expect("--trials takes a number");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            "--check" => {
                i += 1;
                let path = PathBuf::from(&args[i]);
                match check(&path) {
                    Ok(()) => {
                        println!("{path:?} ok");
                        return;
                    }
                    Err(e) => {
                        eprintln!("BENCH check failed: {e}");
                        std::process::exit(1);
                    }
                }
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    assert!(trials > 0, "need at least one trial");

    // The two covering-schedule drivers whose hot paths the perf layer
    // targets: the paper's central Algorithm 2 and the GHC baseline.
    let lineup = [AlgorithmKind::LocalGreedy, AlgorithmKind::HillClimbing];
    let mut entries = Vec::new();
    println!("| n | algorithm | slots | schedule ms | slots/sec |");
    println!("|---|---|---|---|---|");
    for &n in &sizes {
        for &kind in &lineup {
            let e = measure(n, kind, trials);
            println!(
                "| {} | {} | {} | {:.1} | {:.1} |",
                e.n_readers, e.algorithm, e.slots, e.schedule_wall_ms, e.slots_per_sec
            );
            entries.push(e);
        }
    }
    let report = Report {
        bench: "mcs_scaling".into(),
        schema_version: 1,
        tags_per_reader: TAGS_PER_READER,
        lambda_interference: LAMBDA_INTERFERENCE,
        lambda_interrogation: LAMBDA_INTERROGATION,
        entries,
    };
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write BENCH_mcs.json");
    check(&out).expect("self-check of the just-written report");
    println!("wrote {out:?}");
}
