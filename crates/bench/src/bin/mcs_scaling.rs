//! MCS engine scaling benchmark — the tracked perf trajectory.
//!
//! Runs the full greedy covering schedule end to end at constant reader
//! density (the paper's 50 readers / 100×100 region, 24 tags per reader)
//! for n ∈ {200, 1000, 5000, 20000, 100000} and emits a machine-readable
//! `BENCH_mcs.json` with wall time, per-phase timings, peak RSS and
//! slots/sec per (size, algorithm).
//!
//! The committed `results/BENCH_mcs_seed.json` is the pre-optimisation
//! baseline recorded by this same binary; every later PR regenerates
//! `results/BENCH_mcs.json` and compares against it (see EXPERIMENTS.md).
//!
//! Usage:
//!   mcs_scaling [--quick] [--sizes 200,1000] [--trials N] [--out PATH]
//!               [--metrics-out PATH] [--trace]
//!   mcs_scaling --check PATH            # validate an existing BENCH_mcs.json
//!   mcs_scaling --check PATH --against SEED --min-speedup X
//!                                       # additionally require X× speedup vs
//!                                       # the seed baseline per (n, algorithm)
//!   mcs_scaling --check PATH --max-ms LABEL:N:MS
//!                                       # absolute wall-clock ceiling for one
//!                                       # (algorithm, size) leg (repeatable)
//!   mcs_scaling --check-metrics PATH [--schema PATH]
//!                                       # validate a metrics JSON against the
//!                                       # checked-in schema
//!
//! `--quick` restricts to n = 200 (the CI perf-smoke configuration).
//! `--metrics-out` routes every covering-schedule run through an
//! `rfid_obs::Recorder` and writes the counter/histogram snapshots plus
//! per-slot records; the schedules themselves are bit-identical with or
//! without the recorder (DESIGN.md §8).
//!
//! Schema v2 (this revision): adds per-phase timings (`generate_ms`,
//! `coverage_ms`, `graph_ms` — the deployment/coverage/interference-graph
//! build phases whose sum with `schedule_wall_ms` approximates
//! `total_wall_ms`) and `peak_rss_kb` (the process peak resident set,
//! `VmHWM`, sampled when the entry finishes — monotone across entries, so
//! the largest legs dominate it; 0 where the platform offers no reading).

use rfid_core::{covering_schedule_with, AlgorithmKind, McsOptions, SchedulerRegistry};
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, RadiusModel, Scenario, ScenarioKind};
use rfid_obs::{slot_metrics_to_json, Recorder, SlotMetrics};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// Paper density: 50 readers in a 100×100 region, 24 tags per reader.
const BASE_READERS: f64 = 50.0;
const BASE_REGION: f64 = 100.0;
const TAGS_PER_READER: usize = 24;
const LAMBDA_INTERFERENCE: f64 = 14.0;
const LAMBDA_INTERROGATION: f64 = 6.0;

/// One (size, algorithm) measurement.
#[derive(Debug, Serialize, Deserialize)]
struct Entry {
    n_readers: usize,
    n_tags: usize,
    algorithm: String,
    trials: usize,
    /// Covering-schedule size (slots), identical across trials.
    slots: usize,
    tags_served: usize,
    fallback_slots: usize,
    /// Mean wall time of `covering_schedule_with` alone.
    schedule_wall_ms: f64,
    /// Mean wall time including deployment + coverage + graph build.
    total_wall_ms: f64,
    /// Mean wall time of the deployment generation phase.
    generate_ms: f64,
    /// Mean wall time of the `Coverage::build` phase.
    coverage_ms: f64,
    /// Mean wall time of the `interference_graph` phase.
    graph_ms: f64,
    /// Process peak RSS (`VmHWM`, kB) when this entry finished; monotone
    /// across entries within one run, 0 when unavailable.
    peak_rss_kb: u64,
    slots_per_sec: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Report {
    bench: String,
    schema_version: u32,
    tags_per_reader: usize,
    lambda_interference: f64,
    lambda_interrogation: f64,
    entries: Vec<Entry>,
}

/// Constant-density scaling: the region side grows with √n so local
/// structure (degree, tags per interrogation disk) matches the paper's
/// evaluation scenario at every size.
fn scenario(n_readers: usize) -> Scenario {
    Scenario {
        kind: ScenarioKind::UniformRandom,
        n_readers,
        n_tags: n_readers * TAGS_PER_READER,
        region_side: BASE_REGION * (n_readers as f64 / BASE_READERS).sqrt(),
        radius_model: RadiusModel::PoissonPair {
            lambda_interference: LAMBDA_INTERFERENCE,
            lambda_interrogation: LAMBDA_INTERROGATION,
        },
    }
}

/// Process peak resident set size in kB (`VmHWM` from `/proc/self/status`),
/// or 0 where unavailable. Monotone over the process lifetime.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("VmHWM:")?
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(0)
}

/// Observability records from one (size, algorithm) measurement: the last
/// trial's deterministic counter snapshot and its per-slot metrics.
struct RunMetrics {
    snapshot_json: String,
    slots: Vec<SlotMetrics>,
}

fn measure(
    n_readers: usize,
    kind: AlgorithmKind,
    trials: usize,
    observe: bool,
) -> (Entry, Option<RunMetrics>) {
    let mut schedule_ms = 0.0;
    let mut total_ms = 0.0;
    let mut generate_ms = 0.0;
    let mut coverage_ms = 0.0;
    let mut graph_ms = 0.0;
    let mut slots = 0;
    let mut tags_served = 0;
    let mut fallback_slots = 0;
    let mut metrics = None;
    for trial in 0..trials {
        let seed = 42 + trial as u64;
        let total_start = Instant::now();
        let phase = Instant::now();
        let deployment = scenario(n_readers).generate(seed);
        generate_ms += phase.elapsed().as_secs_f64() * 1e3;
        let phase = Instant::now();
        let coverage = Coverage::build(&deployment);
        coverage_ms += phase.elapsed().as_secs_f64() * 1e3;
        let phase = Instant::now();
        let graph = interference_graph(&deployment);
        graph_ms += phase.elapsed().as_secs_f64() * 1e3;
        let mut scheduler = SchedulerRegistry::global().instantiate(kind, seed ^ 0x5eed);
        let recorder = observe.then(Recorder::new);
        let mut options = McsOptions::new().slot_metrics(observe);
        if let Some(rec) = &recorder {
            options = options.subscriber(rec);
        }
        let start = Instant::now();
        let run =
            covering_schedule_with(&deployment, &coverage, &graph, scheduler.as_mut(), &options)
                .expect("strict covering schedule diverged");
        schedule_ms += start.elapsed().as_secs_f64() * 1e3;
        total_ms += total_start.elapsed().as_secs_f64() * 1e3;
        // The schedule is deterministic per seed; keep the last trial's.
        let schedule = run.schedule;
        slots = schedule.size();
        tags_served = schedule.tags_served();
        fallback_slots = schedule.fallback_slots();
        if let Some(rec) = &recorder {
            metrics = Some(RunMetrics {
                snapshot_json: rec.snapshot().to_json(),
                slots: run.slot_metrics,
            });
        }
    }
    let schedule_wall_ms = schedule_ms / trials as f64;
    let entry = Entry {
        n_readers,
        n_tags: n_readers * TAGS_PER_READER,
        algorithm: kind.label().to_string(),
        trials,
        slots,
        tags_served,
        fallback_slots,
        schedule_wall_ms,
        total_wall_ms: total_ms / trials as f64,
        generate_ms: generate_ms / trials as f64,
        coverage_ms: coverage_ms / trials as f64,
        graph_ms: graph_ms / trials as f64,
        peak_rss_kb: peak_rss_kb(),
        slots_per_sec: slots as f64 / (schedule_wall_ms / 1e3),
    };
    (entry, metrics)
}

/// Composes the metrics sidecar JSON: one run record per (size, algorithm)
/// with the Recorder snapshot and the per-slot metrics of the last trial.
fn metrics_report(runs: &[(usize, String, RunMetrics)]) -> String {
    let body: Vec<String> = runs
        .iter()
        .map(|(n, algorithm, m)| {
            format!(
                "{{\"n_readers\":{},\"algorithm\":{:?},\"snapshot\":{},\"slots\":{}}}",
                n,
                algorithm,
                m.snapshot_json,
                slot_metrics_to_json(&m.slots)
            )
        })
        .collect();
    format!(
        "{{\"bench\":\"mcs_scaling\",\"schema_version\":1,\"runs\":[{}]}}",
        body.join(",")
    )
}

/// Validates a metrics JSON emitted by `--metrics-out` against the
/// checked-in schema (`results/mcs_metrics.schema.json`). The schema lists
/// required keys at each level plus counters every snapshot must carry;
/// missing keys index as `Null` in the vendored `Value`, which is what we
/// test for.
fn check_metrics(path: &PathBuf, schema_path: &PathBuf) -> Result<(), String> {
    use serde_json::Value;
    let is_null = |v: &Value| matches!(v.0, serde::Content::Null);
    let read =
        |p: &PathBuf| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p:?}: {e}"));
    let doc: Value =
        serde_json::from_str(&read(path)?).map_err(|e| format!("malformed {path:?}: {e}"))?;
    let schema: Value = serde_json::from_str(&read(schema_path)?)
        .map_err(|e| format!("malformed schema {schema_path:?}: {e}"))?;
    let required = |schema_key: &str| -> Result<Vec<String>, String> {
        match &schema[schema_key].0 {
            serde::Content::Seq(items) => items
                .iter()
                .map(|c| match c {
                    serde::Content::Str(s) => Ok(s.clone()),
                    other => Err(format!("schema {schema_key}: non-string entry {other:?}")),
                })
                .collect(),
            _ => Err(format!("schema is missing the {schema_key:?} list")),
        }
    };
    for key in required("required")? {
        if is_null(&doc[key.as_str()]) {
            return Err(format!("metrics JSON is missing top-level key {key:?}"));
        }
    }
    if doc["bench"].as_str() != Some("mcs_scaling") {
        return Err("metrics JSON has the wrong bench name".into());
    }
    if doc["schema_version"].as_f64() != Some(1.0) {
        return Err("metrics JSON has an unknown schema_version".into());
    }
    let n_runs = doc["runs"]
        .as_array_len()
        .ok_or("metrics JSON `runs` is not an array")?;
    if n_runs == 0 {
        return Err("metrics JSON has no runs".into());
    }
    let run_required = required("run_required")?;
    let snapshot_required = required("snapshot_required")?;
    let counters_required = required("counters_required")?;
    let slot_required = required("slot_required")?;
    for i in 0..n_runs {
        let run = &doc["runs"][i];
        for key in &run_required {
            if is_null(&run[key.as_str()]) {
                return Err(format!("run {i} is missing key {key:?}"));
            }
        }
        let snapshot = &run["snapshot"];
        for key in &snapshot_required {
            if is_null(&snapshot[key.as_str()]) {
                return Err(format!("run {i} snapshot is missing key {key:?}"));
            }
        }
        for key in &counters_required {
            if snapshot["counters"][key.as_str()].as_f64().is_none() {
                return Err(format!("run {i} snapshot is missing counter {key:?}"));
            }
        }
        let n_slots = run["slots"]
            .as_array_len()
            .ok_or_else(|| format!("run {i} `slots` is not an array"))?;
        if n_slots == 0 {
            return Err(format!("run {i} carries no per-slot records"));
        }
        for s in 0..n_slots {
            for key in &slot_required {
                // `fallback` is a boolean, the rest are numeric — test
                // presence, which covers both.
                if is_null(&run["slots"][s][key.as_str()]) {
                    return Err(format!("run {i} slot {s} is missing field {key:?}"));
                }
            }
        }
    }
    Ok(())
}

/// One absolute wall-clock ceiling: `(algorithm label, n_readers, max ms)`.
type MaxMs = (String, usize, f64);

/// Parses a `--max-ms LABEL:N:MS` specification.
fn parse_max_ms(spec: &str) -> MaxMs {
    let parts: Vec<&str> = spec.split(':').collect();
    assert!(
        parts.len() == 3,
        "--max-ms takes LABEL:N_READERS:MAX_MS, got {spec:?}"
    );
    (
        parts[0].to_string(),
        parts[1].parse().expect("--max-ms size must be an integer"),
        parts[2].parse().expect("--max-ms bound must be a number"),
    )
}

/// Validates a BENCH_mcs.json: parses, checks the schema and that every
/// entry carries positive wall times. With `against`, additionally
/// requires every (n, algorithm) leg present in both reports to be at
/// least `min_speedup`× faster than the baseline — the anti-rot gate CI
/// runs on the committed reports. `max_ms` entries pin absolute ceilings.
/// Exits non-zero on failure so CI can gate on it.
fn check(
    path: &PathBuf,
    against: Option<&PathBuf>,
    min_speedup: f64,
    max_ms: &[MaxMs],
) -> Result<(), String> {
    let load = |p: &PathBuf| -> Result<Report, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read {p:?}: {e}"))?;
        let report: Report =
            serde_json::from_str(&text).map_err(|e| format!("malformed {p:?}: {e}"))?;
        if report.bench != "mcs_scaling" {
            return Err(format!("wrong bench name {:?}", report.bench));
        }
        if report.schema_version != 2 {
            return Err(format!("unknown schema_version {}", report.schema_version));
        }
        if report.entries.is_empty() {
            return Err("no entries".into());
        }
        let positive = |x: f64| x.is_finite() && x > 0.0;
        for e in &report.entries {
            if !positive(e.schedule_wall_ms) || !positive(e.slots_per_sec) || e.slots == 0 {
                return Err(format!(
                    "degenerate entry for n={} {}: {e:?}",
                    e.n_readers, e.algorithm
                ));
            }
            let phases = [e.generate_ms, e.coverage_ms, e.graph_ms];
            if phases.iter().any(|p| !p.is_finite() || *p < 0.0) {
                return Err(format!(
                    "negative or non-finite phase timing for n={} {}",
                    e.n_readers, e.algorithm
                ));
            }
            if e.total_wall_ms + 1e-9 < e.schedule_wall_ms {
                return Err(format!(
                    "total wall below schedule wall for n={} {}",
                    e.n_readers, e.algorithm
                ));
            }
        }
        Ok(report)
    };
    let report = load(path)?;
    let find = |r: &Report, n: usize, algo: &str| -> Option<f64> {
        r.entries
            .iter()
            .find(|e| e.n_readers == n && e.algorithm == algo)
            .map(|e| e.schedule_wall_ms)
    };
    if let Some(seed_path) = against {
        let seed = load(seed_path)?;
        let mut compared = 0usize;
        for e in &report.entries {
            let Some(base_ms) = find(&seed, e.n_readers, &e.algorithm) else {
                continue;
            };
            compared += 1;
            let speedup = base_ms / e.schedule_wall_ms;
            if speedup < min_speedup {
                return Err(format!(
                    "n={} {}: {:.1} ms is only {:.2}× the seed baseline's {:.1} ms \
                     (floor {min_speedup}×)",
                    e.n_readers, e.algorithm, e.schedule_wall_ms, speedup, base_ms
                ));
            }
        }
        if compared == 0 {
            return Err(format!(
                "no (n, algorithm) leg of {path:?} appears in the baseline {seed_path:?}"
            ));
        }
        println!("{compared} legs at or above the {min_speedup}× floor vs {seed_path:?}");
    }
    for (algo, n, bound) in max_ms {
        let ms = find(&report, *n, algo)
            .ok_or_else(|| format!("--max-ms {algo}:{n}: no such leg in {path:?}"))?;
        if ms > *bound {
            return Err(format!(
                "n={n} {algo}: {ms:.1} ms exceeds the {bound:.1} ms ceiling"
            ));
        }
        println!("n={n} {algo}: {ms:.1} ms within the {bound:.1} ms ceiling");
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sizes = vec![200usize, 1000, 5000, 20000, 100000];
    let mut trials = 1usize;
    let mut out = PathBuf::from("results/BENCH_mcs.json");
    let mut metrics_out: Option<PathBuf> = None;
    let mut trace = false;
    let mut check_path: Option<PathBuf> = None;
    let mut against: Option<PathBuf> = None;
    let mut min_speedup = 1.0f64;
    let mut max_ms: Vec<MaxMs> = Vec::new();
    let mut check_metrics_path: Option<PathBuf> = None;
    let mut schema_path = PathBuf::from("results/mcs_metrics.schema.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => sizes = vec![200],
            "--trace" => trace = true,
            "--metrics-out" => {
                i += 1;
                metrics_out = Some(PathBuf::from(&args[i]));
            }
            "--check-metrics" => {
                i += 1;
                check_metrics_path = Some(PathBuf::from(&args[i]));
            }
            "--schema" => {
                i += 1;
                schema_path = PathBuf::from(&args[i]);
            }
            "--sizes" => {
                i += 1;
                sizes = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("--sizes takes comma-separated integers"))
                    .collect();
            }
            "--trials" => {
                i += 1;
                trials = args[i].parse().expect("--trials takes a number");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(&args[i]);
            }
            "--check" => {
                i += 1;
                check_path = Some(PathBuf::from(&args[i]));
            }
            "--against" => {
                i += 1;
                against = Some(PathBuf::from(&args[i]));
            }
            "--min-speedup" => {
                i += 1;
                min_speedup = args[i].parse().expect("--min-speedup takes a number");
            }
            "--max-ms" => {
                i += 1;
                max_ms.push(parse_max_ms(&args[i]));
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    if let Some(path) = check_path {
        match check(&path, against.as_ref(), min_speedup, &max_ms) {
            Ok(()) => {
                println!("{path:?} ok");
                return;
            }
            Err(e) => {
                eprintln!("BENCH check failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = check_metrics_path {
        match check_metrics(&path, &schema_path) {
            Ok(()) => {
                println!("{path:?} conforms to {schema_path:?}");
                return;
            }
            Err(e) => {
                eprintln!("metrics check failed: {e}");
                std::process::exit(1);
            }
        }
    }
    assert!(trials > 0, "need at least one trial");

    // The two covering-schedule drivers whose hot paths the perf layer
    // targets: the paper's central Algorithm 2 and the GHC baseline.
    let lineup = [AlgorithmKind::LocalGreedy, AlgorithmKind::HillClimbing];
    let observe = trace || metrics_out.is_some();
    let mut entries = Vec::new();
    let mut runs: Vec<(usize, String, RunMetrics)> = Vec::new();
    println!("| n | algorithm | slots | schedule ms | slots/sec | peak RSS MB |");
    println!("|---|---|---|---|---|---|");
    for &n in &sizes {
        for &kind in &lineup {
            let (e, m) = measure(n, kind, trials, observe);
            println!(
                "| {} | {} | {} | {:.1} | {:.1} | {:.1} |",
                e.n_readers,
                e.algorithm,
                e.slots,
                e.schedule_wall_ms,
                e.slots_per_sec,
                e.peak_rss_kb as f64 / 1024.0
            );
            if let Some(m) = m {
                if trace {
                    println!("metrics snapshot for n={n} {}:", e.algorithm);
                    println!("{}", m.snapshot_json);
                }
                runs.push((n, e.algorithm.clone(), m));
            }
            entries.push(e);
        }
    }
    let report = Report {
        bench: "mcs_scaling".into(),
        schema_version: 2,
        tags_per_reader: TAGS_PER_READER,
        lambda_interference: LAMBDA_INTERFERENCE,
        lambda_interrogation: LAMBDA_INTERROGATION,
        entries,
    };
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&report).expect("serialize"),
    )
    .expect("write BENCH_mcs.json");
    check(&out, None, 1.0, &[]).expect("self-check of the just-written report");
    println!("wrote {out:?}");
    if let Some(metrics_path) = metrics_out {
        if let Some(dir) = metrics_path.parent() {
            std::fs::create_dir_all(dir).expect("create metrics directory");
        }
        std::fs::write(&metrics_path, metrics_report(&runs)).expect("write metrics JSON");
        check_metrics(&metrics_path, &schema_path)
            .expect("self-check of the just-written metrics against the schema");
        println!("wrote {metrics_path:?} (validated against {schema_path:?})");
    }
}
