//! Figure 9: one-shot well-covered tags vs λ_R (λ_r fixed at 6).

use rfid_bench::{lambda_interference_grid, run_figure, Cli, FIXED_LAMBDA_SMALL_R};
use rfid_sim::SweepAxis;

fn main() {
    let cli = Cli::parse();
    run_figure(
        &cli,
        "fig9",
        "Figure 9 — one-shot well-covered tags vs λ_R, λ_r = 6",
        SweepAxis::Interference,
        lambda_interference_grid(),
        FIXED_LAMBDA_SMALL_R,
        false,
    );
}
