//! Property-based tests for the consistent-hash ring.
//!
//! The properties that make [`HashRing`] the right router substrate:
//!
//! * **Stability** — a key's shard is a pure function of the shard
//!   list: every router built from the same `--shards` flag routes
//!   identically, and re-building changes nothing.
//! * **Moved keys go to the new shard only** — growing the fleet never
//!   shuffles keys between surviving shards; shrinking it moves only
//!   the removed shard's keys. Shard-local caches stay hot through
//!   membership changes.
//! * **Bounded remap** — adding one shard to `n` moves roughly
//!   `1/(n+1)` of the keyspace, not all of it.

use proptest::prelude::*;
use rfid_serve::HashRing;

/// Distinct plausible shard addresses from an index set.
fn addrs(ports: &[u16]) -> Vec<String> {
    ports.iter().map(|p| format!("10.0.0.1:{p}")).collect()
}

fn arb_ports(max_len: usize) -> impl Strategy<Value = Vec<u16>> {
    ports_between(1, max_len)
}

/// At least two shards (for removal/spread properties).
fn arb_ports2(max_len: usize) -> impl Strategy<Value = Vec<u16>> {
    ports_between(2, max_len)
}

fn ports_between(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<u16>> {
    proptest::collection::btree_set(1024u16..u16::MAX, min_len..=max_len)
        .prop_map(|set| set.into_iter().collect())
}

/// A spread of sample keys covering the whole u64 ring (golden-ratio
/// stride from a random offset).
fn sample_keys(offset: u64, n: u64) -> impl Iterator<Item = u64> {
    (0..n).map(move |i| offset.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two rings built from the same list agree on every key, whatever
    /// the list.
    #[test]
    fn same_shard_list_routes_identically(
        ports in arb_ports(9),
        offset in proptest::num::u64::ANY,
    ) {
        let shards = addrs(&ports);
        let a = HashRing::new(&shards);
        let b = HashRing::new(&shards);
        for key in sample_keys(offset, 512) {
            prop_assert_eq!(a.shard_of(key), b.shard_of(key));
            prop_assert_eq!(a.addr_of(key), b.addr_of(key));
        }
    }

    /// Adding a shard moves keys *only onto the new shard* — no key
    /// ever moves between two surviving shards.
    #[test]
    fn grown_ring_moves_keys_only_to_the_new_shard(
        ports in arb_ports(8),
        new_port in 1u16..1024,
        offset in proptest::num::u64::ANY,
    ) {
        let before = HashRing::new(&addrs(&ports));
        let mut grown_ports = ports.clone();
        grown_ports.push(new_port);
        let after = HashRing::new(&addrs(&grown_ports));
        let new_addr = format!("10.0.0.1:{new_port}");
        for key in sample_keys(offset, 512) {
            let old_owner = before.addr_of(key);
            let new_owner = after.addr_of(key);
            if old_owner != new_owner {
                prop_assert_eq!(
                    new_owner, new_addr.as_str(),
                    "a moved key may only move to the new shard"
                );
            }
        }
    }

    /// Removing a shard relocates exactly that shard's keys; everything
    /// else stays put.
    #[test]
    fn shrunk_ring_moves_only_the_removed_shards_keys(
        ports in arb_ports2(8),
        victim in proptest::num::usize::ANY,
        offset in proptest::num::u64::ANY,
    ) {
        let victim = victim % ports.len();
        let full = addrs(&ports);
        let removed = full[victim].clone();
        let mut rest = full.clone();
        rest.remove(victim);
        let before = HashRing::new(&full);
        let after = HashRing::new(&rest);
        for key in sample_keys(offset, 512) {
            let old_owner = before.addr_of(key);
            if old_owner != removed {
                prop_assert_eq!(
                    after.addr_of(key), old_owner,
                    "surviving shards keep their keys"
                );
            }
        }
    }

    /// Adding one shard to `n` remaps a bounded fraction of the
    /// keyspace — near the ideal `1/(n+1)`, never a wholesale reshuffle.
    #[test]
    fn remap_fraction_is_bounded(
        ports in arb_ports(6),
        new_port in 1u16..1024,
        offset in proptest::num::u64::ANY,
    ) {
        let n = ports.len();
        let before = HashRing::new(&addrs(&ports));
        let mut grown_ports = ports.clone();
        grown_ports.push(new_port);
        let after = HashRing::new(&addrs(&grown_ports));
        let samples = 4096u64;
        let moved = sample_keys(offset, samples)
            .filter(|&k| before.shard_of(k) != after.shard_of(k))
            .count();
        let frac = moved as f64 / samples as f64;
        let ideal = 1.0 / (n as f64 + 1.0);
        // Generous slack for vnode variance at 64 points/shard; the
        // claim being defended is "bounded", not "exact".
        prop_assert!(
            frac <= (3.0 * ideal).min(0.9),
            "remap fraction {frac:.3} far above ideal {ideal:.3} for n={n}"
        );
    }

    /// Every shard owns a nonempty, non-dominant slice of the keyspace
    /// (no starved shard, no shard holding almost everything).
    #[test]
    fn load_spreads_across_all_shards(
        ports in arb_ports2(6),
        offset in proptest::num::u64::ANY,
    ) {
        let shards = addrs(&ports);
        let ring = HashRing::new(&shards);
        let samples = 4096u64;
        let mut counts = vec![0u64; shards.len()];
        for key in sample_keys(offset, samples) {
            counts[ring.shard_of(key)] += 1;
        }
        let even = samples as f64 / shards.len() as f64;
        for (i, &c) in counts.iter().enumerate() {
            let ratio = c as f64 / even;
            prop_assert!(
                (0.2..=2.5).contains(&ratio),
                "shard {i} holds {ratio:.2}x its even share"
            );
        }
    }
}
