//! Property-based tests for the scenario codec.
//!
//! The codec's contract is what makes content-addressed caching sound:
//!
//! * **Round trip** — `encode(decode(encode(spec)))` is a fixed point:
//!   decoding a canonical encoding and re-canonicalising yields the same
//!   bytes and the same 64-bit key.
//! * **Permutation invariance** — explicit workloads whose tag lists are
//!   permutations of each other are the *same* job, so they must hash to
//!   the same key (readers are order-significant: their index is their
//!   identity in the schedule).
//! * **Key discrimination** — changing the algorithm seed changes the
//!   key (no accidental cache aliasing between distinct jobs).

use proptest::prelude::*;
use rfid_core::SchedulerRegistry;
use rfid_geometry::{Point, Rect};
use rfid_model::{Deployment, RadiusModel, Scenario, ScenarioKind};
use rfid_serve::{decode_job, CanonicalJob, JobSpec, Workload};

const ALGORITHMS: [&str; 8] = [
    "alg1",
    "alg1-ptas",
    "alg2",
    "ALG2-CENTRAL",
    "alg3",
    "colorwave",
    "ghc",
    "exact",
];

fn arb_radius_model() -> impl Strategy<Value = RadiusModel> {
    (0usize..3, 0.5..30.0f64, 0.05..0.95f64).prop_map(|(variant, big, frac)| match variant {
        0 => RadiusModel::PoissonPair {
            lambda_interference: big,
            lambda_interrogation: big * frac,
        },
        1 => RadiusModel::Fixed {
            interference: big,
            interrogation: big * frac,
        },
        _ => RadiusModel::Scaled {
            lambda_interference: big,
            beta: frac,
        },
    })
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    let kind =
        (0usize..3, 1usize..5, 0.5..10.0f64).prop_map(|(variant, clusters, sigma)| match variant {
            0 => ScenarioKind::UniformRandom,
            1 => ScenarioKind::ClusteredTags { clusters, sigma },
            _ => ScenarioKind::LatticeReaders,
        });
    (
        kind,
        1usize..40,
        0usize..150,
        10.0..200.0f64,
        arb_radius_model(),
    )
        .prop_map(
            |(kind, n_readers, n_tags, region_side, radius_model)| Scenario {
                kind,
                n_readers,
                n_tags,
                region_side,
                radius_model,
            },
        )
}

fn arb_explicit() -> impl Strategy<Value = Deployment> {
    let reader = (0.0..100.0f64, 0.0..100.0f64, 0.5..40.0f64, 0.05..1.0f64);
    let tag = (0.0..100.0f64, 0.0..100.0f64);
    (
        proptest::collection::vec(reader, 1..12),
        proptest::collection::vec(tag, 0..40),
    )
        .prop_map(|(readers, tags)| {
            let mut pos = Vec::new();
            let mut big = Vec::new();
            let mut small = Vec::new();
            for (x, y, interference, frac) in readers {
                pos.push(Point::new(x, y));
                big.push(interference);
                small.push(interference * frac);
            }
            Deployment::new(
                Rect::square(100.0),
                pos,
                big,
                small,
                tags.into_iter().map(|(x, y)| Point::new(x, y)).collect(),
            )
        })
}

fn arb_job() -> impl Strategy<Value = JobSpec> {
    (
        proptest::bool::ANY,
        (arb_scenario(), proptest::num::u64::ANY),
        arb_explicit(),
        0usize..ALGORITHMS.len(),
        proptest::num::u64::ANY,
        proptest::bool::ANY,
    )
        .prop_map(
            |(generated, (scenario, seed), deployment, algo, algo_seed, resilient)| {
                let workload = if generated {
                    Workload::Generated { scenario, seed }
                } else {
                    Workload::Explicit { deployment }
                };
                let mut spec = JobSpec::new(workload);
                spec.algorithm = ALGORITHMS[algo].to_string();
                spec.algo_seed = algo_seed;
                spec.resilient = resilient;
                spec
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// decode(encode(spec)) re-canonicalises to the identical encoding
    /// and key — the canonical form is a fixed point.
    #[test]
    fn canonical_encoding_is_a_fixed_point(spec in arb_job()) {
        let registry = SchedulerRegistry::global();
        let first = CanonicalJob::new(&spec, &registry).expect("valid job");
        let decoded = decode_job(&first.encoded).expect("decode own encoding");
        let second = CanonicalJob::new(&decoded, &registry).expect("re-canonicalise");
        prop_assert_eq!(&first.encoded, &second.encoded);
        prop_assert_eq!(first.key, second.key);
        prop_assert_eq!(first.key_hex().len(), 16);
    }

    /// Permuting an explicit workload's tag list never changes the key.
    #[test]
    fn reordered_tag_lists_hash_identically(
        d in arb_explicit(),
        rotation in 0usize..17,
        algo_seed in proptest::num::u64::ANY,
    ) {
        let registry = SchedulerRegistry::global();
        let mut spec = JobSpec::new(Workload::Explicit { deployment: d.clone() });
        spec.algo_seed = algo_seed;
        let baseline = CanonicalJob::new(&spec, &registry).expect("baseline");

        let mut tags: Vec<Point> = d.tag_positions().to_vec();
        if !tags.is_empty() {
            let mid = rotation % tags.len();
            tags.rotate_left(mid);
        }
        tags.reverse();
        let permuted = Deployment::new(
            d.region(),
            d.reader_positions().to_vec(),
            d.interference_radii().to_vec(),
            d.interrogation_radii().to_vec(),
            tags,
        );
        let mut permuted_spec = JobSpec::new(Workload::Explicit { deployment: permuted });
        permuted_spec.algo_seed = algo_seed;
        let other = CanonicalJob::new(&permuted_spec, &registry).expect("permuted");
        prop_assert_eq!(baseline.key, other.key);
        prop_assert_eq!(baseline.encoded, other.encoded);
    }

    /// Distinct seeds are distinct jobs: the key must change.
    #[test]
    fn distinct_seeds_get_distinct_keys(spec in arb_job(), bump in 1u64..1000) {
        let registry = SchedulerRegistry::global();
        let a = CanonicalJob::new(&spec, &registry).expect("a");
        let mut other = spec.clone();
        other.algo_seed = other.algo_seed.wrapping_add(bump);
        let b = CanonicalJob::new(&other, &registry).expect("b");
        prop_assert!(a.key != b.key, "seed change must change the key");
    }
}
