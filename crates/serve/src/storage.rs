//! Injectable storage: the seam the chaos harness drives.
//!
//! The durability layer ([`crate::journal`], [`crate::snapshot`]) never
//! touches the filesystem directly — it goes through the [`Storage`]
//! trait. Production uses [`DiskStorage`] (a directory of flat files,
//! atomic replace via temp-file + rename). Chaos tests swap in a
//! [`FaultyStorage`] whose seeded [`StorageFaults`] plan can tear an
//! append mid-record (the `kill -9` mid-write schedule), deny I/O with a
//! seeded probability, or crash-stop the "process" so every later
//! operation fails — all reproducible from the seed, in the spirit of
//! `rfid_netsim::FaultPlan`.

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The small filesystem surface the durability layer needs. File names
/// are flat (no separators); implementations scope them to one root.
pub trait Storage: Send + Sync {
    /// Reads a whole file. Missing files are `ErrorKind::NotFound`.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Appends `bytes` to the end of a file, creating it if missing.
    /// One call is the durability unit: a torn append may persist any
    /// prefix of `bytes`, never interleave with another append.
    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Atomically replaces a file's contents (temp file + rename): after
    /// a crash the file holds either the old bytes or the new, never a
    /// mix.
    fn replace(&self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Removes a file; missing files are not an error.
    fn remove(&self, name: &str) -> io::Result<()>;
}

/// Production [`Storage`]: flat files under one root directory.
pub struct DiskStorage {
    root: PathBuf,
}

impl DiskStorage {
    /// Opens (creating if needed) the root directory.
    pub fn open(root: impl AsRef<Path>) -> io::Result<DiskStorage> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(DiskStorage { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Storage for DiskStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        std::fs::File::open(self.path(name))?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(bytes)?;
        f.flush()
    }

    fn replace(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.path(name))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        match std::fs::remove_file(self.path(name)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

/// A seeded plan of storage misbehaviour (the service-layer analogue of
/// `rfid_netsim::FaultPlan`): pure data, so the same plan replays the
/// same fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageFaults {
    seed: u64,
    /// 1-based index of the append call to tear; that append persists a
    /// seeded prefix of its bytes and the storage crash-stops.
    torn_append: Option<u64>,
    /// Probability that any append is denied with an I/O error (the
    /// entry is lost but the "process" survives).
    deny_append: f64,
    /// Deny every read (recovery sees a dead disk).
    deny_reads: bool,
}

impl StorageFaults {
    /// The fault-free plan.
    pub fn none() -> Self {
        StorageFaults::seeded(0)
    }

    /// An empty plan carrying a seed for whatever faults get added.
    pub fn seeded(seed: u64) -> Self {
        StorageFaults {
            seed,
            torn_append: None,
            deny_append: 0.0,
            deny_reads: false,
        }
    }

    /// Tears the `n`-th append (1-based): a seeded prefix of its bytes
    /// persists, then the storage crash-stops — every later operation
    /// fails, exactly as after `kill -9` mid-write.
    pub fn with_torn_append(mut self, n: u64) -> Self {
        assert!(n >= 1, "append indices are 1-based");
        self.torn_append = Some(n);
        self
    }

    /// Denies each append independently with probability `p`.
    pub fn with_deny_append(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.deny_append = p;
        self
    }

    /// Denies every read.
    pub fn with_deny_reads(mut self) -> Self {
        self.deny_reads = true;
        self
    }
}

/// [`Storage`] decorator applying a [`StorageFaults`] plan to an inner
/// store. Chaos/unit-test support — deliberately `pub` so the workspace
/// harness (`tests/serve_chaos.rs`) can drive it.
pub struct FaultyStorage {
    inner: Arc<dyn Storage>,
    plan: StorageFaults,
    rng: Mutex<u64>,
    appends: AtomicU64,
    crashed: AtomicBool,
}

impl FaultyStorage {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: Arc<dyn Storage>, plan: StorageFaults) -> FaultyStorage {
        FaultyStorage {
            inner,
            rng: Mutex::new(plan.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1)),
            plan,
            appends: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
        }
    }

    /// `true` once the plan has crash-stopped this storage.
    pub fn is_crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Appends attempted so far (torn or denied ones included).
    pub fn appends_seen(&self) -> u64 {
        self.appends.load(Ordering::SeqCst)
    }

    /// xorshift64* — deterministic, dependency-free.
    fn next_u64(&self) -> u64 {
        let mut s = self.rng.lock().expect("rng poisoned");
        let mut x = *s;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *s = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.is_crashed() {
            Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "storage crash-stopped by fault plan",
            ))
        } else {
            Ok(())
        }
    }
}

impl Storage for FaultyStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.check_alive()?;
        if self.plan.deny_reads {
            return Err(io::Error::other("read denied by fault plan"));
        }
        self.inner.read(name)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.check_alive()?;
        let n = self.appends.fetch_add(1, Ordering::SeqCst) + 1;
        if self.plan.torn_append == Some(n) {
            // Persist a seeded strict prefix, then die mid-write.
            let keep = (self.next_u64() as usize) % bytes.len().max(1);
            let _ = self.inner.append(name, &bytes[..keep]);
            self.crashed.store(true, Ordering::SeqCst);
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "append torn by fault plan (simulated kill -9 mid-write)",
            ));
        }
        if self.plan.deny_append > 0.0 {
            let draw = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            if draw < self.plan.deny_append {
                return Err(io::Error::other("append denied by fault plan"));
            }
        }
        self.inner.append(name, bytes)
    }

    fn replace(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.check_alive()?;
        self.inner.replace(name, bytes)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.check_alive()?;
        self.inner.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rfid_storage_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disk_round_trip_append_and_replace() {
        let root = tmp_root("disk");
        let s = DiskStorage::open(&root).unwrap();
        assert_eq!(
            s.read("j").unwrap_err().kind(),
            io::ErrorKind::NotFound,
            "missing file is NotFound"
        );
        s.append("j", b"one\n").unwrap();
        s.append("j", b"two\n").unwrap();
        assert_eq!(s.read("j").unwrap(), b"one\ntwo\n");
        s.replace("j", b"fresh\n").unwrap();
        assert_eq!(s.read("j").unwrap(), b"fresh\n");
        s.remove("j").unwrap();
        s.remove("j").unwrap(); // idempotent
        assert_eq!(s.read("j").unwrap_err().kind(), io::ErrorKind::NotFound);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn torn_append_persists_a_strict_prefix_then_crash_stops() {
        let root = tmp_root("torn");
        let disk: Arc<dyn Storage> = Arc::new(DiskStorage::open(&root).unwrap());
        let s = FaultyStorage::new(
            Arc::clone(&disk),
            StorageFaults::seeded(7).with_torn_append(2),
        );
        s.append("j", b"record-one\n").unwrap();
        let err = s.append("j", b"record-two\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(s.is_crashed());
        // Everything after the crash fails.
        assert!(s.read("j").is_err());
        assert!(s.append("j", b"x").is_err());
        assert!(s.replace("j", b"x").is_err());
        // The underlying bytes: the full first record plus a strict
        // prefix of the second.
        let bytes = disk.read("j").unwrap();
        assert!(bytes.starts_with(b"record-one\n"));
        assert!(bytes.len() < b"record-one\nrecord-two\n".len());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn same_seed_tears_at_the_same_offset() {
        let lens: Vec<usize> = (0..2)
            .map(|_| {
                let root = tmp_root("seeded");
                let disk: Arc<dyn Storage> = Arc::new(DiskStorage::open(&root).unwrap());
                let s = FaultyStorage::new(
                    Arc::clone(&disk),
                    StorageFaults::seeded(42).with_torn_append(1),
                );
                let _ = s.append("j", b"0123456789abcdef\n");
                let n = disk.read("j").unwrap().len();
                std::fs::remove_dir_all(&root).ok();
                n
            })
            .collect();
        assert_eq!(lens[0], lens[1], "fault schedule must be reproducible");
    }

    #[test]
    fn deny_reads_and_deny_append_fail_without_crashing() {
        let root = tmp_root("deny");
        let disk: Arc<dyn Storage> = Arc::new(DiskStorage::open(&root).unwrap());
        let s = FaultyStorage::new(
            Arc::clone(&disk),
            StorageFaults::seeded(3)
                .with_deny_reads()
                .with_deny_append(1.0),
        );
        assert!(s.read("j").is_err());
        assert!(s.append("j", b"x\n").is_err());
        assert!(!s.is_crashed(), "denied I/O is not a crash");
        // Replace still works: the plan only denies reads/appends.
        s.replace("snap", b"ok").unwrap();
        assert_eq!(disk.read("snap").unwrap(), b"ok");
        std::fs::remove_dir_all(&root).ok();
    }
}
