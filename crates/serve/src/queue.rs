//! Bounded work queue and per-request response slots.
//!
//! Admission control is the queue's whole point: [`WorkQueue::try_push`]
//! never blocks — a full queue is an immediate [`PushError::Full`]
//! (surfaced to clients as the `429`-style reject), and a closed queue is
//! [`PushError::Closed`] (the `503` during shutdown). Workers block in
//! [`WorkQueue::pop`], which drains remaining items after close and only
//! then returns `None` — that ordering is what makes "drain, then stop"
//! shutdown a one-liner.
//!
//! A [`ResponseSlot`] carries one job's result back to its waiting
//! client. Deadlines live here: [`ResponseSlot::wait`] gives up after
//! the request's deadline and flips the slot to *abandoned*, so a worker
//! that later reaches the job can skip it (or publish the result to the
//! cache anyway — the waiter is gone either way, but nothing hangs).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why [`WorkQueue::try_push`] rejected an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — backpressure; retry later.
    Full,
    /// The queue is closed — the service is shutting down.
    Closed,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue: non-blocking producers, blocking consumers.
pub struct WorkQueue<T> {
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> WorkQueue<T> {
    /// A queue admitting at most `capacity` pending items.
    pub fn new(capacity: usize) -> Self {
        WorkQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues without blocking; a full or closed queue rejects.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item. Returns `None` only once the queue is
    /// closed **and** drained — pending work is always handed out first.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    /// Closes the queue: producers get [`PushError::Closed`], consumers
    /// drain what remains and then see `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.closed = true;
        self.ready.notify_all();
    }

    /// Removes and returns every pending item (used by non-draining
    /// shutdown to fail them fast instead of solving them).
    pub fn take_pending(&self) -> Vec<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        inner.items.drain(..).collect()
    }

    /// Number of items waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// `true` when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

enum SlotState<T> {
    /// No result yet; a waiter may still be blocked.
    Pending,
    /// The waiter gave up (deadline); a late result is discarded.
    Abandoned,
    /// The result is in, not yet collected.
    Done(T),
}

/// A one-shot rendezvous between a client thread and a worker.
pub struct ResponseSlot<T> {
    state: Mutex<SlotState<T>>,
    ready: Condvar,
}

impl<T> Default for ResponseSlot<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ResponseSlot<T> {
    /// An empty (pending) slot.
    pub fn new() -> Self {
        ResponseSlot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        }
    }

    /// Delivers the result. Returns `false` when the waiter already
    /// abandoned the slot (the value is dropped).
    pub fn fulfill(&self, value: T) -> bool {
        let mut state = self.state.lock().expect("slot poisoned");
        match *state {
            SlotState::Pending => {
                *state = SlotState::Done(value);
                self.ready.notify_all();
                true
            }
            SlotState::Abandoned => false,
            SlotState::Done(_) => false, // double-fulfill keeps the first
        }
    }

    /// `true` once the waiter has given up on this slot.
    pub fn is_abandoned(&self) -> bool {
        matches!(
            *self.state.lock().expect("slot poisoned"),
            SlotState::Abandoned
        )
    }

    /// Non-blocking poll: takes the result if it is in, else returns
    /// `None` with the slot left pending. This is the reactor's wait
    /// primitive — the event loop polls slots between socket scans
    /// instead of parking a thread per request.
    pub fn try_take(&self) -> Option<T> {
        let mut state = self.state.lock().expect("slot poisoned");
        if let SlotState::Done(_) = *state {
            match std::mem::replace(&mut *state, SlotState::Abandoned) {
                SlotState::Done(value) => Some(value),
                _ => unreachable!("matched Done above"),
            }
        } else {
            None
        }
    }

    /// Gives up on the slot without blocking: a result delivered later
    /// is discarded, exactly as after a [`wait`](Self::wait) timeout.
    pub fn abandon(&self) {
        let mut state = self.state.lock().expect("slot poisoned");
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Abandoned;
        }
    }

    /// Blocks for the result, up to `deadline` when one is given.
    /// `None` means the deadline expired — the slot flips to abandoned
    /// so a late [`fulfill`](Self::fulfill) is discarded, never leaked
    /// into a reused slot.
    pub fn wait(&self, deadline: Option<Duration>) -> Option<T> {
        let give_up_at = deadline.map(|d| Instant::now() + d);
        let mut state = self.state.lock().expect("slot poisoned");
        loop {
            if let SlotState::Done(_) = *state {
                match std::mem::replace(&mut *state, SlotState::Abandoned) {
                    SlotState::Done(value) => return Some(value),
                    _ => unreachable!("matched Done above"),
                }
            }
            match give_up_at {
                None => state = self.ready.wait(state).expect("slot poisoned"),
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        *state = SlotState::Abandoned;
                        return None;
                    }
                    let (s, _timed_out) = self
                        .ready
                        .wait_timeout(state, at - now)
                        .expect("slot poisoned");
                    state = s;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_in_order() {
        let q = WorkQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_rejects_structurally() {
        let q = WorkQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn closed_queue_rejects_pushes_and_drains_pops() {
        let q = WorkQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed));
        assert_eq!(q.pop(), Some(1), "pending items drain after close");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(WorkQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn take_pending_empties_the_queue() {
        let q = WorkQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.take_pending(), vec![1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn slot_delivers_across_threads() {
        let slot = Arc::new(ResponseSlot::new());
        let s2 = Arc::clone(&slot);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            assert!(s2.fulfill(42));
        });
        assert_eq!(slot.wait(Some(Duration::from_secs(5))), Some(42));
        h.join().unwrap();
    }

    #[test]
    fn slot_deadline_expires_and_discards_late_results() {
        let slot = ResponseSlot::new();
        assert_eq!(slot.wait(Some(Duration::from_millis(10))), None);
        assert!(slot.is_abandoned());
        assert!(!slot.fulfill(42), "late result must be discarded");
    }

    #[test]
    fn fulfilled_before_wait_returns_immediately() {
        let slot = ResponseSlot::new();
        assert!(slot.fulfill(7));
        assert_eq!(slot.wait(None), Some(7));
    }

    #[test]
    fn try_take_polls_without_blocking() {
        let slot = ResponseSlot::new();
        assert_eq!(slot.try_take(), None);
        assert_eq!(slot.try_take(), None, "polling leaves the slot pending");
        assert!(slot.fulfill(9));
        assert_eq!(slot.try_take(), Some(9));
        assert_eq!(slot.try_take(), None, "one-shot: taken at most once");
    }

    #[test]
    fn abandon_discards_late_results_like_a_timeout() {
        let slot = ResponseSlot::new();
        slot.abandon();
        assert!(slot.is_abandoned());
        assert!(!slot.fulfill(42), "late result must be discarded");
        assert_eq!(slot.try_take(), None);
    }
}
