//! The zero-dependency TCP daemon and its blocking client.
//!
//! `std::net` only, per the vendored-offline policy: a blocking
//! `TcpListener` accept loop hands each connection to its own thread,
//! which speaks the JSON-lines protocol ([`crate::protocol`]). Two
//! plumbing details carry the graceful-shutdown story:
//!
//! * The accept loop blocks in `accept()`; [`Server::request_shutdown`]
//!   wakes it with a loopback self-connection after raising the stop
//!   flag (no `select`/`poll` needed).
//! * Connection threads read with a 200 ms timeout and re-check the stop
//!   flag between reads, preserving any partial line across timeouts so
//!   slow writers are never corrupted.
//!
//! A `Shutdown` frame (or [`Server::request_shutdown`]) stops the accept
//! loop, then the service drains its queue before the workers exit —
//! "drain, then stop".

use crate::protocol::{
    decode_frame, read_frame, write_frame, FrameRead, GossipEntry, Request, Response, ServiceStats,
};
use crate::service::{ScheduleReply, ServeConfig, Service, ServiceError};
use crate::JobSpec;
use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

const READ_POLL: Duration = Duration::from_millis(200);

struct Shared {
    service: Service,
    addr: SocketAddr,
    stop: AtomicBool,
    stopped: Mutex<bool>,
    stopped_cv: Condvar,
}

impl Shared {
    fn request_shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return; // already requested
        }
        *self.stopped.lock().expect("stop flag poisoned") = true;
        self.stopped_cv.notify_all();
        // Wake the blocking accept() with a throwaway self-connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running daemon: accept loop + per-connection threads over a
/// [`Service`].
pub struct Server {
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    pub fn start(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service: Service::start(config)?,
            addr: local,
            stop: AtomicBool::new(false),
            stopped: Mutex::new(false),
            stopped_cv: Condvar::new(),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conns);
        let accept_handle = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared, &accept_conns))?;
        Ok(Server {
            shared,
            accept_handle: Some(accept_handle),
            conns,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The underlying service (stats, direct in-process scheduling).
    pub fn service(&self) -> Service {
        self.shared.service.clone()
    }

    /// Raises the stop flag and wakes the accept loop. Non-blocking;
    /// idempotent. [`run_until_shutdown`](Self::run_until_shutdown)
    /// observes it and finishes the teardown.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until shutdown is requested (by a `Shutdown` frame or
    /// [`request_shutdown`](Self::request_shutdown)), then tears down:
    /// stop accepting, drain and stop the worker pool, join every
    /// connection thread.
    pub fn run_until_shutdown(mut self) {
        {
            let mut stopped = self.shared.stopped.lock().expect("stop flag poisoned");
            while !*stopped {
                stopped = self
                    .shared
                    .stopped_cv
                    .wait(stopped)
                    .expect("stop flag poisoned");
            }
        }
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Drain-then-stop: queued jobs are solved (their conn threads are
        // blocked waiting on response slots), then the workers exit.
        self.shared.service.shutdown(true);
        let handles = std::mem::take(&mut *self.conns.lock().expect("conns poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }

    /// Convenience for tests: request shutdown and complete the
    /// teardown.
    pub fn shutdown(self) {
        self.request_shutdown();
        self.run_until_shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break; // the wake-up self-connection, or a racer
                }
                let conn_shared = Arc::clone(shared);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_conn(stream, &conn_shared))
                {
                    conns.lock().expect("conns poisoned").push(handle);
                }
            }
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept error (EMFILE, aborted handshake):
                // keep serving.
            }
        }
    }
}

fn handle_conn(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        // Serve every complete line already buffered.
        while let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line);
            if line.trim().is_empty() {
                continue;
            }
            match decode_frame::<Request>(&line) {
                Ok(Request::Schedule {
                    job,
                    deadline_ms,
                    request_id,
                }) => {
                    let deadline = deadline_ms.map(Duration::from_millis);
                    let response =
                        match shared
                            .service
                            .schedule_with_id(&job, deadline, request_id.as_deref())
                        {
                            Ok(reply) => Response::Schedule {
                                key: reply.key,
                                cached: reply.cached,
                                payload: reply.payload.to_string(),
                            },
                            Err(err) => Response::Error {
                                code: err.code,
                                message: err.message,
                            },
                        };
                    if write_frame(&mut writer, &response).is_err() {
                        return;
                    }
                }
                Ok(Request::Gossip { entries }) => {
                    let applied = shared.service.absorb(&entries);
                    if write_frame(&mut writer, &Response::GossipAck { applied }).is_err() {
                        return;
                    }
                }
                Ok(Request::Stats) => {
                    let response = Response::Stats {
                        stats: shared.service.stats(),
                        metrics: shared.service.metrics_json(),
                    };
                    if write_frame(&mut writer, &response).is_err() {
                        return;
                    }
                }
                Ok(Request::Shutdown) => {
                    let _ = write_frame(&mut writer, &Response::Bye);
                    shared.request_shutdown();
                    return;
                }
                Err(message) => {
                    let response = Response::Error {
                        code: crate::protocol::CODE_BAD_REQUEST,
                        message: format!("unparseable frame: {message}"),
                    };
                    if write_frame(&mut writer, &response).is_err() {
                        return;
                    }
                }
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match reader.read(&mut buf) {
            Ok(0) => return, // clean EOF
            Ok(n) => pending.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Poll tick: loop back to re-check the stop flag. Any
                // partial line stays in `pending`.
            }
            Err(_) => return,
        }
    }
}

/// Why a [`TcpClient`] call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Socket-level failure.
    Io(String),
    /// The server answered with a structured error frame.
    Remote(ServiceError),
    /// The server answered with an unexpected or unparseable frame.
    Protocol(String),
    /// The connection ended before a complete response arrived —
    /// clean EOF with the request outstanding, or severed mid-frame.
    /// Structured (and retryable via failover) rather than a raw io
    /// error: the peer died, the request may be replayed elsewhere.
    Disconnected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "io error: {m}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Disconnected(m) => write!(f, "server disconnected: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// A blocking JSON-lines client over one TCP connection.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
}

impl TcpClient {
    /// Connects to a running daemon.
    pub fn connect(addr: &str) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            reader: BufReader::new(stream),
        })
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(self.reader.get_mut(), request)?;
        match read_frame::<Response, _>(&mut self.reader)? {
            FrameRead::Frame(response) => Ok(response),
            FrameRead::Malformed(m) => Err(ClientError::Protocol(m)),
            FrameRead::Eof => Err(ClientError::Disconnected(
                "connection closed before response".into(),
            )),
            FrameRead::SeveredMidFrame { partial_bytes } => {
                Err(ClientError::Disconnected(format!(
                    "connection severed mid-frame ({partial_bytes} bytes of a partial response)"
                )))
            }
        }
    }

    /// Schedules one job, optionally bounded by a server-side deadline.
    pub fn schedule(
        &mut self,
        job: &JobSpec,
        deadline_ms: Option<u64>,
    ) -> Result<ScheduleReply, ClientError> {
        self.schedule_with_id(job, deadline_ms, None)
    }

    /// [`schedule`](Self::schedule) carrying a client request id, so a
    /// failover retry of this idempotent request can be deduplicated
    /// server-side.
    pub fn schedule_with_id(
        &mut self,
        job: &JobSpec,
        deadline_ms: Option<u64>,
        request_id: Option<&str>,
    ) -> Result<ScheduleReply, ClientError> {
        let request = Request::Schedule {
            job: job.clone(),
            deadline_ms,
            request_id: request_id.map(String::from),
        };
        match self.round_trip(&request)? {
            Response::Schedule {
                key,
                cached,
                payload,
            } => Ok(ScheduleReply {
                key,
                cached,
                payload: payload.into(),
            }),
            Response::Error { code, message } => {
                Err(ClientError::Remote(ServiceError { code, message }))
            }
            other => Err(ClientError::Protocol(format!(
                "expected Schedule frame, got {other:?}"
            ))),
        }
    }

    /// Pushes cache entries to a peer daemon; returns how many the peer
    /// newly applied. The replicator's delivery path.
    pub fn gossip(&mut self, entries: &[GossipEntry]) -> Result<u64, ClientError> {
        let request = Request::Gossip {
            entries: entries.to_vec(),
        };
        match self.round_trip(&request)? {
            Response::GossipAck { applied } => Ok(applied),
            Response::Error { code, message } => {
                Err(ClientError::Remote(ServiceError { code, message }))
            }
            other => Err(ClientError::Protocol(format!(
                "expected GossipAck frame, got {other:?}"
            ))),
        }
    }

    /// Fetches service counters and the recorder's metrics snapshot.
    pub fn stats(&mut self) -> Result<(ServiceStats, String), ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats { stats, metrics } => Ok((stats, metrics)),
            Response::Error { code, message } => {
                Err(ClientError::Remote(ServiceError { code, message }))
            }
            other => Err(ClientError::Protocol(format!(
                "expected Stats frame, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to shut down gracefully; resolves once the server
    /// acknowledges with `Bye`.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected Bye frame, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Workload;
    use rfid_model::{RadiusModel, Scenario, ScenarioKind};
    use std::io::Write;

    fn small_job(seed: u64) -> JobSpec {
        JobSpec::new(Workload::Generated {
            scenario: Scenario {
                kind: ScenarioKind::UniformRandom,
                n_readers: 8,
                n_tags: 40,
                region_side: 40.0,
                radius_model: RadiusModel::paper_default(),
            },
            seed,
        })
    }

    fn test_server() -> Server {
        Server::start(
            "127.0.0.1:0",
            ServeConfig {
                workers: 2,
                queue_cap: 8,
                cache_cap: 16,
                ..ServeConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn schedule_and_stats_over_tcp() {
        let server = test_server();
        let addr = server.addr().to_string();
        let mut client = TcpClient::connect(&addr).unwrap();
        let cold = client.schedule(&small_job(4), None).unwrap();
        assert!(!cold.cached);
        let warm = client.schedule(&small_job(4), None).unwrap();
        assert!(warm.cached);
        assert_eq!(cold.payload, warm.payload);
        let (stats, metrics) = client.stats().unwrap();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.solved, 1);
        assert!(metrics.contains("serve.cache.hit"));
        server.shutdown();
    }

    #[test]
    fn bad_frames_get_error_responses_and_the_connection_survives() {
        let server = test_server();
        let addr = server.addr().to_string();
        let mut client = TcpClient::connect(&addr).unwrap();
        // Hand-inject garbage, then a valid request on the same socket.
        writeln!(client.reader.get_mut(), "this is not json").unwrap();
        match read_frame::<Response, _>(&mut client.reader).unwrap() {
            FrameRead::Frame(Response::Error { code, .. }) => {
                assert_eq!(code, crate::protocol::CODE_BAD_REQUEST)
            }
            other => panic!("expected error frame, got {other:?}"),
        }
        let reply = client.schedule(&small_job(1), None).unwrap();
        assert!(!reply.cached);
        server.shutdown();
    }

    #[test]
    fn shutdown_frame_stops_the_daemon() {
        let server = test_server();
        let addr = server.addr().to_string();
        let mut client = TcpClient::connect(&addr).unwrap();
        client.schedule(&small_job(2), None).unwrap();
        client.shutdown_server().unwrap();
        // The returned run_until_shutdown must complete (daemon stopped).
        server.run_until_shutdown();
        // New connections are refused or go unanswered once stopped.
        // A refused connect (bind already released) is also fine.
        if let Ok(mut c) = TcpClient::connect(&addr) {
            assert!(c.stats().is_err());
        }
    }

    #[test]
    fn severed_socket_mid_frame_is_a_structured_disconnect() {
        // A fake "server" that reads the request, writes half a response
        // frame (no newline) and slams the connection shut.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let fake = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = std::io::Read::read(&mut stream, &mut buf); // the request
            let full = crate::protocol::encode_frame(&Response::Bye);
            let cut = &full.as_bytes()[..full.len() / 2];
            stream.write_all(cut).unwrap();
            // Dropping the stream severs the connection mid-frame.
        });
        let mut client = TcpClient::connect(&addr).unwrap();
        let err = client.schedule(&small_job(1), None).unwrap_err();
        match err {
            ClientError::Disconnected(m) => assert!(m.contains("mid-frame"), "{m}"),
            other => panic!("expected Disconnected, got {other:?}"),
        }
        fake.join().unwrap();
    }

    #[test]
    fn clean_eof_before_response_is_also_a_disconnect() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let fake = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = std::io::Read::read(&mut stream, &mut buf);
            // Close without writing anything.
        });
        let mut client = TcpClient::connect(&addr).unwrap();
        let err = client.schedule(&small_job(1), None).unwrap_err();
        assert!(matches!(err, ClientError::Disconnected(_)), "{err:?}");
        fake.join().unwrap();
    }

    #[test]
    fn gossip_frames_warm_a_peer_cache() {
        let source = test_server();
        let sink = test_server();
        let mut a = TcpClient::connect(&source.addr().to_string()).unwrap();
        let cold = a.schedule(&small_job(11), None).unwrap();

        // Hand-carry the entry, as the replicator would.
        let mut b = TcpClient::connect(&sink.addr().to_string()).unwrap();
        let entries = vec![GossipEntry {
            key: cold.key.clone(),
            payload: cold.payload.to_string(),
        }];
        assert_eq!(b.gossip(&entries).unwrap(), 1, "first push applies");
        assert_eq!(b.gossip(&entries).unwrap(), 0, "re-push is idempotent");

        // The sink now answers from cache with the identical bytes.
        let warm = b.schedule(&small_job(11), None).unwrap();
        assert!(warm.cached, "gossiped entry must be a warm hit");
        assert_eq!(cold.payload, warm.payload);
        let stats = sink.service().stats();
        assert_eq!(stats.replicated_in, 1);
        source.shutdown();
        sink.shutdown();
    }

    #[test]
    fn peered_servers_replicate_automatically() {
        // sink first (to know its address), then source configured to
        // gossip at it.
        let sink = test_server();
        let source = Server::start(
            "127.0.0.1:0",
            ServeConfig {
                workers: 2,
                queue_cap: 8,
                cache_cap: 16,
                peers: vec![sink.addr().to_string()],
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut a = TcpClient::connect(&source.addr().to_string()).unwrap();
        let cold = a.schedule(&small_job(12), None).unwrap();

        // Replication is asynchronous; poll the sink until it lands.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sink.service().stats().replicated_in == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "gossip never reached the peer"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut b = TcpClient::connect(&sink.addr().to_string()).unwrap();
        let warm = b.schedule(&small_job(12), None).unwrap();
        assert!(warm.cached);
        assert_eq!(cold.payload, warm.payload);
        assert!(source.service().stats().replicated_out >= 1);
        source.shutdown();
        sink.shutdown();
    }

    #[test]
    fn two_clients_share_the_cache() {
        let server = test_server();
        let addr = server.addr().to_string();
        let mut a = TcpClient::connect(&addr).unwrap();
        let mut b = TcpClient::connect(&addr).unwrap();
        let cold = a.schedule(&small_job(6), None).unwrap();
        let warm = b.schedule(&small_job(6), None).unwrap();
        assert!(!cold.cached);
        assert!(warm.cached);
        assert_eq!(cold.payload, warm.payload);
        server.shutdown();
    }
}
