//! The zero-dependency TCP daemon and its blocking client.
//!
//! `std::net` only, per the vendored-offline policy. Since PR 8 the
//! daemon is event-driven: one [`crate::reactor`] thread owns every
//! connection (nonblocking sockets, per-connection read/write buffers,
//! request pipelining with strictly ordered responses) and the
//! [`Service`] worker pool stays the solve executor behind it. The old
//! thread-per-connection model — a parked thread and a 200 ms poll tick
//! per socket — is gone.
//!
//! Graceful shutdown is a three-step handshake: a `Shutdown` frame (or
//! [`Server::request_shutdown`]) raises the stop flag;
//! [`Server::run_until_shutdown`] pauses reactor intake and drains the
//! work queue (workers fulfill every admitted job, the reactor flushes
//! every reply); then the reactor resolves anything still unready with
//! a structured `503` frame and exits — "drain, then stop".

use crate::codec::scan_key_frame;
use crate::protocol::{
    decode_frame, encode_frame, read_frame, version_gate, FrameRead, GossipEntry, Request,
    Response, ServiceStats, CODE_SHUTTING_DOWN, PROTOCOL_VERSION,
};
use crate::reactor::{Action, FrameHandler, Reactor, Reply, SplicedFrame};
use crate::service::{KeyHit, ScheduleReply, ServeConfig, Service, ServiceError, Submission};
use crate::JobSpec;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared {
    service: Service,
    stopped: Mutex<bool>,
    stopped_cv: Condvar,
}

impl Shared {
    fn request_shutdown(&self) {
        let mut stopped = self.stopped.lock().expect("stop flag poisoned");
        if !*stopped {
            *stopped = true;
            self.stopped_cv.notify_all();
        }
    }
}

/// The daemon's [`FrameHandler`]: admission runs inline on the event
/// thread (cache hits and errors answer immediately), queued solves
/// become pending replies the reactor polls.
struct ServeHandler {
    shared: Arc<Shared>,
}

impl ServeHandler {
    fn schedule_action(
        &self,
        job: &JobSpec,
        deadline_ms: Option<u64>,
        request_id: Option<&str>,
    ) -> Action {
        match self.shared.service.submit_with_id(job, request_id) {
            Submission::Ready(result) => Action::Reply(Reply::Now(schedule_frame(result))),
            Submission::Queued(slot) => {
                let service = self.shared.service.clone();
                let give_up_at = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
                let deadline_desc = format!("{:?}", deadline_ms.map(Duration::from_millis));
                Action::Reply(Reply::Pending(Box::new(move || {
                    if let Some(result) = slot.try_take() {
                        return Some(schedule_frame(result));
                    }
                    if let Some(at) = give_up_at {
                        if Instant::now() >= at {
                            slot.abandon();
                            // The worker may have fulfilled between the
                            // poll and the abandon — honour that result.
                            if let Some(result) = slot.try_take() {
                                return Some(schedule_frame(result));
                            }
                            return Some(schedule_frame(Err(
                                service.deadline_expired(&deadline_desc)
                            )));
                        }
                    }
                    None
                })))
            }
        }
    }

    /// The delta twin of [`schedule_action`](Self::schedule_action):
    /// admission resolves the base and patches it inline; every result
    /// — immediate or polled — passes through
    /// [`Service::finish_delta`] so the reply is addressed (and the
    /// payload aliased) under the derived key.
    fn delta_action(
        &self,
        base: &str,
        ops: &[rfid_delta::ScenarioDelta],
        deadline_ms: Option<u64>,
        request_id: Option<&str>,
    ) -> Action {
        let service = self.shared.service.clone();
        let (derived, submission) = service.submit_delta(base, ops, request_id);
        match submission {
            Submission::Ready(result) => Action::Reply(Reply::Now(schedule_frame(
                service.finish_delta(derived, result),
            ))),
            Submission::Queued(slot) => {
                let give_up_at = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
                let deadline_desc = format!("{:?}", deadline_ms.map(Duration::from_millis));
                Action::Reply(Reply::Pending(Box::new(move || {
                    if let Some(result) = slot.try_take() {
                        return Some(schedule_frame(service.finish_delta(derived, result)));
                    }
                    if let Some(at) = give_up_at {
                        if Instant::now() >= at {
                            slot.abandon();
                            if let Some(result) = slot.try_take() {
                                return Some(schedule_frame(service.finish_delta(derived, result)));
                            }
                            return Some(schedule_frame(Err(
                                service.deadline_expired(&deadline_desc)
                            )));
                        }
                    }
                    None
                })))
            }
        }
    }

    /// The request-by-key path: answer from the cache by content key
    /// alone — a hit splices the entry's pre-rendered payload bytes
    /// into the reply envelope (no serde re-serialization, no payload
    /// copy); a miss is a structured `404` whose message starts with
    /// `key-miss`, the client's cue to fall back to the full frame.
    fn key_action(&self, key: &str, ops: &[rfid_delta::ScenarioDelta]) -> Action {
        match self.shared.service.request_by_key(key, ops) {
            Ok(hit) => Action::Reply(Reply::Spliced(spliced_schedule_frame(&hit))),
            Err(err) => Action::Reply(Reply::Now(encode_frame(&Response::Error {
                code: err.code,
                message: err.message,
            }))),
        }
    }
}

impl FrameHandler for ServeHandler {
    fn on_line(&self, line: &str) -> Action {
        // Fast path: a shallow scan answers ops-free key frames without
        // a full serde parse. Frames carrying ops (their deltas need
        // real decoding) and anything the scanner finds ambiguous take
        // the decode below — `Request::Key` handles both identically.
        if let Some(scan) = scan_key_frame(line) {
            if !scan.has_ops {
                return match version_gate(scan.v) {
                    Some(err) => Action::Reply(Reply::Now(encode_frame(&err))),
                    None => self.key_action(scan.key, &[]),
                };
            }
        }
        match decode_frame::<Request>(line) {
            Ok(Request::Hello { v }) => match version_gate(Some(v)) {
                Some(err) => Action::Reply(Reply::Now(encode_frame(&err))),
                None => Action::Reply(Reply::Now(encode_frame(&Response::HelloAck {
                    v: PROTOCOL_VERSION,
                }))),
            },
            Ok(Request::Schedule {
                job,
                deadline_ms,
                request_id,
                v,
            }) => match version_gate(v) {
                Some(err) => Action::Reply(Reply::Now(encode_frame(&err))),
                None => self.schedule_action(&job, deadline_ms, request_id.as_deref()),
            },
            Ok(Request::Delta {
                base,
                ops,
                deadline_ms,
                request_id,
                v,
            }) => match version_gate(v) {
                Some(err) => Action::Reply(Reply::Now(encode_frame(&err))),
                None => self.delta_action(&base, &ops, deadline_ms, request_id.as_deref()),
            },
            Ok(Request::Key {
                key,
                ops,
                request_id: _,
                v,
            }) => match version_gate(v) {
                Some(err) => Action::Reply(Reply::Now(encode_frame(&err))),
                None => self.key_action(&key, ops.as_deref().unwrap_or(&[])),
            },
            Ok(Request::Gossip { entries, v }) => match version_gate(v) {
                Some(err) => Action::Reply(Reply::Now(encode_frame(&err))),
                None => {
                    let applied = self.shared.service.absorb(&entries);
                    Action::Reply(Reply::Now(encode_frame(&Response::GossipAck { applied })))
                }
            },
            Ok(Request::Stats) => Action::Reply(Reply::Now(encode_frame(&Response::Stats {
                stats: self.shared.service.stats(),
                metrics: self.shared.service.metrics_json(),
            }))),
            Ok(Request::Shutdown) => {
                self.shared.request_shutdown();
                Action::ReplyShutdown(Reply::Now(encode_frame(&Response::Bye)))
            }
            Err(message) => Action::Reply(Reply::Now(encode_frame(&Response::Error {
                code: crate::protocol::CODE_BAD_REQUEST,
                message: format!("unparseable frame: {message}"),
            }))),
        }
    }

    fn drain_fallback(&self) -> String {
        encode_frame(&Response::Error {
            code: CODE_SHUTTING_DOWN,
            message: "service stopped before the result was ready".into(),
        })
    }
}

/// Assembles the `Response::Schedule` envelope around a cache entry's
/// pre-rendered payload bytes, byte-for-byte what
/// `encode_frame(&Response::Schedule { .. })` would produce — pinned by
/// differential tests so the splice can never drift from serde.
fn spliced_schedule_frame(hit: &KeyHit) -> SplicedFrame {
    SplicedFrame {
        prefix: format!(
            "{{\"Schedule\":{{\"key\":\"{}\",\"cached\":true,\"payload\":",
            hit.key_hex
        ),
        payload: Arc::clone(&hit.wire),
        suffix: "}}\n",
    }
}

fn schedule_frame(result: Result<ScheduleReply, ServiceError>) -> String {
    let response = match result {
        Ok(reply) => Response::Schedule {
            key: reply.key,
            cached: reply.cached,
            payload: reply.payload.to_string(),
        },
        Err(err) => Response::Error {
            code: err.code,
            message: err.message,
        },
    };
    encode_frame(&response)
}

/// A running daemon: one reactor thread multiplexing every connection
/// over a [`Service`].
pub struct Server {
    shared: Arc<Shared>,
    reactor: Option<Reactor>,
    addr: SocketAddr,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    pub fn start(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service: Service::start(config)?,
            stopped: Mutex::new(false),
            stopped_cv: Condvar::new(),
        });
        let handler = Arc::new(ServeHandler {
            shared: Arc::clone(&shared),
        });
        let reactor = Reactor::spawn(listener, handler)?;
        Ok(Server {
            shared,
            reactor: Some(reactor),
            addr: local,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying service (stats, direct in-process scheduling).
    pub fn service(&self) -> Service {
        self.shared.service.clone()
    }

    /// Raises the stop flag. Non-blocking; idempotent.
    /// [`run_until_shutdown`](Self::run_until_shutdown) observes it and
    /// finishes the teardown.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until shutdown is requested (by a `Shutdown` frame or
    /// [`request_shutdown`](Self::request_shutdown)), then tears down:
    /// pause intake, drain and stop the worker pool (the reactor keeps
    /// flushing results to their clients meanwhile), stop the reactor.
    pub fn run_until_shutdown(mut self) {
        {
            let mut stopped = self.shared.stopped.lock().expect("stop flag poisoned");
            while !*stopped {
                stopped = self
                    .shared
                    .stopped_cv
                    .wait(stopped)
                    .expect("stop flag poisoned");
            }
        }
        let reactor = self.reactor.take();
        if let Some(r) = &reactor {
            r.pause_intake();
        }
        // Drain-then-stop: every admitted job is solved and its reply
        // flushed by the still-running reactor before the loop exits.
        self.shared.service.shutdown(true);
        if let Some(r) = reactor {
            r.stop();
        }
    }

    /// Convenience for tests: request shutdown and complete the
    /// teardown.
    pub fn shutdown(self) {
        self.request_shutdown();
        self.run_until_shutdown();
    }
}

/// Why a [`TcpClient`] call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Socket-level failure.
    Io(String),
    /// The server answered with a structured error frame.
    Remote(ServiceError),
    /// The server answered with an unexpected or unparseable frame.
    Protocol(String),
    /// The connection ended before a complete response arrived —
    /// clean EOF with the request outstanding, or severed mid-frame.
    /// Structured (and retryable via failover) rather than a raw io
    /// error: the peer died, the request may be replayed elsewhere.
    Disconnected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(m) => write!(f, "io error: {m}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Disconnected(m) => write!(f, "server disconnected: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e.to_string())
    }
}

/// A blocking JSON-lines client over one TCP connection.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
}

impl TcpClient {
    /// Connects to a running daemon.
    pub fn connect(addr: &str) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            reader: BufReader::new(stream),
        })
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        match read_frame::<Response, _>(&mut self.reader)? {
            FrameRead::Frame(response) => Ok(response),
            FrameRead::Malformed(m) => Err(ClientError::Protocol(m)),
            FrameRead::Eof => Err(ClientError::Disconnected(
                "connection closed before response".into(),
            )),
            FrameRead::SeveredMidFrame { partial_bytes } => {
                Err(ClientError::Disconnected(format!(
                    "connection severed mid-frame ({partial_bytes} bytes of a partial response)"
                )))
            }
        }
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        crate::protocol::write_frame(self.reader.get_mut(), request)?;
        self.read_response()
    }

    /// Declares this client's protocol version; returns the server's.
    /// A server that cannot serve us answers a structured 426 error.
    pub fn hello(&mut self) -> Result<u32, ClientError> {
        match self.round_trip(&Request::Hello {
            v: PROTOCOL_VERSION,
        })? {
            Response::HelloAck { v } => Ok(v),
            Response::Error { code, message } => {
                Err(ClientError::Remote(ServiceError { code, message }))
            }
            other => Err(ClientError::Protocol(format!(
                "expected HelloAck frame, got {other:?}"
            ))),
        }
    }

    /// Schedules one job, optionally bounded by a server-side deadline.
    pub fn schedule(
        &mut self,
        job: &JobSpec,
        deadline_ms: Option<u64>,
    ) -> Result<ScheduleReply, ClientError> {
        self.schedule_with_id(job, deadline_ms, None)
    }

    /// [`schedule`](Self::schedule) carrying a client request id, so a
    /// failover retry of this idempotent request can be deduplicated
    /// server-side.
    pub fn schedule_with_id(
        &mut self,
        job: &JobSpec,
        deadline_ms: Option<u64>,
        request_id: Option<&str>,
    ) -> Result<ScheduleReply, ClientError> {
        let request = Request::Schedule {
            job: job.clone(),
            deadline_ms,
            request_id: request_id.map(String::from),
            v: Some(PROTOCOL_VERSION),
        };
        match self.round_trip(&request)? {
            Response::Schedule {
                key,
                cached,
                payload,
            } => Ok(ScheduleReply {
                key,
                cached,
                payload: payload.into(),
            }),
            Response::Error { code, message } => {
                Err(ClientError::Remote(ServiceError { code, message }))
            }
            other => Err(ClientError::Protocol(format!(
                "expected Schedule frame, got {other:?}"
            ))),
        }
    }

    /// Schedules a **delta** job: `ops` applied to the scenario the
    /// server already knows under the `base` content key. A server that
    /// never saw the base answers a structured `404` whose message
    /// starts with `base-miss` — the caller's cue to re-send the full
    /// scenario.
    pub fn schedule_delta(
        &mut self,
        base: &str,
        ops: &[rfid_delta::ScenarioDelta],
        deadline_ms: Option<u64>,
        request_id: Option<&str>,
    ) -> Result<ScheduleReply, ClientError> {
        let request = Request::Delta {
            base: base.to_string(),
            ops: ops.to_vec(),
            deadline_ms,
            request_id: request_id.map(String::from),
            v: Some(PROTOCOL_VERSION),
        };
        match self.round_trip(&request)? {
            Response::Schedule {
                key,
                cached,
                payload,
            } => Ok(ScheduleReply {
                key,
                cached,
                payload: payload.into(),
            }),
            Response::Error { code, message } => {
                Err(ClientError::Remote(ServiceError { code, message }))
            }
            other => Err(ClientError::Protocol(format!(
                "expected Schedule frame, got {other:?}"
            ))),
        }
    }

    /// Requests a schedule by **content key alone** (protocol v4): the
    /// server answers from cache without touching the scenario codec.
    /// Non-empty `ops` address the delta derived from `key` (cached on
    /// the base key's node). A key the server does not hold answers a
    /// structured `404` whose message starts with `key-miss` — the cue
    /// to fall back to the full `Schedule`/`Delta` frame.
    pub fn schedule_by_key(
        &mut self,
        key: &str,
        ops: &[rfid_delta::ScenarioDelta],
    ) -> Result<ScheduleReply, ClientError> {
        let request = Request::Key {
            key: key.to_string(),
            ops: (!ops.is_empty()).then(|| ops.to_vec()),
            request_id: None,
            v: Some(PROTOCOL_VERSION),
        };
        match self.round_trip(&request)? {
            Response::Schedule {
                key,
                cached,
                payload,
            } => Ok(ScheduleReply {
                key,
                cached,
                payload: payload.into(),
            }),
            Response::Error { code, message } => {
                Err(ClientError::Remote(ServiceError { code, message }))
            }
            other => Err(ClientError::Protocol(format!(
                "expected Schedule frame, got {other:?}"
            ))),
        }
    }

    /// Pipelines a batch of schedule requests on this one connection:
    /// all frames are written before any response is read, and the
    /// server answers them strictly in request order (the reactor's
    /// ordering guarantee). Per-request application errors come back as
    /// inner `Err`s; a transport failure fails the whole batch.
    pub fn schedule_batch(
        &mut self,
        jobs: &[JobSpec],
        deadline_ms: Option<u64>,
    ) -> Result<Vec<Result<ScheduleReply, ServiceError>>, ClientError> {
        let mut batch = String::new();
        for job in jobs {
            batch.push_str(&encode_frame(&Request::Schedule {
                job: job.clone(),
                deadline_ms,
                request_id: None,
                v: Some(PROTOCOL_VERSION),
            }));
        }
        {
            use std::io::Write;
            let w = self.reader.get_mut();
            w.write_all(batch.as_bytes())?;
            w.flush()?;
        }
        let mut replies = Vec::with_capacity(jobs.len());
        for _ in jobs {
            replies.push(match self.read_response()? {
                Response::Schedule {
                    key,
                    cached,
                    payload,
                } => Ok(ScheduleReply {
                    key,
                    cached,
                    payload: payload.into(),
                }),
                Response::Error { code, message } => Err(ServiceError { code, message }),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected Schedule frame, got {other:?}"
                    )))
                }
            });
        }
        Ok(replies)
    }

    /// Pushes cache entries to a peer daemon; returns how many the peer
    /// newly applied. The replicator's delivery path.
    pub fn gossip(&mut self, entries: &[GossipEntry]) -> Result<u64, ClientError> {
        let request = Request::Gossip {
            entries: entries.to_vec(),
            v: Some(PROTOCOL_VERSION),
        };
        match self.round_trip(&request)? {
            Response::GossipAck { applied } => Ok(applied),
            Response::Error { code, message } => {
                Err(ClientError::Remote(ServiceError { code, message }))
            }
            other => Err(ClientError::Protocol(format!(
                "expected GossipAck frame, got {other:?}"
            ))),
        }
    }

    /// Fetches service counters and the recorder's metrics snapshot.
    pub fn stats(&mut self) -> Result<(ServiceStats, String), ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats { stats, metrics } => Ok((stats, metrics)),
            Response::Error { code, message } => {
                Err(ClientError::Remote(ServiceError { code, message }))
            }
            other => Err(ClientError::Protocol(format!(
                "expected Stats frame, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to shut down gracefully; resolves once the server
    /// acknowledges with `Bye`.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected Bye frame, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Workload;
    use crate::protocol::CODE_UPGRADE_REQUIRED;
    use rfid_model::{RadiusModel, Scenario, ScenarioKind};
    use std::io::Write;

    fn small_job(seed: u64) -> JobSpec {
        JobSpec::new(Workload::Generated {
            scenario: Scenario {
                kind: ScenarioKind::UniformRandom,
                n_readers: 8,
                n_tags: 40,
                region_side: 40.0,
                radius_model: RadiusModel::paper_default(),
            },
            seed,
        })
    }

    fn test_server() -> Server {
        Server::start(
            "127.0.0.1:0",
            ServeConfig {
                workers: 2,
                queue_cap: 8,
                cache_cap: 16,
                ..ServeConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn schedule_and_stats_over_tcp() {
        let server = test_server();
        let addr = server.addr().to_string();
        let mut client = TcpClient::connect(&addr).unwrap();
        let cold = client.schedule(&small_job(4), None).unwrap();
        assert!(!cold.cached);
        let warm = client.schedule(&small_job(4), None).unwrap();
        assert!(warm.cached);
        assert_eq!(cold.payload, warm.payload);
        let (stats, metrics) = client.stats().unwrap();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.solved, 1);
        assert!(metrics.contains("serve.cache.hit"));
        server.shutdown();
    }

    #[test]
    fn hello_negotiates_and_newer_versions_draw_426() {
        let server = test_server();
        let addr = server.addr().to_string();
        let mut client = TcpClient::connect(&addr).unwrap();
        assert_eq!(client.hello().unwrap(), PROTOCOL_VERSION);
        // A frame from the future: Schedule claiming v+1.
        let request = Request::Schedule {
            job: small_job(1),
            deadline_ms: None,
            request_id: None,
            v: Some(PROTOCOL_VERSION + 1),
        };
        match client.round_trip(&request).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, CODE_UPGRADE_REQUIRED),
            other => panic!("expected 426 error frame, got {other:?}"),
        }
        // The connection survives and serves current-version frames.
        assert!(client.schedule(&small_job(1), None).is_ok());
        server.shutdown();
    }

    #[test]
    fn v1_frames_without_version_field_still_serve() {
        let server = test_server();
        let addr = server.addr().to_string();
        let mut client = TcpClient::connect(&addr).unwrap();
        let job_json = serde_json::to_string(&small_job(3)).unwrap();
        let line = format!(r#"{{"Schedule":{{"job":{job_json},"deadline_ms":null}}}}"#);
        let w = client.reader.get_mut();
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
        match client.read_response().unwrap() {
            Response::Schedule { cached, .. } => assert!(!cached),
            other => panic!("expected Schedule frame, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order_on_one_connection() {
        let server = test_server();
        let addr = server.addr().to_string();
        let mut client = TcpClient::connect(&addr).unwrap();
        // Mix of distinct jobs and repeats (hits + coalesced followers).
        let jobs: Vec<JobSpec> = vec![
            small_job(10),
            small_job(11),
            small_job(10),
            small_job(12),
            small_job(11),
            small_job(10),
        ];
        let replies = client.schedule_batch(&jobs, None).unwrap();
        assert_eq!(replies.len(), jobs.len());
        let keys: Vec<String> = replies
            .iter()
            .map(|r| r.as_ref().unwrap().key.clone())
            .collect();
        // Positional matching: response i answers request i.
        assert_eq!(keys[0], keys[2]);
        assert_eq!(keys[0], keys[5]);
        assert_eq!(keys[1], keys[4]);
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[3]);
        // Identical payloads for identical jobs, whatever the path.
        assert_eq!(
            replies[0].as_ref().unwrap().payload,
            replies[2].as_ref().unwrap().payload
        );
        server.shutdown();
    }

    #[test]
    fn bad_frames_get_error_responses_and_the_connection_survives() {
        let server = test_server();
        let addr = server.addr().to_string();
        let mut client = TcpClient::connect(&addr).unwrap();
        // Hand-inject garbage, then a valid request on the same socket.
        writeln!(client.reader.get_mut(), "this is not json").unwrap();
        match read_frame::<Response, _>(&mut client.reader).unwrap() {
            FrameRead::Frame(Response::Error { code, .. }) => {
                assert_eq!(code, crate::protocol::CODE_BAD_REQUEST)
            }
            other => panic!("expected error frame, got {other:?}"),
        }
        let reply = client.schedule(&small_job(1), None).unwrap();
        assert!(!reply.cached);
        server.shutdown();
    }

    #[test]
    fn shutdown_frame_stops_the_daemon() {
        let server = test_server();
        let addr = server.addr().to_string();
        let mut client = TcpClient::connect(&addr).unwrap();
        client.schedule(&small_job(2), None).unwrap();
        client.shutdown_server().unwrap();
        // The returned run_until_shutdown must complete (daemon stopped).
        server.run_until_shutdown();
        // New connections are refused or go unanswered once stopped.
        // A refused connect (bind already released) is also fine.
        if let Ok(mut c) = TcpClient::connect(&addr) {
            assert!(c.stats().is_err());
        }
    }

    #[test]
    fn severed_socket_mid_frame_is_a_structured_disconnect() {
        // A fake "server" that reads the request, writes half a response
        // frame (no newline) and slams the connection shut.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let fake = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = std::io::Read::read(&mut stream, &mut buf); // the request
            let full = crate::protocol::encode_frame(&Response::Bye);
            let cut = &full.as_bytes()[..full.len() / 2];
            stream.write_all(cut).unwrap();
            // Dropping the stream severs the connection mid-frame.
        });
        let mut client = TcpClient::connect(&addr).unwrap();
        let err = client.schedule(&small_job(1), None).unwrap_err();
        match err {
            ClientError::Disconnected(m) => assert!(m.contains("mid-frame"), "{m}"),
            other => panic!("expected Disconnected, got {other:?}"),
        }
        fake.join().unwrap();
    }

    #[test]
    fn clean_eof_before_response_is_also_a_disconnect() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let fake = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = std::io::Read::read(&mut stream, &mut buf);
            // Close without writing anything.
        });
        let mut client = TcpClient::connect(&addr).unwrap();
        let err = client.schedule(&small_job(1), None).unwrap_err();
        assert!(matches!(err, ClientError::Disconnected(_)), "{err:?}");
        fake.join().unwrap();
    }

    #[test]
    fn gossip_frames_warm_a_peer_cache() {
        let source = test_server();
        let sink = test_server();
        let mut a = TcpClient::connect(&source.addr().to_string()).unwrap();
        let cold = a.schedule(&small_job(11), None).unwrap();

        // Hand-carry the entry, as the replicator would.
        let mut b = TcpClient::connect(&sink.addr().to_string()).unwrap();
        let entries = vec![GossipEntry {
            key: cold.key.clone(),
            payload: cold.payload.to_string(),
        }];
        assert_eq!(b.gossip(&entries).unwrap(), 1, "first push applies");
        assert_eq!(b.gossip(&entries).unwrap(), 0, "re-push is idempotent");

        // The sink now answers from cache with the identical bytes.
        let warm = b.schedule(&small_job(11), None).unwrap();
        assert!(warm.cached, "gossiped entry must be a warm hit");
        assert_eq!(cold.payload, warm.payload);
        let stats = sink.service().stats();
        assert_eq!(stats.replicated_in, 1);
        source.shutdown();
        sink.shutdown();
    }

    #[test]
    fn peered_servers_replicate_automatically() {
        // sink first (to know its address), then source configured to
        // gossip at it.
        let sink = test_server();
        let source = Server::start(
            "127.0.0.1:0",
            ServeConfig {
                workers: 2,
                queue_cap: 8,
                cache_cap: 16,
                peers: vec![sink.addr().to_string()],
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let mut a = TcpClient::connect(&source.addr().to_string()).unwrap();
        let cold = a.schedule(&small_job(12), None).unwrap();

        // Replication is asynchronous; poll the sink until it lands.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while sink.service().stats().replicated_in == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "gossip never reached the peer"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut b = TcpClient::connect(&sink.addr().to_string()).unwrap();
        let warm = b.schedule(&small_job(12), None).unwrap();
        assert!(warm.cached);
        assert_eq!(cold.payload, warm.payload);
        assert!(source.service().stats().replicated_out >= 1);
        source.shutdown();
        sink.shutdown();
    }

    #[test]
    fn delta_round_trip_over_tcp() {
        use rfid_delta::ScenarioDelta;
        let server = test_server();
        let addr = server.addr().to_string();
        let mut client = TcpClient::connect(&addr).unwrap();
        let base = client.schedule(&small_job(21), None).unwrap();
        let ops = vec![
            ScenarioDelta::AddTag { x: 12.0, y: 13.0 },
            ScenarioDelta::SetReaderAlive {
                reader: 3,
                alive: false,
            },
        ];
        let patched = client.schedule_delta(&base.key, &ops, None, None).unwrap();
        assert_ne!(patched.key, base.key);
        assert_ne!(patched.payload, base.payload);

        // Replay: second ask for the same delta is a warm hit with the
        // same bytes (derived-key alias).
        let again = client.schedule_delta(&base.key, &ops, None, None).unwrap();
        assert!(again.cached);
        assert_eq!(again.key, patched.key);
        assert_eq!(again.payload, patched.payload);

        // Unknown base → structured base-miss 404.
        let err = client
            .schedule_delta("1111111111111111", &ops, None, None)
            .unwrap_err();
        match err {
            ClientError::Remote(e) => {
                assert_eq!(e.code, crate::protocol::CODE_BASE_MISS);
                assert!(e.message.starts_with("base-miss"), "{}", e.message);
            }
            other => panic!("expected Remote base-miss, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn key_requests_answer_byte_identical_frames_to_full_requests() {
        let server = test_server();
        let addr = server.addr().to_string();
        let mut client = TcpClient::connect(&addr).unwrap();
        let cold = client.schedule(&small_job(31), None).unwrap();

        // Raw wire bytes: the warm full-frame reply (serde-rendered)...
        let full = Request::Schedule {
            job: small_job(31),
            deadline_ms: None,
            request_id: None,
            v: Some(PROTOCOL_VERSION),
        };
        client
            .reader
            .get_mut()
            .write_all(encode_frame(&full).as_bytes())
            .unwrap();
        let mut full_line = String::new();
        std::io::BufRead::read_line(&mut client.reader, &mut full_line).unwrap();

        // ...and the spliced key-frame reply must be identical bytes.
        let key_req = Request::Key {
            key: cold.key.clone(),
            ops: None,
            request_id: None,
            v: Some(PROTOCOL_VERSION),
        };
        client
            .reader
            .get_mut()
            .write_all(encode_frame(&key_req).as_bytes())
            .unwrap();
        let mut key_line = String::new();
        std::io::BufRead::read_line(&mut client.reader, &mut key_line).unwrap();
        assert_eq!(full_line, key_line);

        let hit = client.schedule_by_key(&cold.key, &[]).unwrap();
        assert!(hit.cached);
        assert_eq!(hit.key, cold.key);
        assert_eq!(hit.payload, cold.payload);
        server.shutdown();
    }

    #[test]
    fn key_miss_is_a_structured_404_and_the_connection_survives() {
        let server = test_server();
        let addr = server.addr().to_string();
        let mut client = TcpClient::connect(&addr).unwrap();
        let err = client.schedule_by_key("00000000000000aa", &[]).unwrap_err();
        match err {
            ClientError::Remote(e) => {
                assert_eq!(e.code, crate::protocol::CODE_KEY_MISS);
                assert!(e.message.starts_with("key-miss"), "{}", e.message);
            }
            other => panic!("expected Remote key-miss, got {other:?}"),
        }
        // Fall back to the full frame on the same connection...
        let reply = client.schedule(&small_job(32), None).unwrap();
        assert!(!reply.cached);
        // ...after which the key path hits.
        let hit = client.schedule_by_key(&reply.key, &[]).unwrap();
        assert!(hit.cached);
        assert_eq!(hit.payload, reply.payload);
        server.shutdown();
    }

    #[test]
    fn key_frames_with_ops_address_the_derived_schedule() {
        use rfid_delta::ScenarioDelta;
        let server = test_server();
        let addr = server.addr().to_string();
        let mut client = TcpClient::connect(&addr).unwrap();
        let base = client.schedule(&small_job(33), None).unwrap();
        let ops = vec![ScenarioDelta::AddTag { x: 5.0, y: 6.0 }];
        // Cold derived schedule: the key+ops frame misses...
        let err = client.schedule_by_key(&base.key, &ops).unwrap_err();
        assert!(
            matches!(&err, ClientError::Remote(e) if e.message.starts_with("key-miss")),
            "{err:?}"
        );
        // ...the delta frame solves it...
        let patched = client.schedule_delta(&base.key, &ops, None, None).unwrap();
        // ...and now the same key+ops frame answers the identical bytes.
        let hit = client.schedule_by_key(&base.key, &ops).unwrap();
        assert!(hit.cached);
        assert_eq!(hit.key, patched.key);
        assert_eq!(hit.payload, patched.payload);
        server.shutdown();
    }

    #[test]
    fn two_clients_share_the_cache() {
        let server = test_server();
        let addr = server.addr().to_string();
        let mut a = TcpClient::connect(&addr).unwrap();
        let mut b = TcpClient::connect(&addr).unwrap();
        let cold = a.schedule(&small_job(6), None).unwrap();
        let warm = b.schedule(&small_job(6), None).unwrap();
        assert!(!cold.cached);
        assert!(warm.cached);
        assert_eq!(cold.payload, warm.payload);
        server.shutdown();
    }
}
