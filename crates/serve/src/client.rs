//! The unified client surface: one builder, one trait, three
//! transports.
//!
//! PR 4–5 grew three parallel client types — the in-process
//! [`crate::Client`], the wire-level [`TcpClient`] and the retrying
//! [`FailoverClient`] — each with its own constructor and slightly
//! different call shape. This module collapses them behind:
//!
//! * [`ServeClient`] — the request surface every transport speaks:
//!   `schedule` / `schedule_with_id` / `schedule_delta` / `stats`. Code
//!   written against `&mut dyn ServeClient` runs unchanged over any
//!   transport.
//! * [`ClientBuilder`] — the one constructor. What it builds follows
//!   from what you give it: an in-process [`Service`] handle, a single
//!   address (plain TCP), or several addresses and/or a
//!   [`FailoverPolicy`] (failover with retries). A default deadline set
//!   on the builder applies to every call that does not carry its own.
//!
//! The old types remain as the underlying transports, constructed only
//! through the builder (the one-release deprecated shims —
//! `Client::new`, `FailoverClient::new` — are gone). [`TcpClient`]
//! itself stays public — it *is* the wire transport the builder hands
//! back for single-address targets, and lower layers (the replicator,
//! the router's forwarders) use it directly.

//! Since protocol v4 the built client also keeps a **key memo**: once a
//! job (or delta) has round-tripped in full, repeat submissions address
//! the cached schedule by content key alone — a tiny `Key` frame the
//! server answers without touching the scenario codec. A server that no
//! longer holds the key answers a structured `key-miss` 404 and the
//! client transparently falls back to the full frame, so callers never
//! see the fast path, only the latency.

use crate::codec::JobSpec;
use crate::protocol::ServiceStats;
use crate::replicate::{FailoverClient, FailoverPolicy};
use crate::server::{ClientError, TcpClient};
use crate::service::{ScheduleReply, Service};
use rfid_delta::{fnv1a64, ScenarioDelta};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// Memoised identities per built client before the memo resets (the
/// same wholesale-clear policy as the server's dedup window: bounded
/// memory, no per-entry bookkeeping on the hot path).
const MEMO_CAP: usize = 1024;

/// The client-side record of what the server has already been sent in
/// full, keyed by cheap frame-identity hashes. A stale entry is
/// harmless: the key path misses and the full frame repopulates it.
#[derive(Default)]
struct KeyMemo {
    /// Job identity → the content key the server answered with.
    jobs: HashMap<u64, String>,
    /// Delta identities (base key + ops) already solved server-side.
    deltas: HashSet<u64>,
}

impl KeyMemo {
    fn job_identity(job: &JobSpec) -> u64 {
        let encoded = serde_json::to_string(job).expect("job serialisation cannot fail");
        fnv1a64(encoded.as_bytes())
    }

    fn delta_identity(base: &str, ops: &[ScenarioDelta]) -> u64 {
        let encoded = serde_json::to_string(ops).expect("ops serialisation cannot fail");
        fnv1a64(format!("{base}:{encoded}").as_bytes())
    }

    fn remember_job(&mut self, identity: u64, key: &str) {
        if self.jobs.len() >= MEMO_CAP {
            self.jobs.clear();
        }
        self.jobs.insert(identity, key.to_string());
    }

    fn remember_delta(&mut self, identity: u64) {
        if self.deltas.len() >= MEMO_CAP {
            self.deltas.clear();
        }
        self.deltas.insert(identity);
    }
}

/// The request surface shared by every transport: schedule a job, fetch
/// fleet counters. `deadline_ms = None` means "no deadline, unless the
/// builder configured a default".
pub trait ServeClient {
    /// Schedules one job, optionally bounded by a server-side deadline.
    fn schedule(
        &mut self,
        job: &JobSpec,
        deadline_ms: Option<u64>,
    ) -> Result<ScheduleReply, ClientError> {
        self.schedule_with_id(job, deadline_ms, None)
    }

    /// [`schedule`](Self::schedule) carrying a client request id, so a
    /// retry of this idempotent request can be deduplicated server-side.
    fn schedule_with_id(
        &mut self,
        job: &JobSpec,
        deadline_ms: Option<u64>,
        request_id: Option<&str>,
    ) -> Result<ScheduleReply, ClientError>;

    /// Schedules a **delta** job: `ops` applied to the scenario the
    /// server already holds under the `base` content key (protocol v3).
    /// A server that never saw the base answers a structured `404`
    /// whose message starts with `base-miss` — re-send the full
    /// scenario via [`schedule`](Self::schedule) in that case.
    fn schedule_delta(
        &mut self,
        base: &str,
        ops: &[ScenarioDelta],
        deadline_ms: Option<u64>,
        request_id: Option<&str>,
    ) -> Result<ScheduleReply, ClientError>;

    /// Service counters (fleet-wide when the target is a router).
    fn stats(&mut self) -> Result<ServiceStats, ClientError>;
}

impl ServeClient for TcpClient {
    fn schedule_with_id(
        &mut self,
        job: &JobSpec,
        deadline_ms: Option<u64>,
        request_id: Option<&str>,
    ) -> Result<ScheduleReply, ClientError> {
        TcpClient::schedule_with_id(self, job, deadline_ms, request_id)
    }

    fn schedule_delta(
        &mut self,
        base: &str,
        ops: &[ScenarioDelta],
        deadline_ms: Option<u64>,
        request_id: Option<&str>,
    ) -> Result<ScheduleReply, ClientError> {
        TcpClient::schedule_delta(self, base, ops, deadline_ms, request_id)
    }

    fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        TcpClient::stats(self).map(|(stats, _metrics)| stats)
    }
}

enum Transport {
    InProcess(Service),
    Tcp(TcpClient),
    Failover(FailoverClient),
}

/// A client produced by [`ClientBuilder::build`]: one of the three
/// transports plus the builder's default deadline, behind the
/// [`ServeClient`] surface.
pub struct BuiltClient {
    transport: Transport,
    default_deadline_ms: Option<u64>,
    memo: KeyMemo,
}

impl BuiltClient {
    /// `true` when requests stay in-process (no socket involved).
    pub fn is_in_process(&self) -> bool {
        matches!(self.transport, Transport::InProcess(_))
    }

    /// One attempt down the request-by-key fast path. `Ok(Some)` is a
    /// hit; `Ok(None)` means "send the full frame" — a structured
    /// key-miss, or a transport without the path (failover retries may
    /// land on peers that never saw the key, so it always goes full).
    /// Anything else is a real error.
    fn try_key_path(
        &mut self,
        key: &str,
        ops: &[ScenarioDelta],
    ) -> Result<Option<ScheduleReply>, ClientError> {
        let result = match &mut self.transport {
            Transport::InProcess(service) => service
                .request_by_key(key, ops)
                .map(|hit| hit.into_reply())
                .map_err(ClientError::Remote),
            Transport::Tcp(client) => client.schedule_by_key(key, ops),
            Transport::Failover(_) => return Ok(None),
        };
        match result {
            Ok(reply) => Ok(Some(reply)),
            Err(ClientError::Remote(e)) if e.message.starts_with("key-miss") => Ok(None),
            Err(e) => Err(e),
        }
    }
}

impl ServeClient for BuiltClient {
    fn schedule_with_id(
        &mut self,
        job: &JobSpec,
        deadline_ms: Option<u64>,
        request_id: Option<&str>,
    ) -> Result<ScheduleReply, ClientError> {
        // Known job → address it by key alone; a miss (server dropped
        // the entry) falls through to the full frame below.
        let identity = KeyMemo::job_identity(job);
        if let Some(key) = self.memo.jobs.get(&identity).cloned() {
            if let Some(reply) = self.try_key_path(&key, &[])? {
                return Ok(reply);
            }
            self.memo.jobs.remove(&identity);
        }
        let deadline_ms = deadline_ms.or(self.default_deadline_ms);
        let reply = match &mut self.transport {
            Transport::InProcess(service) => service
                .schedule_with_id(job, deadline_ms.map(Duration::from_millis), request_id)
                .map_err(ClientError::Remote),
            Transport::Tcp(client) => client.schedule_with_id(job, deadline_ms, request_id),
            Transport::Failover(client) => client.schedule_as(job, deadline_ms, request_id),
        }?;
        self.memo.remember_job(identity, &reply.key);
        Ok(reply)
    }

    fn schedule_delta(
        &mut self,
        base: &str,
        ops: &[ScenarioDelta],
        deadline_ms: Option<u64>,
        request_id: Option<&str>,
    ) -> Result<ScheduleReply, ClientError> {
        // A delta the server solved before answers from cache via a
        // key+ops frame — no base resolution, no patching.
        let identity = KeyMemo::delta_identity(base, ops);
        if self.memo.deltas.contains(&identity) {
            if let Some(reply) = self.try_key_path(base, ops)? {
                return Ok(reply);
            }
            self.memo.deltas.remove(&identity);
        }
        let deadline_ms = deadline_ms.or(self.default_deadline_ms);
        let reply = match &mut self.transport {
            Transport::InProcess(service) => service
                .schedule_delta(
                    base,
                    ops,
                    deadline_ms.map(Duration::from_millis),
                    request_id,
                )
                .map_err(ClientError::Remote),
            Transport::Tcp(client) => client.schedule_delta(base, ops, deadline_ms, request_id),
            Transport::Failover(client) => {
                client.schedule_delta_as(base, ops, deadline_ms, request_id)
            }
        }?;
        self.memo.remember_delta(identity);
        Ok(reply)
    }

    fn stats(&mut self) -> Result<ServiceStats, ClientError> {
        match &mut self.transport {
            Transport::InProcess(service) => Ok(service.stats()),
            Transport::Tcp(client) => client.stats().map(|(stats, _metrics)| stats),
            Transport::Failover(client) => {
                // Stats are not idempotent-critical; ask the first peer
                // that answers.
                let mut last = ClientError::Protocol("no peers configured".into());
                for addr in client.peers() {
                    match TcpClient::connect(addr) {
                        Ok(mut c) => match c.stats() {
                            Ok((stats, _metrics)) => return Ok(stats),
                            Err(e) => last = e,
                        },
                        Err(e) => last = e.into(),
                    }
                }
                Err(last)
            }
        }
    }
}

/// The one way to construct a serve client. Configure a target — an
/// in-process [`Service`], one address, or a peer list — plus optional
/// retry policy and default deadline, then [`build`](Self::build):
///
/// ```no_run
/// use rfid_serve::{ClientBuilder, ServeClient};
/// # let job: rfid_serve::JobSpec = unimplemented!();
/// let mut client = ClientBuilder::new()
///     .addrs(["10.0.0.1:7400".into(), "10.0.0.2:7400".into()])
///     .deadline_ms(2_000)
///     .build()
///     .unwrap();
/// let reply = client.schedule(&job, None).unwrap();
/// ```
#[derive(Default)]
pub struct ClientBuilder {
    addrs: Vec<String>,
    service: Option<Service>,
    policy: Option<FailoverPolicy>,
    deadline_ms: Option<u64>,
}

impl ClientBuilder {
    /// An empty builder: configure a target before
    /// [`build`](Self::build).
    pub fn new() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Adds one server (or router) address. Called once, the built
    /// client is plain TCP; called repeatedly (or combined with
    /// [`policy`](Self::policy)), it fails over across the list.
    pub fn addr(mut self, addr: impl Into<String>) -> ClientBuilder {
        self.addrs.push(addr.into());
        self
    }

    /// Adds several addresses at once (failover order).
    pub fn addrs(mut self, addrs: impl IntoIterator<Item = String>) -> ClientBuilder {
        self.addrs.extend(addrs);
        self
    }

    /// Targets an in-process [`Service`] — no socket, same surface.
    pub fn in_process(mut self, service: Service) -> ClientBuilder {
        self.service = Some(service);
        self
    }

    /// Retry policy for the failover transport. Setting a policy makes
    /// the built client a failover client even over a single address
    /// (retrying that one address with backoff).
    pub fn policy(mut self, policy: FailoverPolicy) -> ClientBuilder {
        self.policy = Some(policy);
        self
    }

    /// Default server-side deadline applied to every schedule call that
    /// does not pass its own.
    pub fn deadline_ms(mut self, ms: u64) -> ClientBuilder {
        self.deadline_ms = Some(ms);
        self
    }

    /// Builds the client the configuration implies. Errors when no
    /// target was configured or the single-address TCP connect fails
    /// (failover targets connect lazily, per attempt).
    pub fn build(self) -> Result<BuiltClient, ClientError> {
        let transport = match (self.service, self.addrs, self.policy) {
            (Some(service), addrs, _) if addrs.is_empty() => Transport::InProcess(service),
            (Some(_), _, _) => {
                return Err(ClientError::Protocol(
                    "client builder: configure either in_process or addresses, not both".into(),
                ))
            }
            (None, addrs, _) if addrs.is_empty() => {
                return Err(ClientError::Protocol(
                    "client builder: no address and no in-process service configured".into(),
                ))
            }
            (None, addrs, None) if addrs.len() == 1 => {
                Transport::Tcp(TcpClient::connect(&addrs[0])?)
            }
            (None, addrs, policy) => Transport::Failover(FailoverClient::from_parts(
                addrs,
                policy.unwrap_or_default(),
            )),
        };
        Ok(BuiltClient {
            transport,
            default_deadline_ms: self.deadline_ms,
            memo: KeyMemo::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Workload;
    use crate::server::Server;
    use crate::service::ServeConfig;
    use rfid_model::{RadiusModel, Scenario, ScenarioKind};

    fn small_job(seed: u64) -> JobSpec {
        JobSpec::new(Workload::Generated {
            scenario: Scenario {
                kind: ScenarioKind::UniformRandom,
                n_readers: 8,
                n_tags: 40,
                region_side: 40.0,
                radius_model: RadiusModel::paper_default(),
            },
            seed,
        })
    }

    fn quick() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_cap: 16,
            cache_cap: 32,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn in_process_and_tcp_transports_return_identical_bytes() {
        let service = Service::start(quick()).unwrap();
        let server = Server::start("127.0.0.1:0", quick()).unwrap();
        let mut local = ClientBuilder::new()
            .in_process(service.clone())
            .build()
            .unwrap();
        let mut remote = ClientBuilder::new()
            .addr(server.addr().to_string())
            .build()
            .unwrap();
        assert!(local.is_in_process());
        assert!(!remote.is_in_process());
        let a = local.schedule(&small_job(3), None).unwrap();
        let b = remote.schedule(&small_job(3), None).unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.payload, b.payload, "one contract across transports");
        assert_eq!(local.stats().unwrap().solved, 1);
        assert_eq!(remote.stats().unwrap().solved, 1);
        service.shutdown(true);
        server.shutdown();
    }

    #[test]
    fn multiple_addresses_build_a_failover_client() {
        let server = Server::start("127.0.0.1:0", quick()).unwrap();
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let mut client = ClientBuilder::new()
            .addr(dead)
            .addr(server.addr().to_string())
            .policy(FailoverPolicy {
                attempts: 4,
                backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(5),
            })
            .build()
            .unwrap();
        let reply = client.schedule(&small_job(5), None).unwrap();
        assert!(!reply.cached);
        // Stats walk the peer list past the dead entry too.
        assert_eq!(client.stats().unwrap().solved, 1);
        server.shutdown();
    }

    #[test]
    fn builder_without_a_target_is_a_structured_error() {
        match ClientBuilder::new().build() {
            Err(ClientError::Protocol(m)) => assert!(m.contains("no address"), "{m}"),
            other => panic!("expected a builder error, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn conflicting_targets_are_rejected() {
        let service = Service::start(quick()).unwrap();
        let result = ClientBuilder::new()
            .in_process(service.clone())
            .addr("127.0.0.1:1")
            .build();
        match result {
            Err(ClientError::Protocol(m)) => assert!(m.contains("not both"), "{m}"),
            other => panic!("expected a builder error, got {:?}", other.map(|_| ())),
        }
        service.shutdown(true);
    }

    #[test]
    fn builder_default_deadline_applies_when_calls_pass_none() {
        let service = Service::start(quick()).unwrap();
        let mut client = ClientBuilder::new()
            .in_process(service.clone())
            .deadline_ms(30_000)
            .build()
            .unwrap();
        // A generous default deadline must not reject a normal solve.
        let reply = client.schedule(&small_job(8), None).unwrap();
        assert!(!reply.cached);
        service.shutdown(true);
    }

    #[test]
    fn schedule_delta_works_on_every_transport() {
        let service = Service::start(quick()).unwrap();
        let server = Server::start("127.0.0.1:0", quick()).unwrap();
        let ops = vec![ScenarioDelta::AddTag { x: 8.0, y: 9.0 }];
        let mut local = ClientBuilder::new()
            .in_process(service.clone())
            .build()
            .unwrap();
        let mut remote = ClientBuilder::new()
            .addr(server.addr().to_string())
            .build()
            .unwrap();
        let mut failover = ClientBuilder::new()
            .addr(server.addr().to_string())
            .policy(FailoverPolicy {
                attempts: 2,
                backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            })
            .build()
            .unwrap();
        let job = small_job(13);
        let a_base = local.schedule(&job, None).unwrap();
        let b_base = remote.schedule(&job, None).unwrap();
        let a = local.schedule_delta(&a_base.key, &ops, None, None).unwrap();
        let b = remote
            .schedule_delta(&b_base.key, &ops, None, None)
            .unwrap();
        let c = failover
            .schedule_delta(&b_base.key, &ops, None, None)
            .unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.payload, b.payload, "one contract across transports");
        assert_eq!(b.payload, c.payload);
        // The base-miss → full-request fallback pattern, spelled out:
        let err = remote
            .schedule_delta("ffffffffffffffff", &ops, None, None)
            .unwrap_err();
        match err {
            ClientError::Remote(e) => {
                assert_eq!(e.code, crate::protocol::CODE_BASE_MISS);
                assert!(e.message.starts_with("base-miss"), "{}", e.message);
                // ... at which point a client re-sends the full job:
                assert!(remote.schedule(&job, None).unwrap().cached);
            }
            other => panic!("expected a base-miss, got {other:?}"),
        }
        service.shutdown(true);
        server.shutdown();
    }

    fn key_hits(service: &Service) -> u64 {
        let metrics: serde_json::Value = serde_json::from_str(&service.metrics_json()).unwrap();
        metrics["counters"]["serve.key.hit"].as_f64().unwrap_or(0.0) as u64
    }

    #[test]
    fn repeat_submissions_take_the_key_fast_path() {
        let service = Service::start(quick()).unwrap();
        let server = Server::start("127.0.0.1:0", quick()).unwrap();
        let mut local = ClientBuilder::new()
            .in_process(service.clone())
            .build()
            .unwrap();
        let mut remote = ClientBuilder::new()
            .addr(server.addr().to_string())
            .build()
            .unwrap();
        let job = small_job(21);
        let cold_l = local.schedule(&job, None).unwrap();
        let warm_l = local.schedule(&job, None).unwrap();
        assert!(warm_l.cached);
        assert_eq!(warm_l.payload, cold_l.payload);
        assert_eq!(key_hits(&service), 1, "second submission went by key");

        let cold_r = remote.schedule(&job, None).unwrap();
        let warm_r = remote.schedule(&job, None).unwrap();
        assert!(warm_r.cached);
        assert_eq!(warm_r.payload, cold_r.payload);
        assert_eq!(key_hits(&server.service()), 1);

        // Deltas memoise too: a repeated delta is a key+ops hit.
        let ops = vec![ScenarioDelta::AddTag { x: 1.0, y: 2.0 }];
        let first = local.schedule_delta(&cold_l.key, &ops, None, None).unwrap();
        let again = local.schedule_delta(&cold_l.key, &ops, None, None).unwrap();
        assert!(again.cached);
        assert_eq!(again.payload, first.payload);
        assert_eq!(key_hits(&service), 2);
        service.shutdown(true);
        server.shutdown();
    }

    #[test]
    fn evicted_keys_fall_back_to_the_full_frame_transparently() {
        let service = Service::start(ServeConfig {
            workers: 2,
            queue_cap: 64,
            cache_cap: 8,
            ..ServeConfig::default()
        })
        .unwrap();
        let mut client = ClientBuilder::new()
            .in_process(service.clone())
            .build()
            .unwrap();
        let job = small_job(50);
        let cold = client.schedule(&job, None).unwrap();
        // Evict it: enough distinct jobs to flush an 8-entry cache.
        for seed in 51..60 {
            client.schedule(&small_job(seed), None).unwrap();
        }
        // The memoised key now misses server-side; the client re-sends
        // the full frame and the caller sees only a solved reply.
        let again = client.schedule(&job, None).unwrap();
        assert_eq!(
            again.payload, cold.payload,
            "determinism across the fallback"
        );
        assert!(!again.cached, "re-solved after eviction");
        service.shutdown(true);
    }

    #[test]
    fn dyn_serve_client_is_object_safe_across_transports() {
        let service = Service::start(quick()).unwrap();
        let mut built = ClientBuilder::new()
            .in_process(service.clone())
            .build()
            .unwrap();
        let client: &mut dyn ServeClient = &mut built;
        let cold = client.schedule(&small_job(2), None).unwrap();
        let warm = client.schedule(&small_job(2), None).unwrap();
        assert!(!cold.cached);
        assert!(warm.cached);
        assert_eq!(cold.payload, warm.payload);
        service.shutdown(true);
    }
}
