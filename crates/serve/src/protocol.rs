//! The JSON-lines wire protocol.
//!
//! One frame per line, externally-tagged JSON, newline-terminated —
//! trivially debuggable with `nc` and greppable in captures. Clients
//! send [`Request`] frames; the server answers each with exactly one
//! [`Response`] frame on the same connection, in order. Errors are
//! in-band [`Response::Error`] frames with HTTP-flavoured codes (the
//! transport never closes to signal an application error).
//!
//! Two robustness additions ride on the same framing (DESIGN.md §10):
//!
//! * **Replication** — daemons exchange [`Request::Gossip`] /
//!   [`Response::GossipAck`] frames carrying content-addressed cache
//!   entries, so peers converge on a shared warm cache.
//! * **Failover** — [`Request::Schedule`] carries an optional
//!   `request_id` so a client retrying the (idempotent) request against
//!   another peer can be deduplicated and counted server-side. The
//!   `request_id` is optional on the wire, so pre-failover frames
//!   still parse.

use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};

use crate::codec::JobSpec;
use rfid_delta::ScenarioDelta;

/// The protocol generation this build speaks.
///
/// * **v1** — the PR-4/PR-5 wire format: no `v` field anywhere. Frames
///   without a `v` field parse as `None` and are treated as v1.
/// * **v2** — adds the optional `v` field on [`Request::Schedule`] /
///   [`Request::Gossip`], the [`Request::Hello`] negotiation frame and
///   request pipelining (many in-flight requests per connection,
///   responses strictly in request order).
/// * **v3** — adds [`Request::Delta`]: schedule a scenario described as
///   a base content key plus a [`ScenarioDelta`] op list. Servers that
///   no longer hold the base answer a structured [`CODE_BASE_MISS`]
///   error telling the client to fall back to a full request.
/// * **v4** — adds [`Request::Key`]: address an already-cached schedule
///   by content key alone (optionally key + ops for a cached delta
///   derivation), skipping the scenario codec entirely. Servers that do
///   not hold the key answer a structured [`CODE_KEY_MISS`] error and
///   the client falls back to the full frame.
///
/// Servers answer frames claiming a **newer** major generation with a
/// structured [`CODE_UPGRADE_REQUIRED`] error instead of guessing;
/// older (or absent) versions are always accepted — the format is
/// backward compatible by construction (new fields are optional and
/// new frame variants are opt-in).
pub const PROTOCOL_VERSION: u32 = 4;

/// The frame declared a protocol version newer than this server speaks
/// (HTTP 426 Upgrade Required): upgrade the server or downgrade the
/// client.
pub const CODE_UPGRADE_REQUIRED: u16 = 426;

/// Admission reject: the work queue is full (backpressure) — retry
/// later.
pub const CODE_QUEUE_FULL: u16 = 429;
/// Malformed frame or invalid workload.
pub const CODE_BAD_REQUEST: u16 = 400;
/// The algorithm label matched no registry row.
pub const CODE_UNKNOWN_ALGORITHM: u16 = 404;
/// A [`Request::Delta`] named a base content key this server cannot
/// resolve to a scenario (same 404 family as
/// [`CODE_UNKNOWN_ALGORITHM`]; the message always starts with
/// `base-miss` and tells the client to send the full scenario instead).
pub const CODE_BASE_MISS: u16 = 404;
/// A [`Request::Key`] named a content key (or key + ops derivation)
/// that is not resident in this server's cache (same 404 family; the
/// message always starts with `key-miss` and tells the client to fall
/// back to the full frame).
pub const CODE_KEY_MISS: u16 = 404;
/// The solver could not complete the schedule (strict-policy stall or
/// slot-budget exhaustion).
pub const CODE_UNSOLVABLE: u16 = 422;
/// A worker panicked while solving — a server-side bug, not a bad
/// request.
pub const CODE_INTERNAL: u16 = 500;
/// The service is shutting down and admits no new work.
pub const CODE_SHUTTING_DOWN: u16 = 503;
/// The request's deadline expired before a worker finished it.
pub const CODE_DEADLINE: u16 = 504;

/// One replicated cache entry: the content key (fixed-width hex) and the
/// canonical payload it addresses. Pure function of the key, so
/// applying a gossiped entry is always safe and idempotent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GossipEntry {
    /// Content key as fixed-width hex.
    pub key: String,
    /// Canonical JSON of the [`crate::ScheduleOutcome`] for that key.
    pub payload: String,
}

/// Client→server frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Explicit version negotiation: the client declares the protocol
    /// generation it speaks. Servers answer [`Response::HelloAck`] with
    /// their own [`PROTOCOL_VERSION`], or a [`CODE_UPGRADE_REQUIRED`]
    /// error when the client is newer than they can serve.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        v: u32,
    },
    /// Solve (or fetch from cache) one scheduling job.
    Schedule {
        /// The job to schedule.
        job: JobSpec,
        /// Optional deadline in milliseconds; expiry yields a
        /// [`CODE_DEADLINE`] error frame.
        deadline_ms: Option<u64>,
        /// Optional client-chosen id for failover retries of this
        /// (idempotent) request: a server that has already seen the id
        /// counts the repeat as a dedup instead of fresh demand.
        /// Optional on the wire: frames without it parse as `None`.
        request_id: Option<String>,
        /// Protocol version the sender speaks. Optional on the wire:
        /// v1 frames (no field) parse as `None` and are always served;
        /// a version newer than [`PROTOCOL_VERSION`] draws a
        /// [`CODE_UPGRADE_REQUIRED`] error frame.
        v: Option<u32>,
    },
    /// Solve a scenario described *incrementally* (protocol v3): the
    /// content key of a previously scheduled base job plus a
    /// [`ScenarioDelta`] op list to apply to it. The server resolves
    /// the base from its spec store, applies the ops, solves (or
    /// fetches) the patched scenario and answers a normal
    /// [`Response::Schedule`] whose `key` is the *derived* key
    /// ([`rfid_delta::derived_key`]) — so a follow-up delta can chain
    /// off it. A server that cannot resolve `base` answers a
    /// [`CODE_BASE_MISS`] error; the client falls back to a full
    /// [`Request::Schedule`].
    Delta {
        /// Content key of the base job, fixed-width hex.
        base: String,
        /// The edits to apply to the base scenario, in order.
        ops: Vec<ScenarioDelta>,
        /// Optional deadline in milliseconds; expiry yields a
        /// [`CODE_DEADLINE`] error frame.
        deadline_ms: Option<u64>,
        /// Optional client-chosen id for failover retries (same
        /// semantics as [`Request::Schedule::request_id`]).
        request_id: Option<String>,
        /// Protocol version the sender speaks (same rules as
        /// [`Request::Schedule::v`]).
        v: Option<u32>,
    },
    /// Fetch an already-cached schedule by content key alone (protocol
    /// v4) — the request-by-key fast path. After one full submission
    /// the client knows the job's content key from the reply; repeats
    /// address the cache directly and the server never touches the
    /// scenario codec. With `ops`, the server answers from the cache
    /// entry under [`rfid_delta::derived_key`]`(key, ops)` — the warm
    /// path for a previously solved delta. A key (or derivation) that
    /// is not resident draws a structured [`CODE_KEY_MISS`] error and
    /// the client falls back to the full [`Request::Schedule`] /
    /// [`Request::Delta`] frame. Key requests are answered immediately
    /// (hit or miss), so they carry no deadline.
    Key {
        /// Content key as fixed-width hex, exactly as returned in
        /// [`Response::Schedule::key`].
        key: String,
        /// Optional delta ops: address the cache under the key
        /// *derived* from `key` + `ops` instead of `key` itself.
        ops: Option<Vec<ScenarioDelta>>,
        /// Optional client-chosen id (same wire shape as
        /// [`Request::Schedule::request_id`]). Key requests are pure
        /// cache probes, so the id is carried for symmetry and logging
        /// but never deduplicated — a retried probe is already free.
        request_id: Option<String>,
        /// Protocol version the sender speaks (same rules as
        /// [`Request::Schedule::v`]).
        v: Option<u32>,
    },
    /// Replicate cache entries from a peer daemon. Entries are applied
    /// idempotently and are **not** re-gossiped (push fan-out only, no
    /// flooding loops).
    Gossip {
        /// The entries to apply.
        entries: Vec<GossipEntry>,
        /// Protocol version of the gossiping peer (same rules as
        /// [`Request::Schedule::v`]).
        v: Option<u32>,
    },
    /// Fetch service counters and the recorder's metrics snapshot.
    Stats,
    /// Ask the daemon to shut down gracefully (drain, then stop). The
    /// server acknowledges with [`Response::Bye`] before stopping.
    Shutdown,
}

/// Checks a frame's declared protocol version. Returns the structured
/// [`CODE_UPGRADE_REQUIRED`] error frame to send when the peer speaks a
/// newer generation than this build; `None` means the frame is
/// serveable (absent version = v1, always accepted).
pub fn version_gate(v: Option<u32>) -> Option<Response> {
    match v {
        Some(v) if v > PROTOCOL_VERSION => Some(Response::Error {
            code: CODE_UPGRADE_REQUIRED,
            message: format!("frame speaks protocol v{v}, this server speaks v{PROTOCOL_VERSION}"),
        }),
        _ => None,
    }
}

/// Server→client frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Acknowledges a [`Request::Hello`] with the server's version.
    HelloAck {
        /// The server's [`PROTOCOL_VERSION`].
        v: u32,
    },
    /// A solved (or cached) schedule.
    Schedule {
        /// The job's content key as fixed-width hex — the cache address.
        key: String,
        /// `true` when the payload came from the cache.
        cached: bool,
        /// Canonical JSON of a [`crate::ScheduleOutcome`]. Byte-identical
        /// across cold solve, warm cache, in-process and TCP paths (the
        /// determinism contract).
        payload: String,
    },
    /// Acknowledges a [`Request::Gossip`].
    GossipAck {
        /// Entries newly applied (already-present ones are skipped).
        applied: u64,
    },
    /// Service counters plus the `rfid-obs` metrics snapshot.
    Stats {
        /// The service counters.
        stats: ServiceStats,
        /// `MetricsSnapshot::to_json` of the server's recorder
        /// (deterministic: wall times excluded).
        metrics: String,
    },
    /// A structured application error (`code` is one of the `CODE_*`
    /// constants).
    Error {
        /// HTTP-flavoured status code.
        code: u16,
        /// Human-readable cause.
        message: String,
    },
    /// Acknowledges a [`Request::Shutdown`].
    Bye,
}

/// Point-in-time service counters, serialisable for the stats frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Schedule requests admitted for processing (hits + queued).
    pub requests: u64,
    /// Requests answered straight from the cache.
    pub cache_hits: u64,
    /// Requests that missed the cache.
    pub cache_misses: u64,
    /// Requests coalesced onto an identical in-flight solve
    /// (single-flight followers; neither a hit nor a miss).
    pub coalesced: u64,
    /// Cache entries evicted to make room.
    pub cache_evictions: u64,
    /// Cache entries dropped by TTL expiry.
    pub cache_expired: u64,
    /// Live cache entries.
    pub cache_entries: u64,
    /// Requests rejected because the queue was full (`429`).
    pub rejected_full: u64,
    /// Requests rejected during shutdown (`503`).
    pub rejected_shutdown: u64,
    /// Requests whose deadline expired while queued or solving (`504`).
    pub deadline_expired: u64,
    /// Jobs solved by the worker pool (cache misses that completed).
    pub solved: u64,
    /// Jobs that ended in an error (bad workload, stall, panic).
    pub errors: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: u64,
    /// Worker threads serving the queue.
    pub workers: u64,
    /// Cache entries recovered from the journal/snapshot at startup
    /// (`0` on a cold start — the warm/cold discriminator).
    pub recovered_entries: u64,
    /// Journal records appended durably.
    pub journal_appends: u64,
    /// Journal appends that failed (entry stayed RAM-only).
    pub journal_append_errors: u64,
    /// Compaction snapshots written.
    pub snapshots_written: u64,
    /// Cache entries handed to the replicator for peer push.
    pub replicated_out: u64,
    /// Entries the replicator dropped (peer queue overflow) or gave up
    /// on after bounded retries.
    pub replication_dropped: u64,
    /// Gossiped entries applied from peers.
    pub replicated_in: u64,
    /// Schedule requests whose `request_id` was already seen (failover
    /// retries of an idempotent request).
    pub deduped: u64,
}

/// Serialises one frame as a JSON line (no flush — callers batch).
pub fn encode_frame<T: Serialize>(frame: &T) -> String {
    let mut line = serde_json::to_string(frame).expect("frame serialisation cannot fail");
    line.push('\n');
    line
}

/// Writes one frame and flushes, so the peer sees it immediately.
pub fn write_frame<T: Serialize, W: Write>(w: &mut W, frame: &T) -> std::io::Result<()> {
    w.write_all(encode_frame(frame).as_bytes())?;
    w.flush()
}

/// Parses one frame from a line (ignores the trailing newline).
pub fn decode_frame<T: Deserialize>(line: &str) -> Result<T, String> {
    serde_json::from_str(line.trim_end_matches(['\r', '\n'])).map_err(|e| e.to_string())
}

/// What one read of the frame stream produced. Distinguishing a clean
/// EOF from a connection severed **mid-frame** is what lets clients turn
/// an abrupt peer death into a structured, retryable error instead of a
/// raw I/O failure.
#[derive(Debug, PartialEq)]
pub enum FrameRead<T> {
    /// A complete, well-formed frame.
    Frame(T),
    /// A complete line that did not parse (answer with
    /// [`CODE_BAD_REQUEST`]).
    Malformed(String),
    /// Clean EOF on a frame boundary.
    Eof,
    /// The peer vanished mid-frame: bytes arrived but the line never
    /// terminated before EOF.
    SeveredMidFrame {
        /// Bytes of the partial frame that did arrive.
        partial_bytes: usize,
    },
}

/// Reads one newline-terminated frame from a buffered reader,
/// classifying clean EOF vs a connection severed mid-frame. I/O errors
/// (timeouts, resets) stay `Err` for the caller to map.
pub fn read_frame<T: Deserialize, R: BufRead>(r: &mut R) -> std::io::Result<FrameRead<T>> {
    let mut line = String::new();
    let n = r.read_line(&mut line)?;
    if n == 0 {
        return Ok(FrameRead::Eof);
    }
    if !line.ends_with('\n') {
        return Ok(FrameRead::SeveredMidFrame {
            partial_bytes: line.len(),
        });
    }
    Ok(match decode_frame(&line) {
        Ok(frame) => FrameRead::Frame(frame),
        Err(m) => FrameRead::Malformed(m),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Workload;
    use rfid_model::Scenario;

    fn job() -> JobSpec {
        JobSpec::new(Workload::Generated {
            scenario: Scenario::paper_evaluation(14.0, 6.0),
            seed: 1,
        })
    }

    #[test]
    fn request_frames_round_trip() {
        for frame in [
            Request::Hello {
                v: PROTOCOL_VERSION,
            },
            Request::Schedule {
                job: job(),
                deadline_ms: Some(250),
                request_id: Some("client-1-7".into()),
                v: Some(PROTOCOL_VERSION),
            },
            Request::Delta {
                base: "00000000000000ff".into(),
                ops: vec![
                    ScenarioDelta::AddTag { x: 1.0, y: 2.0 },
                    ScenarioDelta::SetReaderAlive {
                        reader: 3,
                        alive: false,
                    },
                ],
                deadline_ms: None,
                request_id: Some("client-2-1".into()),
                v: Some(PROTOCOL_VERSION),
            },
            Request::Key {
                key: "00000000000000ff".into(),
                ops: None,
                request_id: None,
                v: Some(PROTOCOL_VERSION),
            },
            Request::Key {
                key: "00000000000000ff".into(),
                ops: Some(vec![ScenarioDelta::AddTag { x: 1.0, y: 2.0 }]),
                request_id: Some("client-3-9".into()),
                v: Some(PROTOCOL_VERSION),
            },
            Request::Gossip {
                entries: vec![GossipEntry {
                    key: "00ff".into(),
                    payload: r#"{"slots":3}"#.into(),
                }],
                v: Some(PROTOCOL_VERSION),
            },
            Request::Stats,
            Request::Shutdown,
        ] {
            let line = encode_frame(&frame);
            assert!(line.ends_with('\n'));
            assert_eq!(line.matches('\n').count(), 1, "one frame per line");
            let back: Request = decode_frame(&line).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn pre_failover_schedule_frames_still_parse() {
        // A v1 frame from an older peer: no request_id, no v field.
        let line = r#"{"Schedule":{"job":null,"deadline_ms":null}}"#
            .replace("null,", "JOB,")
            .replace("JOB", &serde_json::to_string(&job()).unwrap());
        let back: Request = decode_frame(&line).unwrap();
        match back {
            Request::Schedule { request_id, v, .. } => {
                assert_eq!(request_id, None);
                assert_eq!(v, None, "absent version parses as v1");
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn version_gate_accepts_current_and_older_rejects_newer() {
        assert_eq!(version_gate(None), None);
        assert_eq!(version_gate(Some(1)), None);
        assert_eq!(version_gate(Some(PROTOCOL_VERSION)), None);
        match version_gate(Some(PROTOCOL_VERSION + 1)) {
            Some(Response::Error { code, message }) => {
                assert_eq!(code, CODE_UPGRADE_REQUIRED);
                assert!(message.contains(&format!("v{PROTOCOL_VERSION}")));
            }
            other => panic!("expected 426 error frame, got {other:?}"),
        }
    }

    #[test]
    fn response_frames_round_trip() {
        for frame in [
            Response::HelloAck {
                v: PROTOCOL_VERSION,
            },
            Response::Schedule {
                key: "00ff".into(),
                cached: true,
                payload: r#"{"slots":3}"#.into(),
            },
            Response::GossipAck { applied: 2 },
            Response::Stats {
                stats: ServiceStats {
                    requests: 7,
                    recovered_entries: 3,
                    ..ServiceStats::default()
                },
                metrics: "{}".into(),
            },
            Response::Error {
                code: CODE_QUEUE_FULL,
                message: "queue full".into(),
            },
            Response::Bye,
        ] {
            let back: Response = decode_frame(&encode_frame(&frame)).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn read_frame_handles_stream_of_lines_and_eof() {
        let text = format!(
            "{}{}",
            encode_frame(&Request::Stats),
            encode_frame(&Request::Shutdown)
        );
        let mut r = std::io::BufReader::new(text.as_bytes());
        assert_eq!(
            read_frame::<Request, _>(&mut r).unwrap(),
            FrameRead::Frame(Request::Stats)
        );
        assert_eq!(
            read_frame::<Request, _>(&mut r).unwrap(),
            FrameRead::Frame(Request::Shutdown)
        );
        assert_eq!(read_frame::<Request, _>(&mut r).unwrap(), FrameRead::Eof);
    }

    #[test]
    fn severed_mid_frame_is_distinguished_from_clean_eof() {
        let full = encode_frame(&Request::Stats);
        let cut = &full.as_bytes()[..full.len() - 3]; // no newline
        let mut r = std::io::BufReader::new(cut);
        match read_frame::<Request, _>(&mut r).unwrap() {
            FrameRead::SeveredMidFrame { partial_bytes } => {
                assert_eq!(partial_bytes, full.len() - 3)
            }
            other => panic!("expected SeveredMidFrame, got {other:?}"),
        }
    }

    #[test]
    fn garbage_lines_are_parse_errors_not_panics() {
        let mut r = std::io::BufReader::new(&b"not json\n"[..]);
        match read_frame::<Request, _>(&mut r).unwrap() {
            FrameRead::Malformed(_) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
