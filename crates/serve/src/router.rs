//! The shard router: one thin process fanning requests across N
//! daemons by content key.
//!
//! `mrrfid route` runs this in front of a fleet of `mrrfid serve`
//! daemons. The router reuses the daemon's own building blocks — the
//! [`crate::reactor`] event loop on the client side, a
//! [`crate::WorkQueue`] + forwarder threads per shard on the daemon
//! side — and speaks the same JSON-lines protocol on both faces, so a
//! client cannot tell a router from a daemon:
//!
//! * **Schedule** frames are canonicalised with the same
//!   [`CanonicalJob`] the daemons use (router and fleet agree on the
//!   key byte-for-byte), mapped to a shard by the [`HashRing`], and
//!   forwarded **verbatim** — `request_id`, deadline and version ride
//!   along, and the shard's reply (its exact canonical payload bytes)
//!   rides back. The determinism contract therefore holds through the
//!   router: same key, same bytes, whichever path served it.
//! * **Delta** frames route by their **base** key: the shard that
//!   solved the base holds its spec, so it alone can patch it (or
//!   answer a structured base-miss).
//! * **Gossip** entries are partitioned by key and forwarded only to
//!   the shards that own them; the acks sum.
//! * **Stats** fans out to every shard and sums the counters, so the
//!   `hits + misses + coalesced == requests` invariant can be checked
//!   fleet-wide at the router.
//! * **Shutdown** stops the router only — daemons outlive it and are
//!   stopped individually (they may serve other routers).
//!
//! Sharding by content key means each daemon's cache holds a disjoint
//! slice of the keyspace: N daemons give N× the cache capacity and N×
//! the solve throughput, at one extra network hop of latency.

use crate::codec::{scan_key_frame, CanonicalJob, JobSpec};
use crate::protocol::{
    decode_frame, encode_frame, read_frame, version_gate, FrameRead, GossipEntry, Request,
    Response, ServiceStats, CODE_BAD_REQUEST, CODE_QUEUE_FULL, CODE_SHUTTING_DOWN,
    PROTOCOL_VERSION,
};
use crate::queue::{PushError, ResponseSlot, WorkQueue};
use crate::reactor::{Action, FrameHandler, Reactor, Reply};
use crate::ring::HashRing;
use crate::server::ClientError;
use crate::service::ServiceError;
use rfid_core::SchedulerRegistry;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Router construction parameters (the CLI's `route` flags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterConfig {
    /// Daemon addresses to shard across (at least one).
    pub shards: Vec<String>,
    /// Forwarder connections (threads) per shard.
    pub conns_per_shard: usize,
    /// Forward-queue capacity per shard; overflow answers `429`.
    pub queue_cap: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: Vec::new(),
            conns_per_shard: 4,
            queue_cap: 1024,
        }
    }
}

/// What came back from a shard for one forwarded frame.
type ForwardResult = Result<Response, ClientError>;

struct ForwardJob {
    /// The raw request line, newline-terminated, forwarded verbatim.
    frame: String,
    slot: Arc<ResponseSlot<ForwardResult>>,
}

struct RouterShared {
    ring: HashRing,
    registry: SchedulerRegistry,
    /// One forward queue per shard, index-aligned with the ring.
    queues: Vec<Arc<WorkQueue<ForwardJob>>>,
    /// Schedule frames routed, per shard.
    routed: Vec<AtomicU64>,
    /// Forwards that failed at the transport after bounded retries.
    forward_errors: AtomicU64,
    stopped: Mutex<bool>,
    stopped_cv: Condvar,
}

impl RouterShared {
    fn request_shutdown(&self) {
        let mut stopped = self.stopped.lock().expect("stop flag poisoned");
        if !*stopped {
            *stopped = true;
            self.stopped_cv.notify_all();
        }
    }

    /// Enqueues one frame for a shard; the returned slot resolves with
    /// the shard's response (or a transport error).
    fn forward(
        &self,
        shard: usize,
        frame: String,
    ) -> Result<Arc<ResponseSlot<ForwardResult>>, PushError> {
        let slot = Arc::new(ResponseSlot::new());
        self.queues[shard].try_push(ForwardJob {
            frame,
            slot: Arc::clone(&slot),
        })?;
        Ok(slot)
    }
}

/// Maps a forward outcome to the frame sent back to the client. A
/// transport failure becomes a retryable `503` (the shard may be
/// restarting; a failover client retries another router or waits).
fn forwarded_frame(shared: &RouterShared, shard: usize, result: ForwardResult) -> String {
    match result {
        Ok(response) => encode_frame(&response),
        Err(e) => {
            shared.forward_errors.fetch_add(1, Ordering::Relaxed);
            encode_frame(&Response::Error {
                code: CODE_SHUTTING_DOWN,
                message: format!("shard {} unavailable: {e}", shared.ring.shards()[shard]),
            })
        }
    }
}

fn admission_error(e: PushError) -> Response {
    match e {
        PushError::Full => Response::Error {
            code: CODE_QUEUE_FULL,
            message: "router forward queue full; retry later".into(),
        },
        PushError::Closed => Response::Error {
            code: CODE_SHUTTING_DOWN,
            message: "router is shutting down".into(),
        },
    }
}

struct RouteHandler {
    shared: Arc<RouterShared>,
}

impl RouteHandler {
    fn route_schedule(&self, line: &str, job: &JobSpec) -> Action {
        let shared = &self.shared;
        // Same canonicalisation as the daemon: router and shard agree
        // on the key byte-for-byte. Codec errors answer locally — no
        // shard would accept the job either.
        let canonical = match CanonicalJob::new(job, &shared.registry) {
            Ok(c) => c,
            Err(e) => {
                let err = ServiceError::from(e);
                return Action::Reply(Reply::Now(encode_frame(&Response::Error {
                    code: err.code,
                    message: err.message,
                })));
            }
        };
        self.forward_to_shard(line, shared.ring.shard_of(canonical.key))
    }

    /// Delta frames route by the **base** content key: the shard that
    /// solved the base holds its spec, so it is the one node that can
    /// patch it. The derived payload is cached there too, so a repeated
    /// delta against the same base is a warm hit on the owning shard.
    fn route_delta(&self, line: &str, base: &str) -> Action {
        let Some(base_key) = rfid_delta::parse_key_hex(base) else {
            return Action::Reply(Reply::Now(encode_frame(&Response::Error {
                code: CODE_BAD_REQUEST,
                message: format!("malformed base key {base:?}: expected 16 hex digits"),
            })));
        };
        self.forward_to_shard(line, self.shared.ring.shard_of(base_key))
    }

    /// Key frames route by the key in the frame — which is the **base**
    /// key even when ops ride along (derived schedules are cached on
    /// the base's shard). No canonicalisation, no codec: the key is all
    /// the ring needs, so the shallow scan suffices and the line
    /// forwards verbatim.
    fn route_key(&self, line: &str, key: &str) -> Action {
        let Some(base_key) = rfid_delta::parse_key_hex(key) else {
            return Action::Reply(Reply::Now(encode_frame(&Response::Error {
                code: CODE_BAD_REQUEST,
                message: format!("malformed key {key:?}: expected 16 hex digits"),
            })));
        };
        self.forward_to_shard(line, self.shared.ring.shard_of(base_key))
    }

    /// Counts the route and forwards the raw line verbatim; the shard's
    /// exact reply bytes ride back through a pending reply.
    fn forward_to_shard(&self, line: &str, shard: usize) -> Action {
        let shared = &self.shared;
        shared.routed[shard].fetch_add(1, Ordering::Relaxed);
        let mut frame = line.trim_end_matches(['\r', '\n']).to_string();
        frame.push('\n');
        match shared.forward(shard, frame) {
            Ok(slot) => {
                let shared = Arc::clone(shared);
                Action::Reply(Reply::Pending(Box::new(move || {
                    slot.try_take()
                        .map(|result| forwarded_frame(&shared, shard, result))
                })))
            }
            Err(e) => Action::Reply(Reply::Now(encode_frame(&admission_error(e)))),
        }
    }

    fn route_gossip(&self, entries: Vec<GossipEntry>) -> Action {
        let shared = &self.shared;
        // Partition entries by owning shard; unparseable keys are
        // dropped (a daemon would reject them anyway).
        let mut per_shard: Vec<Vec<GossipEntry>> = vec![Vec::new(); shared.ring.len()];
        for entry in entries {
            if let Ok(key) = u64::from_str_radix(&entry.key, 16) {
                per_shard[shared.ring.shard_of(key)].push(entry);
            }
        }
        let mut slots = Vec::new();
        for (shard, group) in per_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let frame = encode_frame(&Request::Gossip {
                entries: group,
                v: Some(PROTOCOL_VERSION),
            });
            if let Ok(slot) = shared.forward(shard, frame) {
                slots.push(slot);
            }
        }
        // Sum the acks as they land; an unreachable shard contributes 0.
        let mut applied = 0u64;
        Action::Reply(Reply::Pending(Box::new(move || {
            while let Some(slot) = slots.last() {
                match slot.try_take() {
                    Some(Ok(Response::GossipAck { applied: n })) => {
                        applied += n;
                        slots.pop();
                    }
                    Some(_) => {
                        slots.pop(); // error or odd frame: best effort
                    }
                    None => return None,
                }
            }
            Some(encode_frame(&Response::GossipAck { applied }))
        })))
    }

    fn route_stats(&self) -> Action {
        let shared = &self.shared;
        let frame = encode_frame(&Request::Stats);
        let mut slots = Vec::new();
        for shard in 0..shared.ring.len() {
            if let Ok(slot) = shared.forward(shard, frame.clone()) {
                slots.push(slot);
            }
        }
        let mut total = ServiceStats::default();
        let mut metrics: Vec<String> = Vec::new();
        Action::Reply(Reply::Pending(Box::new(move || {
            while let Some(slot) = slots.last() {
                match slot.try_take() {
                    Some(Ok(Response::Stats { stats, metrics: m })) => {
                        add_stats(&mut total, &stats);
                        metrics.push(m);
                        slots.pop();
                    }
                    Some(_) => {
                        slots.pop(); // unreachable shard: skip its share
                    }
                    None => return None,
                }
            }
            Some(encode_frame(&Response::Stats {
                stats: total,
                metrics: format!("[{}]", metrics.join(",")),
            }))
        })))
    }
}

impl FrameHandler for RouteHandler {
    fn on_line(&self, line: &str) -> Action {
        // Key frames need only the key to route (ops or not), so the
        // shallow scan skips the serde parse entirely; anything the
        // scanner finds ambiguous falls through to the full decode,
        // whose `Request::Key` arm routes identically.
        if let Some(scan) = scan_key_frame(line) {
            return match version_gate(scan.v) {
                Some(err) => Action::Reply(Reply::Now(encode_frame(&err))),
                None => self.route_key(line, scan.key),
            };
        }
        match decode_frame::<Request>(line) {
            Ok(Request::Hello { v }) => match version_gate(Some(v)) {
                Some(err) => Action::Reply(Reply::Now(encode_frame(&err))),
                None => Action::Reply(Reply::Now(encode_frame(&Response::HelloAck {
                    v: PROTOCOL_VERSION,
                }))),
            },
            Ok(Request::Schedule { ref job, v, .. }) => match version_gate(v) {
                Some(err) => Action::Reply(Reply::Now(encode_frame(&err))),
                None => self.route_schedule(line, job),
            },
            Ok(Request::Delta { ref base, v, .. }) => match version_gate(v) {
                Some(err) => Action::Reply(Reply::Now(encode_frame(&err))),
                None => self.route_delta(line, base),
            },
            Ok(Request::Key { ref key, v, .. }) => match version_gate(v) {
                Some(err) => Action::Reply(Reply::Now(encode_frame(&err))),
                None => self.route_key(line, key),
            },
            Ok(Request::Gossip { entries, v }) => match version_gate(v) {
                Some(err) => Action::Reply(Reply::Now(encode_frame(&err))),
                None => self.route_gossip(entries),
            },
            Ok(Request::Stats) => self.route_stats(),
            Ok(Request::Shutdown) => {
                self.shared.request_shutdown();
                Action::ReplyShutdown(Reply::Now(encode_frame(&Response::Bye)))
            }
            Err(message) => Action::Reply(Reply::Now(encode_frame(&Response::Error {
                code: CODE_BAD_REQUEST,
                message: format!("unparseable frame: {message}"),
            }))),
        }
    }

    fn drain_fallback(&self) -> String {
        encode_frame(&Response::Error {
            code: CODE_SHUTTING_DOWN,
            message: "router stopped before the shard answered".into(),
        })
    }
}

/// Field-by-field sum of two [`ServiceStats`] — the fleet-wide view.
fn add_stats(a: &mut ServiceStats, b: &ServiceStats) {
    a.requests += b.requests;
    a.cache_hits += b.cache_hits;
    a.cache_misses += b.cache_misses;
    a.coalesced += b.coalesced;
    a.cache_evictions += b.cache_evictions;
    a.cache_expired += b.cache_expired;
    a.cache_entries += b.cache_entries;
    a.rejected_full += b.rejected_full;
    a.rejected_shutdown += b.rejected_shutdown;
    a.deadline_expired += b.deadline_expired;
    a.solved += b.solved;
    a.errors += b.errors;
    a.queue_depth += b.queue_depth;
    a.workers += b.workers;
    a.recovered_entries += b.recovered_entries;
    a.journal_appends += b.journal_appends;
    a.journal_append_errors += b.journal_append_errors;
    a.snapshots_written += b.snapshots_written;
    a.replicated_out += b.replicated_out;
    a.replication_dropped += b.replication_dropped;
    a.replicated_in += b.replicated_in;
    a.deduped += b.deduped;
}

/// Delivery attempts (reconnect included) per forwarded frame before it
/// resolves as a transport error. Schedule, gossip and stats frames are
/// all idempotent, so a blind re-send is safe.
const FORWARD_ATTEMPTS: usize = 2;

/// One forwarder thread: owns one connection to its shard, drains the
/// shard's queue, round-trips each frame, fulfills each slot.
fn forward_loop(addr: String, queue: Arc<WorkQueue<ForwardJob>>) {
    let mut conn: Option<BufReader<TcpStream>> = None;
    while let Some(job) = queue.pop() {
        let mut last_err = ClientError::Io("unreachable".into());
        let mut result = None;
        for _ in 0..FORWARD_ATTEMPTS {
            if conn.is_none() {
                match TcpStream::connect(&addr) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        conn = Some(BufReader::new(s));
                    }
                    Err(e) => {
                        last_err = ClientError::Io(e.to_string());
                        continue;
                    }
                }
            }
            let c = conn.as_mut().expect("connected above");
            let wrote = c
                .get_mut()
                .write_all(job.frame.as_bytes())
                .and_then(|()| c.get_mut().flush());
            if let Err(e) = wrote {
                conn = None;
                last_err = e.into();
                continue;
            }
            match read_frame::<Response, _>(c) {
                Ok(FrameRead::Frame(response)) => {
                    result = Some(Ok(response));
                    break;
                }
                Ok(FrameRead::Malformed(m)) => {
                    result = Some(Err(ClientError::Protocol(m)));
                    break;
                }
                Ok(FrameRead::Eof) => {
                    conn = None;
                    last_err = ClientError::Disconnected("shard closed the connection".into());
                }
                Ok(FrameRead::SeveredMidFrame { partial_bytes }) => {
                    conn = None;
                    last_err = ClientError::Disconnected(format!(
                        "shard severed mid-frame ({partial_bytes} partial bytes)"
                    ));
                }
                Err(e) => {
                    conn = None;
                    last_err = e.into();
                }
            }
        }
        job.slot.fulfill(result.unwrap_or(Err(last_err)));
    }
}

/// A running router process: a reactor front, a forwarder pool per
/// shard behind.
pub struct Router {
    shared: Arc<RouterShared>,
    reactor: Option<Reactor>,
    forwarders: Vec<JoinHandle<()>>,
    addr: SocketAddr,
}

impl Router {
    /// Binds `addr` and starts routing across `config.shards`.
    ///
    /// # Panics
    /// When `config.shards` is empty — a router with nothing behind it
    /// is a configuration error, not a runtime condition.
    pub fn start(addr: &str, config: RouterConfig) -> std::io::Result<Router> {
        assert!(
            !config.shards.is_empty(),
            "a router needs at least one shard"
        );
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let mut queues = Vec::with_capacity(config.shards.len());
        let mut forwarders = Vec::new();
        for shard_addr in &config.shards {
            let queue = Arc::new(WorkQueue::new(config.queue_cap));
            for i in 0..config.conns_per_shard.max(1) {
                let q = Arc::clone(&queue);
                let a = shard_addr.clone();
                forwarders.push(
                    std::thread::Builder::new()
                        .name(format!("route-fwd-{a}-{i}"))
                        .spawn(move || forward_loop(a, q))?,
                );
            }
            queues.push(queue);
        }
        let shared = Arc::new(RouterShared {
            ring: HashRing::new(&config.shards),
            registry: SchedulerRegistry::global(),
            routed: config.shards.iter().map(|_| AtomicU64::new(0)).collect(),
            forward_errors: AtomicU64::new(0),
            queues,
            stopped: Mutex::new(false),
            stopped_cv: Condvar::new(),
        });
        let handler = Arc::new(RouteHandler {
            shared: Arc::clone(&shared),
        });
        let reactor = Reactor::spawn(listener, handler)?;
        Ok(Router {
            shared,
            reactor: Some(reactor),
            forwarders,
            addr: local,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Schedule frames routed to each shard (index-aligned with the
    /// config's shard list) — the load-balance witness.
    pub fn routed_per_shard(&self) -> Vec<u64> {
        self.shared
            .routed
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Forwards that failed at the transport after retries.
    pub fn forward_errors(&self) -> u64 {
        self.shared.forward_errors.load(Ordering::Relaxed)
    }

    /// Raises the stop flag. Non-blocking; idempotent.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until shutdown is requested (a `Shutdown` frame or
    /// [`request_shutdown`](Self::request_shutdown)), then tears down in
    /// the drain-then-stop order: pause intake, close and drain the
    /// forward queues (every admitted forward resolves while the reactor
    /// keeps flushing), stop the reactor. Shard daemons keep running.
    pub fn run_until_shutdown(mut self) {
        {
            let mut stopped = self.shared.stopped.lock().expect("stop flag poisoned");
            while !*stopped {
                stopped = self
                    .shared
                    .stopped_cv
                    .wait(stopped)
                    .expect("stop flag poisoned");
            }
        }
        let reactor = self.reactor.take();
        if let Some(r) = &reactor {
            r.pause_intake();
        }
        for queue in &self.shared.queues {
            queue.close();
        }
        // Joining the forwarders guarantees every admitted forward has
        // fulfilled its slot before the reactor's final drain runs.
        for h in self.forwarders.drain(..) {
            let _ = h.join();
        }
        if let Some(r) = reactor {
            r.stop();
        }
    }

    /// Convenience for tests: request shutdown and complete the
    /// teardown.
    pub fn shutdown(self) {
        self.request_shutdown();
        self.run_until_shutdown();
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        // A router dropped without `run_until_shutdown` must not leak
        // its forwarder threads (blocked in `pop`) or hang the reactor.
        if let Some(r) = self.reactor.take() {
            r.stop();
        }
        for queue in &self.shared.queues {
            queue.close();
        }
        for h in self.forwarders.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Workload;
    use crate::server::{Server, TcpClient};
    use crate::service::ServeConfig;
    use rfid_model::{RadiusModel, Scenario, ScenarioKind};

    fn small_job(seed: u64) -> JobSpec {
        JobSpec::new(Workload::Generated {
            scenario: Scenario {
                kind: ScenarioKind::UniformRandom,
                n_readers: 8,
                n_tags: 40,
                region_side: 40.0,
                radius_model: RadiusModel::paper_default(),
            },
            seed,
        })
    }

    fn daemon() -> Server {
        Server::start(
            "127.0.0.1:0",
            ServeConfig {
                workers: 2,
                queue_cap: 64,
                cache_cap: 128,
                ..ServeConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn routes_schedules_and_aggregates_stats_across_two_shards() {
        let a = daemon();
        let b = daemon();
        let router = Router::start(
            "127.0.0.1:0",
            RouterConfig {
                shards: vec![a.addr().to_string(), b.addr().to_string()],
                conns_per_shard: 2,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let mut client = TcpClient::connect(&router.addr().to_string()).unwrap();
        // Enough distinct jobs that both shards get some (64 keys).
        let jobs: Vec<JobSpec> = (0..64).map(small_job).collect();
        for job in &jobs {
            let cold = client.schedule(job, None).unwrap();
            assert!(!cold.cached);
        }
        // Re-request: every key must now hit the cache of its shard.
        for job in &jobs {
            let warm = client.schedule(job, None).unwrap();
            assert!(warm.cached, "owning shard must have the key cached");
        }
        let routed = router.routed_per_shard();
        assert_eq!(routed.iter().sum::<u64>(), 128);
        assert!(
            routed.iter().all(|&n| n > 0),
            "both shards must take load: {routed:?}"
        );
        // Fleet-wide counters through the router: the invariant holds.
        let (stats, metrics) = client.stats().unwrap();
        assert_eq!(stats.requests, 128);
        assert_eq!(stats.cache_hits + stats.cache_misses + stats.coalesced, 128);
        assert_eq!(stats.cache_hits, 64);
        assert_eq!(stats.solved, 64);
        assert!(metrics.starts_with('['), "per-shard metrics are joined");
        assert_eq!(router.forward_errors(), 0);
        router.shutdown();
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn router_payloads_match_a_direct_daemon_byte_for_byte() {
        let a = daemon();
        let b = daemon();
        let standalone = daemon();
        let router = Router::start(
            "127.0.0.1:0",
            RouterConfig {
                shards: vec![a.addr().to_string(), b.addr().to_string()],
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let mut via_router = TcpClient::connect(&router.addr().to_string()).unwrap();
        let mut direct = TcpClient::connect(&standalone.addr().to_string()).unwrap();
        for seed in 0..12 {
            let job = small_job(seed);
            let routed = via_router.schedule(&job, None).unwrap();
            let local = direct.schedule(&job, None).unwrap();
            assert_eq!(routed.key, local.key, "same canonical key everywhere");
            assert_eq!(
                routed.payload, local.payload,
                "determinism contract holds through the router"
            );
        }
        router.shutdown();
        a.shutdown();
        b.shutdown();
        standalone.shutdown();
    }

    #[test]
    fn router_shutdown_leaves_daemons_running() {
        let a = daemon();
        let router = Router::start(
            "127.0.0.1:0",
            RouterConfig {
                shards: vec![a.addr().to_string()],
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let mut client = TcpClient::connect(&router.addr().to_string()).unwrap();
        client.schedule(&small_job(7), None).unwrap();
        client.shutdown_server().unwrap();
        router.run_until_shutdown();
        // The daemon still answers directly, cache intact.
        let mut direct = TcpClient::connect(&a.addr().to_string()).unwrap();
        let warm = direct.schedule(&small_job(7), None).unwrap();
        assert!(warm.cached);
        a.shutdown();
    }

    #[test]
    fn dead_shard_is_a_structured_retryable_error() {
        let a = daemon();
        let dead_addr = {
            // Reserve and release a port nothing listens on.
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let router = Router::start(
            "127.0.0.1:0",
            RouterConfig {
                shards: vec![a.addr().to_string(), dead_addr],
                conns_per_shard: 1,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let mut client = TcpClient::connect(&router.addr().to_string()).unwrap();
        let mut saw_unavailable = false;
        for seed in 0..32 {
            match client.schedule(&small_job(seed), None) {
                Ok(reply) => assert!(!reply.cached),
                Err(ClientError::Remote(e)) => {
                    assert_eq!(e.code, CODE_SHUTTING_DOWN, "{e}");
                    assert!(e.message.contains("unavailable"), "{e}");
                    saw_unavailable = true;
                }
                Err(other) => panic!("expected a structured error, got {other:?}"),
            }
        }
        assert!(saw_unavailable, "some keys must land on the dead shard");
        assert!(router.forward_errors() > 0);
        router.shutdown();
        a.shutdown();
    }

    #[test]
    fn delta_frames_route_to_the_shard_owning_the_base() {
        use rfid_delta::ScenarioDelta;
        let a = daemon();
        let b = daemon();
        let router = Router::start(
            "127.0.0.1:0",
            RouterConfig {
                shards: vec![a.addr().to_string(), b.addr().to_string()],
                conns_per_shard: 2,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let mut client = TcpClient::connect(&router.addr().to_string()).unwrap();
        let ops = vec![ScenarioDelta::AddTag { x: 10.0, y: 10.0 }];
        for seed in 0..8 {
            let base = client.schedule(&small_job(seed), None).unwrap();
            // The delta must land on the shard that solved the base —
            // any other shard would answer a base-miss.
            let patched = client.schedule_delta(&base.key, &ops, None, None).unwrap();
            assert_ne!(patched.key, base.key);
            let again = client.schedule_delta(&base.key, &ops, None, None).unwrap();
            assert!(again.cached, "derived key must be warm on the base shard");
            assert_eq!(again.payload, patched.payload);
        }
        router.shutdown();
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn key_frames_route_to_the_owning_shard_with_identical_bytes() {
        use rfid_delta::ScenarioDelta;
        let a = daemon();
        let b = daemon();
        let router = Router::start(
            "127.0.0.1:0",
            RouterConfig {
                shards: vec![a.addr().to_string(), b.addr().to_string()],
                conns_per_shard: 2,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        let mut client = TcpClient::connect(&router.addr().to_string()).unwrap();
        // Warm both shards, then address every schedule by key alone:
        // the router must land each key frame on its owning shard.
        let replies: Vec<_> = (0..16)
            .map(|seed| client.schedule(&small_job(seed), None).unwrap())
            .collect();
        for reply in &replies {
            let hit = client.schedule_by_key(&reply.key, &[]).unwrap();
            assert!(hit.cached, "owning shard must hold {}", reply.key);
            assert_eq!(hit.key, reply.key);
            assert_eq!(hit.payload, reply.payload, "identical bytes via key path");
        }
        // Key+ops frames route by the base key (the derived schedule is
        // cached on the base's shard).
        let ops = vec![ScenarioDelta::AddTag { x: 3.0, y: 4.0 }];
        for reply in replies.iter().take(4) {
            let patched = client.schedule_delta(&reply.key, &ops, None, None).unwrap();
            let hit = client.schedule_by_key(&reply.key, &ops).unwrap();
            assert!(hit.cached);
            assert_eq!(hit.key, patched.key);
            assert_eq!(hit.payload, patched.payload);
        }
        // An uncached key answers the shard's structured key-miss.
        let err = client.schedule_by_key("00000000000000bb", &[]).unwrap_err();
        assert!(
            matches!(&err, ClientError::Remote(e) if e.message.starts_with("key-miss")),
            "{err:?}"
        );
        assert_eq!(router.forward_errors(), 0);
        router.shutdown();
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn gossip_through_the_router_partitions_by_key() {
        let a = daemon();
        let b = daemon();
        let shards = vec![a.addr().to_string(), b.addr().to_string()];
        let router = Router::start(
            "127.0.0.1:0",
            RouterConfig {
                shards,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        // Solve on a scratch daemon to get real entries to gossip.
        let scratch = daemon();
        let mut s = TcpClient::connect(&scratch.addr().to_string()).unwrap();
        let mut entries = Vec::new();
        for seed in 100..116 {
            let reply = s.schedule(&small_job(seed), None).unwrap();
            entries.push(GossipEntry {
                key: reply.key.clone(),
                payload: reply.payload.to_string(),
            });
        }
        let mut client = TcpClient::connect(&router.addr().to_string()).unwrap();
        assert_eq!(client.gossip(&entries).unwrap(), entries.len() as u64);
        // Every entry landed, split across the two owning shards.
        let in_a = a.service().stats().replicated_in;
        let in_b = b.service().stats().replicated_in;
        assert_eq!(in_a + in_b, entries.len() as u64);
        assert!(in_a > 0 && in_b > 0, "both shards absorbed entries");
        // A gossiped key now serves warm through the router, with the
        // exact payload bytes the scratch daemon solved.
        let warm = client.schedule(&small_job(100), None).unwrap();
        assert!(warm.cached, "gossip must have warmed the owning shard");
        assert_eq!(warm.payload.to_string(), entries[0].payload);
        router.shutdown();
        a.shutdown();
        b.shutdown();
        scratch.shutdown();
    }
}
