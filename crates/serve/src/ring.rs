//! A consistent-hash ring over the FNV-1a content-key space.
//!
//! The router places [`VNODES`] virtual points per shard on the u64
//! ring (hashing `"{addr}#{i}"` with the same [`crate::fnv1a64`] that
//! addresses cache entries) and assigns a content key to the first
//! point at or clockwise-after it. The properties that make this the
//! right structure for shard routing:
//!
//! * **Stability** — a key's shard is a pure function of the shard
//!   list; every router instance with the same `--shards` flag routes
//!   identically, so shard-local caches stay disjoint and hot.
//! * **Bounded remap** — adding a shard to `n` existing ones moves
//!   ~`1/(n+1)` of the keyspace (only keys whose successor point is now
//!   one of the new shard's vnodes), and every moved key moves **to the
//!   new shard**; removing a shard moves only that shard's keys.
//!   Verified by the proptests in `crates/serve/tests/ring_props.rs`.

use crate::codec::fnv1a64;

/// Virtual points per shard. 64 keeps the expected per-shard load
/// within a few percent of uniform for small clusters while the ring
/// stays tiny (a few KiB).
pub const VNODES: usize = 64;

/// Finalising bit mixer (the 64-bit murmur3 `fmix64`). FNV-1a hashes of
/// strings that differ only in a short trailing counter — exactly the
/// `"{addr}#{v}"` vnode names — come out nearly sequential (the last few
/// input bytes barely avalanche), which would collapse a shard's vnodes
/// into one cluster and ruin the load balance. One mixing round spreads
/// them uniformly over the u64 ring.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// An immutable consistent-hash ring mapping u64 content keys to shard
/// indices.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, shard_index)`, sorted by point.
    points: Vec<(u64, usize)>,
    shards: Vec<String>,
}

impl HashRing {
    /// Builds the ring for an ordered shard list (typically daemon
    /// addresses). Order only names the indices; the mapping of keys to
    /// *addresses* is order-independent.
    pub fn new(shards: &[String]) -> HashRing {
        Self::with_vnodes(shards, VNODES)
    }

    /// [`new`](Self::new) with an explicit vnode count (tests).
    pub fn with_vnodes(shards: &[String], vnodes: usize) -> HashRing {
        let mut points = Vec::with_capacity(shards.len() * vnodes);
        for (index, shard) in shards.iter().enumerate() {
            for v in 0..vnodes {
                points.push((mix64(fnv1a64(format!("{shard}#{v}").as_bytes())), index));
            }
        }
        // Identical points (hash collisions across shards) resolve by
        // shard index — deterministic for every builder of this list.
        points.sort_unstable();
        HashRing {
            points,
            shards: shards.to_vec(),
        }
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` when the ring has no shards (nothing can be routed).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard addresses, in index order.
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// The shard index owning a content key: the first vnode at or
    /// clockwise-after the key, wrapping at the top of the u64 space.
    ///
    /// # Panics
    /// On an empty ring.
    pub fn shard_of(&self, key: u64) -> usize {
        assert!(!self.points.is_empty(), "shard_of on an empty ring");
        let i = self.points.partition_point(|&(p, _)| p < key);
        if i == self.points.len() {
            self.points[0].1 // wrap around
        } else {
            self.points[i].1
        }
    }

    /// The shard address owning a content key.
    pub fn addr_of(&self, key: u64) -> &str {
        &self.shards[self.shard_of(key)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7500 + i)).collect()
    }

    #[test]
    fn same_list_same_mapping() {
        let a = HashRing::new(&shards(3));
        let b = HashRing::new(&shards(3));
        for key in (0..20_000u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)) {
            assert_eq!(a.shard_of(key), b.shard_of(key));
        }
    }

    #[test]
    fn all_shards_get_a_reasonable_share() {
        let ring = HashRing::new(&shards(4));
        let mut counts = [0usize; 4];
        let samples = 40_000u64;
        for key in (0..samples).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)) {
            counts[ring.shard_of(key)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let share = c as f64 / samples as f64;
            assert!(
                (0.10..=0.45).contains(&share),
                "shard {i} got {share:.3} of the keyspace"
            );
        }
    }

    #[test]
    fn adding_a_shard_moves_keys_only_to_it() {
        let before = HashRing::new(&shards(3));
        let mut grown = shards(3);
        grown.push("127.0.0.1:7999".into());
        let after = HashRing::new(&grown);
        let samples = 20_000u64;
        let mut moved = 0usize;
        for key in (0..samples).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)) {
            let a = before.addr_of(key).to_string();
            let b = after.addr_of(key).to_string();
            if a != b {
                moved += 1;
                assert_eq!(b, "127.0.0.1:7999", "moved keys go to the new shard");
            }
        }
        let frac = moved as f64 / samples as f64;
        // Expected 1/4; allow generous vnode variance.
        assert!(frac < 0.45, "remap fraction {frac:.3} too high");
        assert!(frac > 0.05, "remap fraction {frac:.3} suspiciously low");
    }

    #[test]
    #[should_panic(expected = "empty ring")]
    fn empty_ring_panics() {
        HashRing::new(&[]).shard_of(7);
    }
}
