//! `rfid-serve` — the scheduling service layer.
//!
//! PRs 1–3 made the solver stack robust, fast and observable, but every
//! schedule still came from a one-shot CLI invocation. This crate adds
//! the long-lived request path the ROADMAP's "serves heavy traffic"
//! north star needs, as four composable layers (DESIGN.md §9):
//!
//! 1. **Codec** ([`codec`]) — canonical JSON encode/decode of a
//!    [`JobSpec`] (scenario or explicit deployment + solver options) with
//!    a stable FNV-1a 64-bit content hash. Semantically equal requests
//!    (aliased algorithm names, permuted tag lists) canonicalise to the
//!    same bytes and therefore the same cache key.
//! 2. **Cache** ([`cache`]) — a sharded `RwLock` LRU keyed by content
//!    hash, with capacity/TTL bounds and hit/miss/eviction counters
//!    exported through `rfid-obs`.
//! 3. **Queue + workers** ([`queue`], [`service`]) — a bounded work
//!    queue with backpressure (a full queue is a structured `429`-style
//!    reject, never a hang or a silent drop), per-request deadlines and
//!    graceful drain-then-stop shutdown.
//! 4. **Protocol** ([`protocol`], [`server`]) — JSON-lines over TCP
//!    (`std::net` only, per the vendored-offline policy), served by a
//!    nonblocking readiness loop ([`reactor`]) with request pipelining,
//!    and consumed through one unified [`ClientBuilder`] /
//!    [`ServeClient`] surface ([`client`]) over in-process, TCP and
//!    failover transports.
//! 5. **Durability + replication** (DESIGN.md §10) — an append-only
//!    checksummed journal with compacted snapshots over an injectable
//!    [`Storage`] trait ([`storage`], [`journal`], [`snapshot`]), so a
//!    restarted daemon recovers a warm cache from the longest valid
//!    journal prefix; push-only cache gossip between peer daemons and a
//!    client-side [`FailoverClient`] that retries idempotent requests
//!    against the next peer ([`replicate`]).
//! 6. **Sharding** ([`ring`], [`router`]) — a consistent-hash ring over
//!    the FNV-1a content keys and a thin `mrrfid route` process that
//!    fans requests out across N daemon instances, with stats
//!    aggregation and gossip partitioning, so cache capacity and solve
//!    throughput scale horizontally.
//! 7. **Incremental scheduling** (protocol v3 `Delta` frames, DESIGN.md
//!    §13) — a client holding a base content key sends `{base, ops}`
//!    instead of a full scenario; the service resolves the base spec
//!    (structured `404` base-miss otherwise), patches it through
//!    [`rfid_delta`] and publishes the reply under the derived content
//!    key, which caches, journals, gossips and routes exactly like a
//!    full request.
//! 8. **Request by key** (protocol v4 `Key` frames, DESIGN.md §14) — a
//!    client that already round-tripped a job addresses the cached
//!    schedule by content key alone: a shallow frame scan
//!    ([`codec::scan_key_frame`]) extracts the key without a serde
//!    parse, the cache answers with pre-rendered payload bytes spliced
//!    into the reply envelope ([`reactor::SplicedFrame`]), and a
//!    structured `404` key-miss makes [`ClientBuilder`] clients fall
//!    back to the full frame transparently.
//!
//! The **determinism contract**: a response payload is the canonical
//! JSON of a [`ScheduleOutcome`] and contains no wall-clock data, so a
//! cold solve, a warm cache hit, the in-process client, the TCP
//! client, a journal-recovered restart and a gossip-warmed peer all
//! return byte-identical payloads for the same request (enforced by
//! `tests/serve.rs` and `tests/serve_chaos.rs`).

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod codec;
pub mod journal;
pub mod protocol;
pub mod queue;
pub mod reactor;
pub mod replicate;
pub mod ring;
pub mod router;
pub mod server;
pub mod service;
pub mod snapshot;
pub mod storage;

pub use cache::{CacheStats, ScheduleCache};
pub use client::{BuiltClient, ClientBuilder, ServeClient};
pub use codec::{
    canonical_json, decode_job, fnv1a64, scan_key_frame, CanonicalJob, CodecError, JobSpec,
    KeyFrameScan, Workload,
};
pub use journal::{DurableStats, DurableStore, RecoveryReport, ReplayReport};
pub use protocol::{FrameRead, GossipEntry, Request, Response, ServiceStats, PROTOCOL_VERSION};
pub use queue::{PushError, ResponseSlot, WorkQueue};
pub use replicate::{FailoverClient, FailoverPolicy, Replicator};
pub use rfid_delta::ScenarioDelta;
pub use ring::HashRing;
pub use router::{Router, RouterConfig};
pub use server::{ClientError, Server, TcpClient};
pub use service::{
    KeyHit, ScheduleOutcome, ScheduleReply, ServeConfig, Service, ServiceError, SlotSummary,
    Submission,
};
pub use storage::{DiskStorage, FaultyStorage, Storage, StorageFaults};
