//! A zero-dependency nonblocking readiness loop with request pipelining.
//!
//! The PR-4 daemon parked one thread per connection in a blocking read
//! — fine at tens of clients, a wall at thousands (a stack and a
//! scheduler slot per idle socket, a 200 ms poll tick per read). This
//! module replaces that with **one** event thread over nonblocking
//! `std::net` sockets (per the vendored-offline policy: no mio, no
//! epoll binding — a readiness *scan* with an idle sleep, which on
//! loopback benches within noise of a real poller for the connection
//! counts we target):
//!
//! * Each connection owns a read buffer and a write buffer. The loop
//!   try-reads every socket, slices complete JSON lines out of the read
//!   buffer, and hands them to the [`FrameHandler`].
//! * The handler answers [`Reply::Now`] (bytes ready — a cache hit, an
//!   admission error) or [`Reply::Pending`] (a poll object — the job is
//!   queued behind the worker pool). Replies join a per-connection FIFO
//!   and are flushed **strictly in request order**, so clients may
//!   pipeline many requests on one connection and still match
//!   responses to requests positionally — the protocol's ordering
//!   guarantee, now load-bearing.
//! * Backpressure is structural: a connection with [`MAX_PIPELINE`]
//!   undelivered replies is not read from until its queue drains, so a
//!   client that floods requests fills its own TCP window, not our
//!   memory.
//!
//! The worker pool is untouched: solving still happens on
//! [`crate::WorkQueue`] workers; the reactor polls each job's
//! [`crate::ResponseSlot`] (via the handler's pending closure) between
//! socket scans instead of blocking a thread on it.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Undelivered replies per connection before the reactor stops reading
/// from it (resumes as the queue drains).
pub const MAX_PIPELINE: usize = 1024;

/// Read-buffer cap per connection: a single line longer than this is a
/// protocol abuse and drops the connection.
const MAX_LINE_BYTES: usize = 32 * 1024 * 1024;

/// How long the final drain (flush-out after `finish`) may take before
/// remaining connections are dropped.
const DRAIN_CAP: Duration = Duration::from_secs(10);

/// Sleep when a full scan made no progress (no readable socket, no
/// writable byte, no resolved reply). Short enough that a worker
/// finishing a solve is picked up promptly; long enough that an idle
/// daemon burns no measurable CPU.
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// One response, possibly not ready yet.
pub enum Reply {
    /// The full response frame (newline-terminated), ready to send.
    Now(String),
    /// The response is being produced (a queued solve); the reactor
    /// polls the object each pass until it yields the frame.
    Pending(Box<dyn PendingReply>),
}

/// A reply still in flight: polled by the event loop between socket
/// scans. Implementations must be cheap (a `try_take` on a slot plus a
/// deadline check) and must eventually yield — the deadline path exists
/// precisely so an abandoned solve still answers with a `504` frame.
pub trait PendingReply: Send {
    /// `Some(frame)` once the response bytes are ready.
    fn poll(&mut self) -> Option<String>;
}

impl<F: FnMut() -> Option<String> + Send> PendingReply for F {
    fn poll(&mut self) -> Option<String> {
        self()
    }
}

/// What the handler wants done with one request line.
pub enum Action {
    /// Queue the reply on this connection.
    Reply(Reply),
    /// Queue the reply, then close the connection once it is flushed
    /// (fatal protocol abuse).
    ReplyClose(Reply),
    /// Queue the reply (typically `Bye`), then initiate process-wide
    /// shutdown. The reactor keeps flushing so the reply is delivered;
    /// the owner observes the shutdown request and tears down.
    ReplyShutdown(Reply),
}

/// The application half of the event loop: turns one request line into
/// an [`Action`]. One instance is shared by every connection, so
/// implementations hold their state behind `Arc`s (the daemon's handler
/// wraps [`crate::Service`], the router's wraps its forwarding pool).
pub trait FrameHandler: Send + Sync + 'static {
    /// Handles one complete, newline-stripped request line.
    fn on_line(&self, line: &str) -> Action;

    /// The frame sent in place of a reply still pending when the final
    /// drain gives up on it (shutdown with the result not ready).
    fn drain_fallback(&self) -> String;
}

enum Slot {
    Ready(String),
    Pending(Box<dyn PendingReply>),
}

struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed into lines.
    rdbuf: Vec<u8>,
    /// Offset into `rdbuf` already scanned for a newline.
    scanned: usize,
    /// Bytes of encoded replies not yet written to the socket.
    wrbuf: Vec<u8>,
    /// Replies not yet moved into `wrbuf`, strictly in request order.
    replies: VecDeque<Slot>,
    /// Peer half-closed its write side: serve what is buffered, flush,
    /// then drop.
    eof: bool,
    /// Close once every queued reply is flushed.
    close_after_flush: bool,
    /// Socket error or protocol abuse: drop now.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            rdbuf: Vec::new(),
            scanned: 0,
            wrbuf: Vec::new(),
            replies: VecDeque::new(),
            eof: false,
            close_after_flush: false,
            dead: false,
        }
    }

    fn drained(&self) -> bool {
        self.replies.is_empty() && self.wrbuf.is_empty()
    }
}

struct Flags {
    /// Stop accepting connections and stop reading new frames.
    stop: AtomicBool,
    /// Resolve leftovers, flush, exit.
    finish: AtomicBool,
    /// A handler returned [`Action::ReplyShutdown`].
    shutdown_seen: AtomicBool,
    /// Connections accepted over the reactor's lifetime.
    accepted: AtomicU64,
}

/// The running event loop. Owns the listener and every connection;
/// dropped (or [`Reactor::stop`]ped) it resolves outstanding replies,
/// flushes and exits.
pub struct Reactor {
    flags: Arc<Flags>,
    addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl Reactor {
    /// Starts the event thread over a bound listener.
    pub fn spawn<H: FrameHandler>(
        listener: TcpListener,
        handler: Arc<H>,
    ) -> std::io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let flags = Arc::new(Flags {
            stop: AtomicBool::new(false),
            finish: AtomicBool::new(false),
            shutdown_seen: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
        });
        let loop_flags = Arc::clone(&flags);
        let handle = std::thread::Builder::new()
            .name("serve-reactor".into())
            .spawn(move || event_loop(listener, handler, &loop_flags))?;
        Ok(Reactor {
            flags,
            addr,
            handle: Some(handle),
        })
    }

    /// The listener's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once a connection sent a shutdown-requesting frame.
    pub fn shutdown_requested(&self) -> bool {
        self.flags.shutdown_seen.load(Ordering::SeqCst)
    }

    /// Connections accepted so far.
    pub fn accepted(&self) -> u64 {
        self.flags.accepted.load(Ordering::SeqCst)
    }

    /// Stops accepting connections and reading new frames. Already
    /// queued replies keep flushing. Idempotent.
    pub fn pause_intake(&self) {
        self.flags.stop.store(true, Ordering::SeqCst);
    }

    /// Ends the loop: intake stops, every pending reply is given one
    /// last poll (the handler's drain fallback answers for any still
    /// not ready), buffers are flushed (bounded by an internal cap) and
    /// the thread exits. Blocks until it has.
    pub fn stop(mut self) {
        self.flags.stop.store(true, Ordering::SeqCst);
        self.flags.finish.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.flags.stop.store(true, Ordering::SeqCst);
        self.flags.finish.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn event_loop<H: FrameHandler>(listener: TcpListener, handler: Arc<H>, flags: &Flags) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut drain_started: Option<Instant> = None;
    loop {
        let finishing = flags.finish.load(Ordering::SeqCst);
        if finishing && drain_started.is_none() {
            drain_started = Some(Instant::now());
            for conn in &mut conns {
                resolve_for_drain(conn, handler.as_ref());
            }
        }
        let mut progress = false;

        if !flags.stop.load(Ordering::SeqCst) {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        flags.accepted.fetch_add(1, Ordering::SeqCst);
                        conns.push(Conn::new(stream));
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break, // transient (EMFILE, aborted handshake)
                }
            }
        }

        let reading_allowed = !flags.stop.load(Ordering::SeqCst);
        for conn in &mut conns {
            if conn.dead {
                continue;
            }
            if reading_allowed && !conn.close_after_flush {
                progress |= read_and_dispatch(conn, handler.as_ref(), flags);
            }
            progress |= pump_replies(conn);
            progress |= flush(conn);
        }
        // A connection is kept unless it died, or finished a requested
        // close, or hit EOF with nothing left to answer or parse.
        conns.retain(|c| {
            let closed = c.close_after_flush && c.drained();
            let exhausted = c.eof && c.drained() && c.scanned >= c.rdbuf.len();
            !(c.dead || closed || exhausted)
        });

        if finishing {
            let done = conns.iter().all(|c| c.drained());
            let capped = drain_started
                .map(|t| t.elapsed() > DRAIN_CAP)
                .unwrap_or(true);
            if done || capped {
                return;
            }
        }
        if !progress {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

/// Nonblocking read + line dispatch. Returns `true` on any progress.
fn read_and_dispatch<H: FrameHandler>(conn: &mut Conn, handler: &H, flags: &Flags) -> bool {
    if conn.replies.len() >= MAX_PIPELINE {
        return false; // backpressure: let the client's TCP window fill
    }
    let mut buf = [0u8; 16 * 1024];
    let mut progress = false;
    while !conn.eof {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.eof = true;
                progress = true;
                break;
            }
            Ok(n) => {
                conn.rdbuf.extend_from_slice(&buf[..n]);
                progress = true;
                if conn.rdbuf.len() > MAX_LINE_BYTES {
                    conn.dead = true;
                    return true;
                }
                if conn.replies.len() >= MAX_PIPELINE {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return true;
            }
        }
    }
    // Slice out complete lines; partial tail stays buffered.
    while let Some(nl) = find_newline(conn) {
        let line: Vec<u8> = conn.rdbuf.drain(..=nl).collect();
        conn.scanned = 0;
        let line = String::from_utf8_lossy(&line);
        if line.trim().is_empty() {
            continue;
        }
        progress = true;
        let action = handler.on_line(&line);
        let reply = match action {
            Action::Reply(r) => r,
            Action::ReplyClose(r) => {
                conn.close_after_flush = true;
                r
            }
            Action::ReplyShutdown(r) => {
                flags.shutdown_seen.store(true, Ordering::SeqCst);
                r
            }
        };
        conn.replies.push_back(match reply {
            Reply::Now(frame) => Slot::Ready(frame),
            Reply::Pending(p) => Slot::Pending(p),
        });
        if conn.close_after_flush {
            break; // nothing after a fatal frame is served
        }
    }
    progress
}

fn find_newline(conn: &mut Conn) -> Option<usize> {
    let start = conn.scanned;
    match conn.rdbuf[start..].iter().position(|&b| b == b'\n') {
        Some(off) => Some(start + off),
        None => {
            conn.scanned = conn.rdbuf.len();
            None
        }
    }
}

/// Moves ready replies (in order) from the FIFO into the write buffer.
/// A pending head blocks everything behind it — that is the ordering
/// guarantee.
fn pump_replies(conn: &mut Conn) -> bool {
    let mut progress = false;
    while let Some(head) = conn.replies.front_mut() {
        match head {
            Slot::Ready(frame) => {
                conn.wrbuf.extend_from_slice(frame.as_bytes());
                conn.replies.pop_front();
                progress = true;
            }
            Slot::Pending(p) => match p.poll() {
                Some(frame) => {
                    conn.wrbuf.extend_from_slice(frame.as_bytes());
                    conn.replies.pop_front();
                    progress = true;
                }
                None => break,
            },
        }
    }
    progress
}

fn flush(conn: &mut Conn) -> bool {
    let mut progress = false;
    while !conn.wrbuf.is_empty() {
        match conn.stream.write(&conn.wrbuf) {
            Ok(0) => {
                conn.dead = true;
                return true;
            }
            Ok(n) => {
                conn.wrbuf.drain(..n);
                progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return true;
            }
        }
    }
    progress
}

/// Final-drain policy: each pending reply gets one last poll; those
/// still unresolved answer with the handler's fallback frame (the
/// worker that would have fulfilled them is gone or going).
fn resolve_for_drain<H: FrameHandler>(conn: &mut Conn, handler: &H) {
    for slot in conn.replies.iter_mut() {
        if let Slot::Pending(p) = slot {
            let frame = p.poll().unwrap_or_else(|| handler.drain_fallback());
            *slot = Slot::Ready(frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::sync::Mutex;

    /// Echoes `ok:<line>`; `slow:<n>` answers after `n` polls; `close`
    /// closes; `stop` requests shutdown.
    struct EchoHandler {
        polls_left: Mutex<Vec<u32>>,
    }

    impl FrameHandler for EchoHandler {
        fn on_line(&self, line: &str) -> Action {
            let line = line.trim().to_string();
            if line == "close" {
                return Action::ReplyClose(Reply::Now("bye\n".into()));
            }
            if line == "stop" {
                return Action::ReplyShutdown(Reply::Now("stopping\n".into()));
            }
            if let Some(n) = line.strip_prefix("slow:") {
                let mut left: u32 = n.parse().unwrap();
                let tag = line.clone();
                return Action::Reply(Reply::Pending(Box::new(move || {
                    if left == 0 {
                        Some(format!("ok:{tag}\n"))
                    } else {
                        left -= 1;
                        None
                    }
                })));
            }
            self.polls_left.lock().unwrap().push(0);
            Action::Reply(Reply::Now(format!("ok:{line}\n")))
        }

        fn drain_fallback(&self) -> String {
            "drained\n".into()
        }
    }

    fn echo_reactor() -> (Reactor, String) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handler = Arc::new(EchoHandler {
            polls_left: Mutex::new(Vec::new()),
        });
        let reactor = Reactor::spawn(listener, handler).unwrap();
        let addr = reactor.addr().to_string();
        (reactor, addr)
    }

    #[test]
    fn round_trips_one_frame() {
        let (reactor, addr) = echo_reactor();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream);
        reader.get_mut().write_all(b"hello\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "ok:hello\n");
        reactor.stop();
    }

    #[test]
    fn pipelined_frames_answer_in_request_order_despite_slow_heads() {
        let (reactor, addr) = echo_reactor();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream);
        // The slow head must NOT be overtaken by the fast followers.
        reader
            .get_mut()
            .write_all(b"slow:40\nfast1\nfast2\nslow:2\nfast3\n")
            .unwrap();
        let mut lines = Vec::new();
        for _ in 0..5 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line.trim().to_string());
        }
        assert_eq!(
            lines,
            vec![
                "ok:slow:40",
                "ok:fast1",
                "ok:fast2",
                "ok:slow:2",
                "ok:fast3"
            ]
        );
        reactor.stop();
    }

    #[test]
    fn many_connections_multiplex_on_one_thread() {
        let (reactor, addr) = echo_reactor();
        let mut readers: Vec<BufReader<TcpStream>> = (0..32)
            .map(|_| BufReader::new(TcpStream::connect(&addr).unwrap()))
            .collect();
        for (i, r) in readers.iter_mut().enumerate() {
            r.get_mut()
                .write_all(format!("conn{i}\n").as_bytes())
                .unwrap();
        }
        for (i, r) in readers.iter_mut().enumerate().rev() {
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            assert_eq!(line, format!("ok:conn{i}\n"));
        }
        reactor.stop();
    }

    #[test]
    fn reply_close_flushes_then_drops() {
        let (reactor, addr) = echo_reactor();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream);
        reader.get_mut().write_all(b"close\nafter\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "bye\n");
        // The connection is closed; "after" is never served.
        let mut rest = String::new();
        reader.read_line(&mut rest).unwrap();
        assert_eq!(rest, "", "EOF after the fatal frame");
        reactor.stop();
    }

    #[test]
    fn shutdown_action_raises_the_flag_and_still_delivers_the_reply() {
        let (reactor, addr) = echo_reactor();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream);
        reader.get_mut().write_all(b"stop\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "stopping\n");
        assert!(reactor.shutdown_requested());
        reactor.stop();
    }

    #[test]
    fn finish_resolves_unready_pendings_with_the_fallback() {
        let (reactor, addr) = echo_reactor();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream);
        // A reply that would take ~forever (1e9 polls) to resolve.
        reader.get_mut().write_all(b"slow:1000000000\n").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        reactor.stop(); // must not hang: fallback answers
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "drained\n");
    }

    #[test]
    fn half_close_still_gets_all_responses() {
        let (reactor, addr) = echo_reactor();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream);
        reader.get_mut().write_all(b"a\nslow:5\nb\n").unwrap();
        reader
            .get_mut()
            .shutdown(std::net::Shutdown::Write)
            .unwrap();
        let mut lines = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line.trim().to_string());
        }
        assert_eq!(lines, vec!["ok:a", "ok:slow:5", "ok:b"]);
        reactor.stop();
    }
}
