//! A zero-dependency nonblocking readiness loop with request pipelining.
//!
//! The PR-4 daemon parked one thread per connection in a blocking read
//! — fine at tens of clients, a wall at thousands (a stack and a
//! scheduler slot per idle socket, a 200 ms poll tick per read). This
//! module replaces that with **one** event thread over nonblocking
//! `std::net` sockets (per the vendored-offline policy: no mio, no
//! epoll binding — a readiness *scan* with an idle sleep, which on
//! loopback benches within noise of a real poller for the connection
//! counts we target):
//!
//! * Each connection owns a read buffer and a write buffer. The loop
//!   try-reads every socket, slices complete JSON lines out of the read
//!   buffer, and hands them to the [`FrameHandler`].
//! * The handler answers [`Reply::Now`] (bytes ready — a cache hit, an
//!   admission error) or [`Reply::Pending`] (a poll object — the job is
//!   queued behind the worker pool). Replies join a per-connection FIFO
//!   and are flushed **strictly in request order**, so clients may
//!   pipeline many requests on one connection and still match
//!   responses to requests positionally — the protocol's ordering
//!   guarantee, now load-bearing.
//! * Backpressure is structural: a connection with [`MAX_PIPELINE`]
//!   undelivered replies is not read from until its queue drains, so a
//!   client that floods requests fills its own TCP window, not our
//!   memory.
//!
//! The worker pool is untouched: solving still happens on
//! [`crate::WorkQueue`] workers; the reactor polls each job's
//! [`crate::ResponseSlot`] (via the handler's pending closure) between
//! socket scans instead of blocking a thread on it.

use std::collections::VecDeque;
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Undelivered replies per connection before the reactor stops reading
/// from it (resumes as the queue drains).
pub const MAX_PIPELINE: usize = 1024;

/// Read-buffer cap per connection: a single line longer than this is a
/// protocol abuse and drops the connection.
const MAX_LINE_BYTES: usize = 32 * 1024 * 1024;

/// Consumed-prefix size at which the read buffer is compacted (one
/// `copy_within` of the partial tail) instead of merely advancing the
/// offset. Matches the read chunk size: compaction happens at most once
/// per read batch, never once per line.
const RD_COMPACT_AT: usize = 16 * 1024;

/// Largest recycled write chunk kept per connection. A chunk that grew
/// beyond this (one giant burst) is dropped back to the allocator
/// rather than pinned forever.
const SPARE_CHUNK_CAP: usize = 64 * 1024;

/// Segments per `write_vectored` call.
const MAX_IOV: usize = 16;

/// How long the final drain (flush-out after `finish`) may take before
/// remaining connections are dropped.
const DRAIN_CAP: Duration = Duration::from_secs(10);

/// Sleep when a full scan made no progress (no readable socket, no
/// writable byte, no resolved reply). Short enough that a worker
/// finishing a solve is picked up promptly; long enough that an idle
/// daemon burns no measurable CPU.
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// One response, possibly not ready yet.
pub enum Reply {
    /// The full response frame (newline-terminated), ready to send.
    Now(String),
    /// A frame assembled from pre-rendered segments: a small envelope
    /// prefix, a shared payload (typically a cache entry's pre-escaped
    /// bytes) and a static suffix. The reactor writes the three
    /// segments with vectored I/O — the payload is never copied into a
    /// per-reply `String`, which is what makes the request-by-key hit
    /// path serde- and memcpy-free on the server side.
    Spliced(SplicedFrame),
    /// The response is being produced (a queued solve); the reactor
    /// polls the object each pass until it yields the frame.
    Pending(Box<dyn PendingReply>),
}

/// The segments of a [`Reply::Spliced`] frame: bytes on the wire are
/// exactly `prefix + payload + suffix`.
pub struct SplicedFrame {
    /// Envelope up to (and including) the opening of the payload field.
    pub prefix: String,
    /// The shared payload bytes, spliced in by reference.
    pub payload: Arc<str>,
    /// Envelope close, newline included.
    pub suffix: &'static str,
}

/// A reply still in flight: polled by the event loop between socket
/// scans. Implementations must be cheap (a `try_take` on a slot plus a
/// deadline check) and must eventually yield — the deadline path exists
/// precisely so an abandoned solve still answers with a `504` frame.
pub trait PendingReply: Send {
    /// `Some(frame)` once the response bytes are ready.
    fn poll(&mut self) -> Option<String>;
}

impl<F: FnMut() -> Option<String> + Send> PendingReply for F {
    fn poll(&mut self) -> Option<String> {
        self()
    }
}

/// What the handler wants done with one request line.
pub enum Action {
    /// Queue the reply on this connection.
    Reply(Reply),
    /// Queue the reply, then close the connection once it is flushed
    /// (fatal protocol abuse).
    ReplyClose(Reply),
    /// Queue the reply (typically `Bye`), then initiate process-wide
    /// shutdown. The reactor keeps flushing so the reply is delivered;
    /// the owner observes the shutdown request and tears down.
    ReplyShutdown(Reply),
}

/// The application half of the event loop: turns one request line into
/// an [`Action`]. One instance is shared by every connection, so
/// implementations hold their state behind `Arc`s (the daemon's handler
/// wraps [`crate::Service`], the router's wraps its forwarding pool).
pub trait FrameHandler: Send + Sync + 'static {
    /// Handles one complete, newline-stripped request line.
    fn on_line(&self, line: &str) -> Action;

    /// The frame sent in place of a reply still pending when the final
    /// drain gives up on it (shutdown with the result not ready).
    fn drain_fallback(&self) -> String;
}

enum Slot {
    Ready(String),
    Spliced(SplicedFrame),
    Pending(Box<dyn PendingReply>),
}

/// One span of queued outgoing bytes. Small frames coalesce into reused
/// `Chunk` buffers; shared payloads ride as `Arc` slices so the reply
/// path never copies them.
enum OutSeg {
    Chunk(Vec<u8>),
    Shared(Arc<str>),
}

impl OutSeg {
    fn as_bytes(&self) -> &[u8] {
        match self {
            OutSeg::Chunk(v) => v,
            OutSeg::Shared(s) => s.as_bytes(),
        }
    }
}

/// The per-connection write path: a segment queue flushed with vectored
/// writes. Consecutive small frames append into one `Chunk` (whose
/// backing `Vec` is recycled after a full flush instead of reallocated
/// per frame), while spliced payloads are chained in by reference.
struct OutQueue {
    segs: VecDeque<OutSeg>,
    /// Bytes of the front segment already written to the socket.
    front_written: usize,
    /// A drained chunk kept for reuse.
    spare: Option<Vec<u8>>,
}

impl OutQueue {
    fn new() -> Self {
        OutQueue {
            segs: VecDeque::new(),
            front_written: 0,
            spare: None,
        }
    }

    fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    fn push_bytes(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        // Appending to the tail chunk is safe even when it is also the
        // partially-written front: `front_written` indexes from the
        // start and writes only consume, never reorder.
        if let Some(OutSeg::Chunk(chunk)) = self.segs.back_mut() {
            chunk.extend_from_slice(bytes);
            return;
        }
        let mut chunk = self.spare.take().unwrap_or_default();
        chunk.extend_from_slice(bytes);
        self.segs.push_back(OutSeg::Chunk(chunk));
    }

    fn push_shared(&mut self, payload: Arc<str>) {
        if !payload.is_empty() {
            self.segs.push_back(OutSeg::Shared(payload));
        }
    }

    /// Consumes `n` written bytes off the front of the queue.
    fn advance(&mut self, mut n: usize) {
        while n > 0 {
            let Some(front) = self.segs.front() else {
                break;
            };
            let remaining = front.as_bytes().len() - self.front_written;
            if n >= remaining {
                n -= remaining;
                self.front_written = 0;
                if let Some(OutSeg::Chunk(chunk)) = self.segs.pop_front() {
                    self.recycle(chunk);
                }
            } else {
                self.front_written += n;
                n = 0;
            }
        }
    }

    fn recycle(&mut self, mut chunk: Vec<u8>) {
        if chunk.capacity() == 0 || chunk.capacity() > SPARE_CHUNK_CAP {
            return;
        }
        chunk.clear();
        let better = match &self.spare {
            Some(spare) => chunk.capacity() > spare.capacity(),
            None => true,
        };
        if better {
            self.spare = Some(chunk);
        }
    }

    /// Writes as much as the socket accepts, gathering up to [`MAX_IOV`]
    /// segments per syscall. Returns `(progress, dead)`.
    fn flush(&mut self, stream: &mut TcpStream) -> (bool, bool) {
        let mut progress = false;
        loop {
            if self.segs.is_empty() {
                return (progress, false);
            }
            let mut iov: [IoSlice<'_>; MAX_IOV] = [IoSlice::new(&[]); MAX_IOV];
            let mut n_iov = 0;
            for (i, seg) in self.segs.iter().enumerate().take(MAX_IOV) {
                let bytes = seg.as_bytes();
                iov[n_iov] = IoSlice::new(if i == 0 {
                    &bytes[self.front_written..]
                } else {
                    bytes
                });
                n_iov += 1;
            }
            match stream.write_vectored(&iov[..n_iov]) {
                Ok(0) => return (true, true),
                Ok(n) => {
                    self.advance(n);
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return (progress, false),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return (true, true),
            }
        }
    }
}

struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed into lines. Consumed lines advance
    /// `rdstart` instead of draining the buffer — the per-line memmove
    /// and reallocation are reclaimed in one batch by `reclaim_rdbuf`.
    rdbuf: Vec<u8>,
    /// Offset of the first unconsumed byte in `rdbuf`.
    rdstart: usize,
    /// Offset into `rdbuf` already scanned for a newline (absolute,
    /// `>= rdstart`).
    scanned: usize,
    /// The vectored write path: encoded replies not yet on the socket.
    out: OutQueue,
    /// Replies not yet moved into `out`, strictly in request order.
    replies: VecDeque<Slot>,
    /// Peer half-closed its write side: serve what is buffered, flush,
    /// then drop.
    eof: bool,
    /// Close once every queued reply is flushed.
    close_after_flush: bool,
    /// Socket error or protocol abuse: drop now.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            rdbuf: Vec::new(),
            rdstart: 0,
            scanned: 0,
            out: OutQueue::new(),
            replies: VecDeque::new(),
            eof: false,
            close_after_flush: false,
            dead: false,
        }
    }

    fn drained(&self) -> bool {
        self.replies.is_empty() && self.out.is_empty()
    }
}

struct Flags {
    /// Stop accepting connections and stop reading new frames.
    stop: AtomicBool,
    /// Resolve leftovers, flush, exit.
    finish: AtomicBool,
    /// A handler returned [`Action::ReplyShutdown`].
    shutdown_seen: AtomicBool,
    /// Connections accepted over the reactor's lifetime.
    accepted: AtomicU64,
}

/// The running event loop. Owns the listener and every connection;
/// dropped (or [`Reactor::stop`]ped) it resolves outstanding replies,
/// flushes and exits.
pub struct Reactor {
    flags: Arc<Flags>,
    addr: SocketAddr,
    handle: Option<JoinHandle<()>>,
}

impl Reactor {
    /// Starts the event thread over a bound listener.
    pub fn spawn<H: FrameHandler>(
        listener: TcpListener,
        handler: Arc<H>,
    ) -> std::io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let flags = Arc::new(Flags {
            stop: AtomicBool::new(false),
            finish: AtomicBool::new(false),
            shutdown_seen: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
        });
        let loop_flags = Arc::clone(&flags);
        let handle = std::thread::Builder::new()
            .name("serve-reactor".into())
            .spawn(move || event_loop(listener, handler, &loop_flags))?;
        Ok(Reactor {
            flags,
            addr,
            handle: Some(handle),
        })
    }

    /// The listener's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once a connection sent a shutdown-requesting frame.
    pub fn shutdown_requested(&self) -> bool {
        self.flags.shutdown_seen.load(Ordering::SeqCst)
    }

    /// Connections accepted so far.
    pub fn accepted(&self) -> u64 {
        self.flags.accepted.load(Ordering::SeqCst)
    }

    /// Stops accepting connections and reading new frames. Already
    /// queued replies keep flushing. Idempotent.
    pub fn pause_intake(&self) {
        self.flags.stop.store(true, Ordering::SeqCst);
    }

    /// Ends the loop: intake stops, every pending reply is given one
    /// last poll (the handler's drain fallback answers for any still
    /// not ready), buffers are flushed (bounded by an internal cap) and
    /// the thread exits. Blocks until it has.
    pub fn stop(mut self) {
        self.flags.stop.store(true, Ordering::SeqCst);
        self.flags.finish.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.flags.stop.store(true, Ordering::SeqCst);
        self.flags.finish.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn event_loop<H: FrameHandler>(listener: TcpListener, handler: Arc<H>, flags: &Flags) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut drain_started: Option<Instant> = None;
    loop {
        let finishing = flags.finish.load(Ordering::SeqCst);
        if finishing && drain_started.is_none() {
            drain_started = Some(Instant::now());
            for conn in &mut conns {
                resolve_for_drain(conn, handler.as_ref());
            }
        }
        let mut progress = false;

        if !flags.stop.load(Ordering::SeqCst) {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        flags.accepted.fetch_add(1, Ordering::SeqCst);
                        conns.push(Conn::new(stream));
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break, // transient (EMFILE, aborted handshake)
                }
            }
        }

        let reading_allowed = !flags.stop.load(Ordering::SeqCst);
        for conn in &mut conns {
            if conn.dead {
                continue;
            }
            if reading_allowed && !conn.close_after_flush {
                progress |= read_and_dispatch(conn, handler.as_ref(), flags);
            }
            progress |= pump_replies(conn);
            progress |= flush(conn);
        }
        // A connection is kept unless it died, or finished a requested
        // close, or hit EOF with nothing left to answer or parse.
        conns.retain(|c| {
            let closed = c.close_after_flush && c.drained();
            let exhausted = c.eof && c.drained() && c.scanned >= c.rdbuf.len();
            !(c.dead || closed || exhausted)
        });

        if finishing {
            let done = conns.iter().all(|c| c.drained());
            let capped = drain_started
                .map(|t| t.elapsed() > DRAIN_CAP)
                .unwrap_or(true);
            if done || capped {
                return;
            }
        }
        if !progress {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

/// Nonblocking read + line dispatch. Returns `true` on any progress.
fn read_and_dispatch<H: FrameHandler>(conn: &mut Conn, handler: &H, flags: &Flags) -> bool {
    if conn.replies.len() >= MAX_PIPELINE {
        return false; // backpressure: let the client's TCP window fill
    }
    let mut buf = [0u8; 16 * 1024];
    let mut progress = false;
    while !conn.eof {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.eof = true;
                progress = true;
                break;
            }
            Ok(n) => {
                conn.rdbuf.extend_from_slice(&buf[..n]);
                progress = true;
                if conn.rdbuf.len() - conn.rdstart > MAX_LINE_BYTES {
                    conn.dead = true;
                    return true;
                }
                if conn.replies.len() >= MAX_PIPELINE {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return true;
            }
        }
    }
    // Slice out complete lines in place — each consumed line advances
    // `rdstart`; the buffer itself is reclaimed once, after the loop.
    while let Some(nl) = find_newline(conn) {
        let start = conn.rdstart;
        conn.rdstart = nl + 1;
        conn.scanned = nl + 1;
        let line = String::from_utf8_lossy(&conn.rdbuf[start..nl]);
        if line.trim().is_empty() {
            continue;
        }
        progress = true;
        let action = handler.on_line(&line);
        let reply = match action {
            Action::Reply(r) => r,
            Action::ReplyClose(r) => {
                conn.close_after_flush = true;
                r
            }
            Action::ReplyShutdown(r) => {
                flags.shutdown_seen.store(true, Ordering::SeqCst);
                r
            }
        };
        conn.replies.push_back(match reply {
            Reply::Now(frame) => Slot::Ready(frame),
            Reply::Spliced(frame) => Slot::Spliced(frame),
            Reply::Pending(p) => Slot::Pending(p),
        });
        if conn.close_after_flush {
            break; // nothing after a fatal frame is served
        }
    }
    reclaim_rdbuf(conn);
    progress
}

fn find_newline(conn: &mut Conn) -> Option<usize> {
    let start = conn.scanned.max(conn.rdstart);
    match conn.rdbuf[start..].iter().position(|&b| b == b'\n') {
        Some(off) => Some(start + off),
        None => {
            conn.scanned = conn.rdbuf.len();
            None
        }
    }
}

/// Reclaims the consumed prefix of the read buffer: cleared outright
/// when fully consumed (capacity retained for the next read batch),
/// compacted with one `copy_within` once the dead prefix crosses
/// [`RD_COMPACT_AT`], left alone otherwise — a small partial tail is
/// cheaper to carry than to move every pass.
fn reclaim_rdbuf(conn: &mut Conn) {
    if conn.rdstart == 0 {
        return;
    }
    if conn.rdstart >= conn.rdbuf.len() {
        conn.rdbuf.clear();
    } else if conn.rdstart >= RD_COMPACT_AT {
        let len = conn.rdbuf.len();
        conn.rdbuf.copy_within(conn.rdstart..len, 0);
        conn.rdbuf.truncate(len - conn.rdstart);
    } else {
        return;
    }
    conn.scanned -= conn.rdstart;
    conn.rdstart = 0;
}

/// Moves ready replies (in order) from the FIFO into the write queue.
/// A pending head blocks everything behind it — that is the ordering
/// guarantee. Spliced frames enqueue their payload by reference.
fn pump_replies(conn: &mut Conn) -> bool {
    let mut progress = false;
    while let Some(head) = conn.replies.front_mut() {
        if let Slot::Pending(p) = head {
            match p.poll() {
                Some(frame) => *head = Slot::Ready(frame),
                None => break,
            }
        }
        match conn.replies.pop_front().expect("head exists") {
            Slot::Ready(frame) => conn.out.push_bytes(frame.as_bytes()),
            Slot::Spliced(frame) => {
                conn.out.push_bytes(frame.prefix.as_bytes());
                conn.out.push_shared(frame.payload);
                conn.out.push_bytes(frame.suffix.as_bytes());
            }
            Slot::Pending(_) => unreachable!("resolved above"),
        }
        progress = true;
    }
    progress
}

fn flush(conn: &mut Conn) -> bool {
    let (progress, dead) = conn.out.flush(&mut conn.stream);
    if dead {
        conn.dead = true;
    }
    progress
}

/// Final-drain policy: each pending reply gets one last poll; those
/// still unresolved answer with the handler's fallback frame (the
/// worker that would have fulfilled them is gone or going).
fn resolve_for_drain<H: FrameHandler>(conn: &mut Conn, handler: &H) {
    for slot in conn.replies.iter_mut() {
        if let Slot::Pending(p) = slot {
            let frame = p.poll().unwrap_or_else(|| handler.drain_fallback());
            *slot = Slot::Ready(frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::sync::Mutex;

    /// Echoes `ok:<line>`; `slow:<n>` answers after `n` polls; `key:<x>`
    /// and `big` answer with spliced frames; `gated:<x>` answers once
    /// the shared gate opens; `close` closes; `stop` requests shutdown.
    struct EchoHandler {
        /// Every line that reached `on_line`, in order.
        seen: Mutex<Vec<String>>,
        /// While `false`, `gated:` replies stay pending.
        gate: Arc<AtomicBool>,
    }

    impl FrameHandler for EchoHandler {
        fn on_line(&self, line: &str) -> Action {
            let line = line.trim().to_string();
            self.seen.lock().unwrap().push(line.clone());
            if line == "close" {
                return Action::ReplyClose(Reply::Now("bye\n".into()));
            }
            if line == "stop" {
                return Action::ReplyShutdown(Reply::Now("stopping\n".into()));
            }
            if let Some(n) = line.strip_prefix("slow:") {
                let mut left: u32 = n.parse().unwrap();
                let tag = line.clone();
                return Action::Reply(Reply::Pending(Box::new(move || {
                    if left == 0 {
                        Some(format!("ok:{tag}\n"))
                    } else {
                        left -= 1;
                        None
                    }
                })));
            }
            if let Some(tag) = line.strip_prefix("gated:") {
                let gate = Arc::clone(&self.gate);
                let tag = tag.to_string();
                return Action::Reply(Reply::Pending(Box::new(move || {
                    gate.load(Ordering::SeqCst)
                        .then(|| format!("ok:gated:{tag}\n"))
                })));
            }
            if let Some(tag) = line.strip_prefix("key:") {
                return Action::Reply(Reply::Spliced(SplicedFrame {
                    prefix: format!("{{\"k\":\"{tag}\",\"p\":"),
                    payload: Arc::from(format!("\"payload-{tag}\"")),
                    suffix: "}\n",
                }));
            }
            if line == "big" {
                return Action::Reply(Reply::Spliced(SplicedFrame {
                    prefix: "big:".into(),
                    payload: Arc::from("x".repeat(4 * 1024 * 1024)),
                    suffix: ":end\n",
                }));
            }
            Action::Reply(Reply::Now(format!("ok:{line}\n")))
        }

        fn drain_fallback(&self) -> String {
            "drained\n".into()
        }
    }

    fn echo_reactor() -> (Reactor, String, Arc<EchoHandler>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handler = Arc::new(EchoHandler {
            seen: Mutex::new(Vec::new()),
            gate: Arc::new(AtomicBool::new(false)),
        });
        let reactor = Reactor::spawn(listener, Arc::clone(&handler)).unwrap();
        let addr = reactor.addr().to_string();
        (reactor, addr, handler)
    }

    #[test]
    fn round_trips_one_frame() {
        let (reactor, addr, _) = echo_reactor();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream);
        reader.get_mut().write_all(b"hello\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "ok:hello\n");
        reactor.stop();
    }

    #[test]
    fn pipelined_frames_answer_in_request_order_despite_slow_heads() {
        let (reactor, addr, _) = echo_reactor();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream);
        // The slow head must NOT be overtaken by the fast followers.
        reader
            .get_mut()
            .write_all(b"slow:40\nfast1\nfast2\nslow:2\nfast3\n")
            .unwrap();
        let mut lines = Vec::new();
        for _ in 0..5 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line.trim().to_string());
        }
        assert_eq!(
            lines,
            vec![
                "ok:slow:40",
                "ok:fast1",
                "ok:fast2",
                "ok:slow:2",
                "ok:fast3"
            ]
        );
        reactor.stop();
    }

    #[test]
    fn many_connections_multiplex_on_one_thread() {
        let (reactor, addr, _) = echo_reactor();
        let mut readers: Vec<BufReader<TcpStream>> = (0..32)
            .map(|_| BufReader::new(TcpStream::connect(&addr).unwrap()))
            .collect();
        for (i, r) in readers.iter_mut().enumerate() {
            r.get_mut()
                .write_all(format!("conn{i}\n").as_bytes())
                .unwrap();
        }
        for (i, r) in readers.iter_mut().enumerate().rev() {
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            assert_eq!(line, format!("ok:conn{i}\n"));
        }
        reactor.stop();
    }

    #[test]
    fn reply_close_flushes_then_drops() {
        let (reactor, addr, _) = echo_reactor();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream);
        reader.get_mut().write_all(b"close\nafter\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "bye\n");
        // The connection is closed; "after" is never served.
        let mut rest = String::new();
        reader.read_line(&mut rest).unwrap();
        assert_eq!(rest, "", "EOF after the fatal frame");
        reactor.stop();
    }

    #[test]
    fn shutdown_action_raises_the_flag_and_still_delivers_the_reply() {
        let (reactor, addr, _) = echo_reactor();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream);
        reader.get_mut().write_all(b"stop\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "stopping\n");
        assert!(reactor.shutdown_requested());
        reactor.stop();
    }

    #[test]
    fn finish_resolves_unready_pendings_with_the_fallback() {
        let (reactor, addr, _) = echo_reactor();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream);
        // A reply that would take ~forever (1e9 polls) to resolve.
        reader.get_mut().write_all(b"slow:1000000000\n").unwrap();
        std::thread::sleep(Duration::from_millis(30));
        reactor.stop(); // must not hang: fallback answers
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "drained\n");
    }

    #[test]
    fn half_close_still_gets_all_responses() {
        let (reactor, addr, _) = echo_reactor();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream);
        reader.get_mut().write_all(b"a\nslow:5\nb\n").unwrap();
        reader
            .get_mut()
            .shutdown(std::net::Shutdown::Write)
            .unwrap();
        let mut lines = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line.trim().to_string());
        }
        assert_eq!(lines, vec!["ok:a", "ok:slow:5", "ok:b"]);
        reactor.stop();
    }

    #[test]
    fn spliced_frames_survive_partial_writes_to_a_slow_reader() {
        let (reactor, addr, _) = echo_reactor();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream);
        reader.get_mut().write_all(b"before\nbig\nafter\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "ok:before\n");
        // The 4 MB spliced frame dwarfs the loopback send buffer, so
        // the envelope+payload+suffix splice is forced through many
        // partial vectored writes while we drain at BufReader pace.
        std::thread::sleep(Duration::from_millis(20));
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, format!("big:{}:end\n", "x".repeat(4 * 1024 * 1024)));
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "ok:after\n");
        reactor.stop();
    }

    #[test]
    fn backpressure_with_interleaved_key_and_full_frames_keeps_order() {
        let (reactor, addr, handler) = echo_reactor();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream);
        // A gated head plus enough followers to cross MAX_PIPELINE, key
        // and full frames interleaved.
        let total = MAX_PIPELINE + 200;
        let mut batch = String::from("gated:head\n");
        for i in 1..total {
            if i % 3 == 0 {
                batch.push_str(&format!("key:{i}\n"));
            } else {
                batch.push_str(&format!("full{i}\n"));
            }
        }
        let mut wr = reader.get_ref().try_clone().unwrap();
        let writer = std::thread::spawn(move || {
            wr.write_all(batch.as_bytes()).unwrap();
        });
        std::thread::sleep(Duration::from_millis(50));
        handler.gate.store(true, Ordering::SeqCst);
        let mut lines = Vec::new();
        for _ in 0..total {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line);
        }
        writer.join().unwrap();
        assert_eq!(lines[0], "ok:gated:head\n");
        for (i, line) in lines.iter().enumerate().skip(1) {
            let expect = if i % 3 == 0 {
                format!("{{\"k\":\"{i}\",\"p\":\"payload-{i}\"}}\n")
            } else {
                format!("ok:full{i}\n")
            };
            assert_eq!(*line, expect, "frame {i} out of order");
        }
        reactor.stop();
    }

    #[test]
    fn connection_severed_mid_key_frame_never_reaches_the_handler() {
        let (reactor, addr, handler) = echo_reactor();
        {
            let stream = TcpStream::connect(&addr).unwrap();
            let mut reader = BufReader::new(stream);
            reader
                .get_mut()
                .write_all(b"whole\n{\"Key\":{\"key\":\"0123456789abcdef\"")
                .unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line, "ok:whole\n");
        } // dropped: the key frame is severed mid-bytes, no newline
        std::thread::sleep(Duration::from_millis(50));
        // A fresh connection is served as if nothing happened...
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream);
        reader.get_mut().write_all(b"next\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "ok:next\n");
        // ...and the half-frame never reached the handler.
        let seen = handler.seen.lock().unwrap();
        assert_eq!(*seen, vec!["whole".to_string(), "next".to_string()]);
        reactor.stop();
    }
}
