//! Compacted cache snapshots: one checksummed JSON document.
//!
//! A snapshot is the periodic compaction target of the journal
//! ([`crate::journal`]): the full live cache contents rendered as a
//! single canonical-JSON document with an FNV-1a 64 checksum over the
//! entry list. It is always written through [`Storage::replace`]
//! (temp-file + rename), so a crash leaves either the previous snapshot
//! or the new one — never a torn file. Corruption (a flipped byte, a
//! hand-edited file) is still detected by the checksum, and recovery
//! then simply falls back to the journal.
//!
//! [`Storage::replace`]: crate::storage::Storage::replace

use crate::codec::{canonical_json, fnv1a64};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

#[derive(Debug, Serialize, Deserialize)]
struct Entry {
    key: String,
    payload: String,
}

#[derive(Debug, Serialize, Deserialize)]
struct File {
    crc: String,
    entries: Vec<Entry>,
}

/// Renders entries as a checksummed snapshot document. Entries are
/// sorted by key, so the same cache contents always produce the same
/// bytes.
pub fn encode(entries: &[(u64, Arc<str>)]) -> String {
    let mut rows: Vec<Entry> = entries
        .iter()
        .map(|(k, p)| Entry {
            key: format!("{k:016x}"),
            payload: p.to_string(),
        })
        .collect();
    rows.sort_by(|a, b| a.key.cmp(&b.key));
    let body = canonical_json(&rows);
    let file = File {
        crc: format!("{:016x}", fnv1a64(body.as_bytes())),
        entries: rows,
    };
    canonical_json(&file)
}

/// Parses and verifies a snapshot document.
pub fn decode(bytes: &[u8]) -> Result<Vec<(u64, String)>, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("not utf-8: {e}"))?;
    let file: File = serde_json::from_str(text).map_err(|e| format!("malformed: {e}"))?;
    let crc = u64::from_str_radix(&file.crc, 16).map_err(|e| format!("bad crc field: {e}"))?;
    let body = canonical_json(&file.entries);
    if crc != fnv1a64(body.as_bytes()) {
        return Err("checksum mismatch".to_string());
    }
    file.entries
        .into_iter()
        .map(|e| {
            u64::from_str_radix(&e.key, 16)
                .map(|k| (k, e.payload))
                .map_err(|err| format!("bad key {:?}: {err}", e.key))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries() -> Vec<(u64, Arc<str>)> {
        vec![
            (2, Arc::from(r#"{"slots":2}"#)),
            (1, Arc::from(r#"{"slots":1}"#)),
        ]
    }

    #[test]
    fn encode_decode_round_trips_sorted() {
        let doc = encode(&entries());
        let back = decode(doc.as_bytes()).unwrap();
        assert_eq!(
            back,
            vec![
                (1, r#"{"slots":1}"#.to_string()),
                (2, r#"{"slots":2}"#.to_string()),
            ]
        );
    }

    #[test]
    fn encoding_is_deterministic_under_entry_order() {
        let mut reversed = entries();
        reversed.reverse();
        assert_eq!(encode(&entries()), encode(&reversed));
    }

    #[test]
    fn flipped_byte_fails_the_checksum() {
        let mut doc = encode(&entries()).into_bytes();
        let at = doc.len() - 10; // inside the last payload
        doc[at] ^= 0x01;
        let err = decode(&doc).unwrap_err();
        assert!(
            err.contains("checksum") || err.contains("malformed"),
            "{err}"
        );
    }

    #[test]
    fn garbage_is_a_structured_error() {
        assert!(decode(b"not json").is_err());
        assert!(decode(&[0xff, 0xfe]).is_err());
        let empty = encode(&[]);
        assert_eq!(decode(empty.as_bytes()).unwrap(), vec![]);
    }
}
