//! Cache replication and client-side failover.
//!
//! **Replication** ([`Replicator`]) is push-only gossip: every payload a
//! daemon publishes to its cache is offered to one bounded queue per
//! configured peer, and a per-peer thread delivers the entries over the
//! ordinary JSON-lines transport as [`Request::Gossip`] frames
//! (reconnecting with bounded backoff). Peers apply entries
//! idempotently and never re-gossip them, so there are no flooding
//! loops; with every daemon configured to push to every other, the
//! fleet's caches converge. Replication is strictly best-effort: a
//! partitioned or dead peer costs dropped-entry counters, never request
//! latency — the next cache miss on that peer simply re-solves, and
//! content addressing guarantees it re-derives the identical bytes.
//!
//! **Failover** ([`FailoverClient`]) is the client half of the story: it
//! walks a peer list, retrying one idempotent request on connection
//! failure, timeout, severed response, or a `503` from a draining
//! server, with bounded attempts and exponential backoff. Every attempt
//! carries the same `request_id`, so servers can count retries as
//! dedups rather than fresh demand.
//!
//! [`Request::Gossip`]: crate::protocol::Request::Gossip

use crate::codec::JobSpec;
use crate::protocol::{GossipEntry, CODE_SHUTTING_DOWN};
use crate::queue::WorkQueue;
use crate::server::{ClientError, TcpClient};
use crate::service::ScheduleReply;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-peer queue capacity. Overflow drops the oldest-offered entries
/// first in spirit (we drop the *new* entry and count it — the cache is
/// the source of truth, so drops are always recoverable by a re-solve).
const PEER_QUEUE_CAP: usize = 1024;
/// Delivery attempts per entry batch before it is dropped.
const DELIVERY_ATTEMPTS: u32 = 3;
/// Base backoff between delivery attempts (doubles per attempt).
const DELIVERY_BACKOFF: Duration = Duration::from_millis(20);

struct Peer {
    queue: Arc<WorkQueue<GossipEntry>>,
    handle: JoinHandle<()>,
}

/// Push-only gossip fan-out to a fixed peer list.
pub struct Replicator {
    peers: Vec<Peer>,
    offered: Arc<AtomicU64>,
    dropped: Arc<AtomicU64>,
}

impl Replicator {
    /// Starts one delivery thread per peer address.
    pub fn start(addrs: &[String]) -> Replicator {
        let offered = Arc::new(AtomicU64::new(0));
        let dropped = Arc::new(AtomicU64::new(0));
        let peers = addrs
            .iter()
            .map(|addr| {
                let queue = Arc::new(WorkQueue::new(PEER_QUEUE_CAP));
                let thread_queue = Arc::clone(&queue);
                let thread_dropped = Arc::clone(&dropped);
                let addr = addr.clone();
                let handle = std::thread::Builder::new()
                    .name("serve-gossip".into())
                    .spawn(move || peer_loop(&addr, &thread_queue, &thread_dropped))
                    .expect("spawn gossip thread");
                Peer { queue, handle }
            })
            .collect();
        Replicator {
            peers,
            offered,
            dropped,
        }
    }

    /// `true` when no peers are configured (gossip disabled).
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Offers one cache entry to every peer queue. Never blocks: a full
    /// queue (peer down or slow) drops the entry for that peer and
    /// counts it.
    pub fn offer(&self, key_hex: &str, payload: &str) {
        for peer in &self.peers {
            let entry = GossipEntry {
                key: key_hex.to_string(),
                payload: payload.to_string(),
            };
            match peer.queue.try_push(entry) {
                Ok(()) => {
                    self.offered.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Entries handed to peer queues so far.
    pub fn offered(&self) -> u64 {
        self.offered.load(Ordering::Relaxed)
    }

    /// Entries dropped: queue overflow plus delivery give-ups.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Closes the peer queues (pending entries are still delivered) and
    /// joins the delivery threads.
    pub fn shutdown(self) {
        for peer in &self.peers {
            peer.queue.close();
        }
        for peer in self.peers {
            let _ = peer.handle.join();
        }
    }
}

/// Delivers queued entries to one peer, reconnecting as needed. Entries
/// whose delivery keeps failing are dropped (and counted) so a dead peer
/// never wedges the queue.
fn peer_loop(addr: &str, queue: &WorkQueue<GossipEntry>, dropped: &AtomicU64) {
    let mut conn: Option<TcpClient> = None;
    while let Some(entry) = queue.pop() {
        let mut delivered = false;
        for attempt in 0..DELIVERY_ATTEMPTS {
            if attempt > 0 {
                std::thread::sleep(DELIVERY_BACKOFF * (1 << (attempt - 1)));
            }
            if conn.is_none() {
                conn = TcpClient::connect(addr).ok();
            }
            let Some(client) = conn.as_mut() else {
                continue;
            };
            match client.gossip(std::slice::from_ref(&entry)) {
                Ok(_applied) => {
                    delivered = true;
                    break;
                }
                Err(_) => {
                    conn = None; // reconnect on the next attempt
                }
            }
        }
        if !delivered {
            dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Failover policy knobs (attempts span the whole request, not one
/// peer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverPolicy {
    /// Total attempts across all peers before giving up.
    pub attempts: u32,
    /// Base backoff between attempts (doubles per retry, capped at
    /// `max_backoff`).
    pub backoff: Duration,
    /// Upper bound for the exponential backoff.
    pub max_backoff: Duration,
}

impl Default for FailoverPolicy {
    fn default() -> Self {
        FailoverPolicy {
            attempts: 4,
            backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
        }
    }
}

/// A scheduling client that retries idempotent requests across a peer
/// list. Connection failure, timeout, a severed response and `503`
/// rotate to the next peer; any other structured error is final (the
/// next peer would compute the same answer — content addressing makes
/// the request a pure function).
pub struct FailoverClient {
    peers: Vec<String>,
    policy: FailoverPolicy,
    client_id: String,
    seq: AtomicU64,
}

/// Process-wide source of distinct client ids (no wall clock needed).
static CLIENT_COUNTER: AtomicU64 = AtomicU64::new(0);

impl FailoverClient {
    /// The [`crate::ClientBuilder`]'s constructor: peers plus policy in
    /// one step. Construction goes through the builder
    /// (`ClientBuilder::new().addrs(peers).policy(policy).build()`) —
    /// the old direct `new`/`with_policy` constructors are gone.
    pub(crate) fn from_parts(peers: Vec<String>, policy: FailoverPolicy) -> FailoverClient {
        assert!(!peers.is_empty(), "failover needs at least one peer");
        FailoverClient {
            peers,
            policy,
            client_id: format!(
                "c{}-{}",
                std::process::id(),
                CLIENT_COUNTER.fetch_add(1, Ordering::Relaxed)
            ),
            seq: AtomicU64::new(0),
        }
    }

    /// The peer list, in preference order.
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// Schedules one job with failover. Each underlying attempt carries
    /// the same request id so servers can dedup retries.
    pub fn schedule(
        &self,
        job: &JobSpec,
        deadline_ms: Option<u64>,
    ) -> Result<ScheduleReply, ClientError> {
        self.schedule_as(job, deadline_ms, None)
    }

    /// [`schedule`](Self::schedule) with a caller-chosen request id
    /// (generated per call when `None`) — the [`crate::ServeClient`]
    /// entry point.
    pub(crate) fn schedule_as(
        &self,
        job: &JobSpec,
        deadline_ms: Option<u64>,
        request_id: Option<&str>,
    ) -> Result<ScheduleReply, ClientError> {
        let request_id = request_id.map(String::from).unwrap_or_else(|| {
            format!(
                "{}-{}",
                self.client_id,
                self.seq.fetch_add(1, Ordering::Relaxed)
            )
        });
        let mut last: Option<ClientError> = None;
        for attempt in 0..self.policy.attempts {
            if attempt > 0 {
                let exp = self
                    .policy
                    .backoff
                    .saturating_mul(1u32 << (attempt - 1).min(16));
                std::thread::sleep(exp.min(self.policy.max_backoff));
            }
            let addr = &self.peers[attempt as usize % self.peers.len()];
            let result = TcpClient::connect(addr)
                .map_err(ClientError::from)
                .and_then(|mut c| c.schedule_with_id(job, deadline_ms, Some(&request_id)));
            match result {
                Ok(reply) => return Ok(reply),
                Err(e) if retryable(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ClientError::Protocol("no attempt was made".into())))
    }

    /// The delta twin of [`schedule_as`](Self::schedule_as): same retry
    /// loop, same dedup id per attempt. A structured base-miss is
    /// **final**, not retried — a peer that never saw the base answers
    /// deterministically, and the caller's documented recovery is to
    /// re-send the full scenario.
    pub(crate) fn schedule_delta_as(
        &self,
        base: &str,
        ops: &[rfid_delta::ScenarioDelta],
        deadline_ms: Option<u64>,
        request_id: Option<&str>,
    ) -> Result<ScheduleReply, ClientError> {
        let request_id = request_id.map(String::from).unwrap_or_else(|| {
            format!(
                "{}-{}",
                self.client_id,
                self.seq.fetch_add(1, Ordering::Relaxed)
            )
        });
        let mut last: Option<ClientError> = None;
        for attempt in 0..self.policy.attempts {
            if attempt > 0 {
                let exp = self
                    .policy
                    .backoff
                    .saturating_mul(1u32 << (attempt - 1).min(16));
                std::thread::sleep(exp.min(self.policy.max_backoff));
            }
            let addr = &self.peers[attempt as usize % self.peers.len()];
            let result = TcpClient::connect(addr)
                .map_err(ClientError::from)
                .and_then(|mut c| c.schedule_delta(base, ops, deadline_ms, Some(&request_id)));
            match result {
                Ok(reply) => return Ok(reply),
                Err(e) if retryable(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or(ClientError::Protocol("no attempt was made".into())))
    }
}

/// Errors worth trying the next peer for: transport failures and a
/// draining server. Structured application errors (bad request, unknown
/// algorithm, unsolvable) are deterministic — every peer would answer
/// the same.
fn retryable(err: &ClientError) -> bool {
    match err {
        ClientError::Io(_) | ClientError::Disconnected(_) => true,
        ClientError::Remote(e) => e.code == CODE_SHUTTING_DOWN,
        ClientError::Protocol(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Workload;
    use crate::server::Server;
    use crate::service::ServeConfig;
    use rfid_model::{RadiusModel, Scenario, ScenarioKind};

    fn small_job(seed: u64) -> JobSpec {
        JobSpec::new(Workload::Generated {
            scenario: Scenario {
                kind: ScenarioKind::UniformRandom,
                n_readers: 8,
                n_tags: 40,
                region_side: 40.0,
                radius_model: RadiusModel::paper_default(),
            },
            seed,
        })
    }

    fn quick() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_cap: 16,
            cache_cap: 32,
            ..ServeConfig::default()
        }
    }

    fn fast_policy() -> FailoverPolicy {
        FailoverPolicy {
            attempts: 4,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(5),
        }
    }

    #[test]
    fn failover_skips_a_dead_peer() {
        let server = Server::start("127.0.0.1:0", quick()).unwrap();
        // A bound-then-dropped listener: connections are refused.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let client =
            FailoverClient::from_parts(vec![dead, server.addr().to_string()], fast_policy());
        let reply = client.schedule(&small_job(1), None).unwrap();
        assert!(!reply.cached);
        server.shutdown();
    }

    #[test]
    fn failover_gives_up_after_bounded_attempts() {
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let client = FailoverClient::from_parts(
            vec![dead],
            FailoverPolicy {
                attempts: 2,
                backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
            },
        );
        let err = client.schedule(&small_job(1), None).unwrap_err();
        assert!(matches!(err, ClientError::Io(_)), "{err}");
    }

    #[test]
    fn deterministic_errors_do_not_fail_over() {
        let server = Server::start("127.0.0.1:0", quick()).unwrap();
        let client = FailoverClient::from_parts(vec![server.addr().to_string()], fast_policy());
        let mut job = small_job(1);
        job.algorithm = "quantum-annealing".into();
        let err = client.schedule(&job, None).unwrap_err();
        match err {
            ClientError::Remote(e) => {
                assert_eq!(e.code, crate::protocol::CODE_UNKNOWN_ALGORITHM)
            }
            other => panic!("expected the structured 404, got {other}"),
        }
        // One attempt only: no dedup-counted retries reached the server.
        assert_eq!(server.service().stats().deduped, 0);
        server.shutdown();
    }

    #[test]
    fn retries_of_one_request_are_deduped_server_side() {
        let server = Server::start("127.0.0.1:0", quick()).unwrap();
        let addr = server.addr().to_string();
        let job = small_job(2);
        let mut c = TcpClient::connect(&addr).unwrap();
        let a = c.schedule_with_id(&job, None, Some("client-x-0")).unwrap();
        // The same request id again — as a failover retry would send.
        let b = c.schedule_with_id(&job, None, Some("client-x-0")).unwrap();
        assert_eq!(a.payload, b.payload);
        let stats = server.service().stats();
        assert_eq!(stats.deduped, 1);
        server.shutdown();
    }

    #[test]
    fn replicator_drops_entries_for_an_unreachable_peer() {
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let repl = Replicator::start(&[dead]);
        repl.offer("00ff", r#"{"slots":1}"#);
        assert_eq!(repl.offered(), 1);
        repl.shutdown(); // drains: delivery fails after bounded retries
    }
}
