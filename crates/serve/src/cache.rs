//! Content-addressed schedule cache: sharded `RwLock` LRU with TTL.
//!
//! Keys are the codec's 64-bit content hashes; values are the canonical
//! response payloads as `Arc<str>` (hits clone a pointer, never the
//! bytes). The map is split across a fixed number of shards so readers
//! on different keys rarely contend, and recency is tracked with a
//! global atomic clock plus a per-entry atomic stamp — a cache *hit*
//! only takes the shard's **read** lock (the stamp updates through
//! `AtomicU64`), writes are confined to inserts, evictions and expiry.
//!
//! Approximation notes, deliberate and documented: eviction removes the
//! minimum-stamp entry of the *inserting shard* (classic sharded-LRU —
//! globally approximate, per-shard exact), and TTL expiry is lazy (an
//! expired entry is dropped when next touched, or when eviction prefers
//! it). Neither affects correctness: the cache stores pure functions of
//! the key.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

const SHARDS: usize = 8;

struct Entry {
    payload: Arc<str>,
    /// The payload pre-rendered as a JSON string literal (quotes and
    /// escapes included), built lazily on the first wire probe and
    /// reused by every later one — the request-by-key fast path splices
    /// these bytes straight into the reply envelope, so a hit never
    /// re-serialises the payload.
    wire: OnceLock<Arc<str>>,
    /// Last-touched tick from the global clock (atomic so hits can bump
    /// it under the shard's read lock).
    stamp: AtomicU64,
    inserted: Instant,
}

impl Entry {
    fn wire(&self) -> Arc<str> {
        Arc::clone(self.wire.get_or_init(|| {
            let rendered = serde_json::to_string(self.payload.as_ref())
                .expect("string serialisation cannot fail");
            Arc::from(rendered)
        }))
    }
}

/// Point-in-time cache counters, reported through the service's stats
/// endpoint (the same numbers are exported as `rfid-obs` counters by the
/// service layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that returned a payload.
    pub hits: u64,
    /// Lookups that found nothing (or only an expired entry).
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries dropped by TTL expiry.
    pub expired: u64,
    /// Current number of live entries.
    pub entries: u64,
    /// Configured capacity (0 = caching disabled).
    pub capacity: u64,
}

/// The sharded LRU+TTL payload cache.
pub struct ScheduleCache {
    shards: Vec<RwLock<HashMap<u64, Entry>>>,
    clock: AtomicU64,
    capacity: usize,
    ttl: Option<Duration>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    expired: AtomicU64,
}

impl ScheduleCache {
    /// A cache holding at most `capacity` entries (approximately — the
    /// bound is enforced per shard). `capacity == 0` disables caching:
    /// every get misses and every insert is a no-op. `ttl == None` keeps
    /// entries until evicted.
    pub fn new(capacity: usize, ttl: Option<Duration>) -> Self {
        ScheduleCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            clock: AtomicU64::new(0),
            capacity,
            ttl,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &RwLock<HashMap<u64, Entry>> {
        // High bits: FNV mixes them well, and the low bits already pick
        // the bucket inside the shard's HashMap.
        &self.shards[(key >> 32) as usize % SHARDS]
    }

    fn expired(&self, entry: &Entry) -> bool {
        match self.ttl {
            Some(ttl) => entry.inserted.elapsed() >= ttl,
            None => false,
        }
    }

    /// Looks up a payload, refreshing its recency on hit. An expired
    /// entry counts as a miss and is removed.
    pub fn get(&self, key: u64) -> Option<Arc<str>> {
        if self.capacity == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let shard = self.shard(key);
        {
            let map = shard.read().expect("cache shard poisoned");
            match map.get(&key) {
                Some(entry) if !self.expired(entry) => {
                    let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                    entry.stamp.store(tick, Ordering::Relaxed);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(Arc::clone(&entry.payload));
                }
                Some(_) => {} // expired: fall through to remove under write lock
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        }
        let mut map = shard.write().expect("cache shard poisoned");
        if map.get(&key).is_some_and(|e| self.expired(e)) && map.remove(&key).is_some() {
            self.expired.fetch_add(1, Ordering::Relaxed);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts (or refreshes) a payload, evicting the shard's
    /// least-recently-used entry if the shard is at capacity. Returns the
    /// number of entries evicted (0 or 1) so callers can export the
    /// counter.
    pub fn insert(&self, key: u64, payload: Arc<str>) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        let per_shard = self.capacity.div_ceil(SHARDS).max(1);
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.shard(key).write().expect("cache shard poisoned");
        let fresh = Entry {
            payload,
            wire: OnceLock::new(),
            stamp: AtomicU64::new(tick),
            inserted: Instant::now(),
        };
        if map.insert(key, fresh).is_some() {
            return 0; // refresh of an existing key never grows the shard
        }
        let mut evicted = 0;
        while map.len() > per_shard {
            // Prefer dropping an expired entry; otherwise the true
            // per-shard LRU (minimum stamp).
            let victim = map
                .iter()
                .find(|(_, e)| self.expired(e))
                .map(|(k, _)| (*k, true))
                .or_else(|| {
                    map.iter()
                        .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                        .map(|(k, _)| (*k, false))
                });
            match victim {
                Some((k, was_expired)) => {
                    map.remove(&k);
                    if was_expired {
                        self.expired.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                        evicted += 1;
                    }
                }
                None => break,
            }
        }
        evicted
    }

    /// The request-by-key probe: on a hit, returns the payload together
    /// with its pre-rendered wire form (the payload as a JSON string
    /// literal), counting the hit and refreshing recency exactly like
    /// [`ScheduleCache::get`]. A **miss is counter-quiet**: a key
    /// request that finds nothing is answered as a structured key-miss
    /// and the client retries with a full frame — counting that probe
    /// as a cache miss would double-count the one logical request and
    /// break `hits + misses + coalesced == requests`. Expired entries
    /// miss quietly too (left for `get`/`insert` to reap — the fast
    /// path never takes a write lock).
    pub fn probe_wire(&self, key: u64) -> Option<(Arc<str>, Arc<str>)> {
        if self.capacity == 0 {
            return None;
        }
        let map = self.shard(key).read().expect("cache shard poisoned");
        match map.get(&key) {
            Some(entry) if !self.expired(entry) => {
                let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                entry.stamp.store(tick, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((Arc::clone(&entry.payload), entry.wire()))
            }
            _ => None,
        }
    }

    /// `false` when the cache was built with capacity 0 (caching and the
    /// single-flight layer above it are disabled).
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// `true` when a live (non-expired) entry exists for `key`, without
    /// touching the hit/miss counters or recency. The durability and
    /// replication layers probe with this before applying journal or
    /// gossip entries, so background inserts never distort the
    /// `hits + misses + coalesced == requests` request accounting.
    pub fn contains(&self, key: u64) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let map = self.shard(key).read().expect("cache shard poisoned");
        map.get(&key).is_some_and(|e| !self.expired(e))
    }

    /// All live entries, for snapshots and peer gossip. Payloads are
    /// `Arc` clones (pointer copies); order is unspecified — consumers
    /// that need determinism sort by key.
    pub fn entries(&self) -> Vec<(u64, Arc<str>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.read().expect("cache shard poisoned");
            for (k, e) in map.iter() {
                if !self.expired(e) {
                    out.push((*k, Arc::clone(&e.payload)));
                }
            }
        }
        out
    }

    /// Current number of live entries (counts expired-but-unreaped ones).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    /// `true` when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            entries: self.len() as u64,
            capacity: self.capacity as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = ScheduleCache::new(16, None);
        assert!(cache.get(1).is_none());
        cache.insert(1, payload("one"));
        assert_eq!(cache.get(1).as_deref(), Some("one"));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let cache = ScheduleCache::new(0, None);
        assert_eq!(cache.insert(1, payload("one")), 0);
        assert!(cache.get(1).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        // Capacity 8 over 8 shards → 1 entry per shard. Two keys landing
        // in the same shard must evict the least recently used one.
        let cache = ScheduleCache::new(8, None);
        let (a, b) = (0u64, 1u64); // same shard: high 32 bits both 0
        cache.insert(a, payload("a"));
        assert!(cache.get(a).is_some());
        assert_eq!(cache.insert(b, payload("b")), 1);
        assert!(cache.get(a).is_none(), "older entry should be evicted");
        assert_eq!(cache.get(b).as_deref(), Some("b"));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn recency_is_updated_by_get() {
        let cache = ScheduleCache::new(16, None); // 2 entries per shard
        let (a, b, c) = (0u64, 1u64, 2u64); // all in shard 0
        cache.insert(a, payload("a"));
        cache.insert(b, payload("b"));
        // Touch `a` so `b` becomes the LRU victim when `c` arrives.
        assert!(cache.get(a).is_some());
        cache.insert(c, payload("c"));
        assert!(cache.get(a).is_some(), "touched entry must survive");
        assert!(cache.get(b).is_none(), "untouched entry is the victim");
        assert!(cache.get(c).is_some());
    }

    #[test]
    fn zero_ttl_expires_immediately() {
        let cache = ScheduleCache::new(16, Some(Duration::ZERO));
        cache.insert(1, payload("one"));
        assert!(cache.get(1).is_none());
        let s = cache.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.expired, 1);
        assert_eq!(s.entries, 0, "expired entry must be reaped");
    }

    #[test]
    fn long_ttl_does_not_expire() {
        let cache = ScheduleCache::new(16, Some(Duration::from_secs(3600)));
        cache.insert(1, payload("one"));
        assert_eq!(cache.get(1).as_deref(), Some("one"));
    }

    #[test]
    fn refresh_existing_key_does_not_evict() {
        let cache = ScheduleCache::new(8, None); // 1 per shard
        cache.insert(1, payload("one"));
        assert_eq!(cache.insert(1, payload("uno")), 0);
        assert_eq!(cache.get(1).as_deref(), Some("uno"));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn contains_and_entries_do_not_touch_counters() {
        let cache = ScheduleCache::new(16, None);
        cache.insert(1, payload("one"));
        assert!(cache.contains(1));
        assert!(!cache.contains(2));
        let entries = cache.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, 1);
        assert_eq!(entries[0].1.as_ref(), "one");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0), "probes must be counter-quiet");

        let disabled = ScheduleCache::new(0, None);
        disabled.insert(1, payload("one"));
        assert!(!disabled.contains(1));
        assert!(disabled.entries().is_empty());
    }

    #[test]
    fn probe_wire_hits_count_and_misses_stay_quiet() {
        let cache = ScheduleCache::new(16, None);
        cache.insert(1, payload(r#"{"slots":3,"label":"a\"b"}"#));
        // Miss: counter-quiet (the caller answers a structured key-miss
        // and the retried full frame will do the counting).
        assert!(cache.probe_wire(2).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
        // Hit: counted like a normal get, wire form is the payload as a
        // JSON string literal, rendered once and shared afterwards.
        let (p, w) = cache.probe_wire(1).unwrap();
        assert_eq!(p.as_ref(), r#"{"slots":3,"label":"a\"b"}"#);
        assert_eq!(w.as_ref(), serde_json::to_string(p.as_ref()).unwrap());
        let (_, w2) = cache.probe_wire(1).unwrap();
        assert!(Arc::ptr_eq(&w, &w2), "wire bytes are rendered once");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (2, 0));

        // Disabled cache: quiet miss.
        let disabled = ScheduleCache::new(0, None);
        assert!(disabled.probe_wire(1).is_none());
        assert_eq!(disabled.stats().misses, 0);
    }

    #[test]
    fn probe_wire_refreshes_recency() {
        let cache = ScheduleCache::new(16, None); // 2 entries per shard
        let (a, b, c) = (0u64, 1u64, 2u64); // all in shard 0
        cache.insert(a, payload("a"));
        cache.insert(b, payload("b"));
        assert!(cache.probe_wire(a).is_some());
        cache.insert(c, payload("c"));
        assert!(cache.get(a).is_some(), "probed entry must survive");
        assert!(cache.get(b).is_none(), "untouched entry is the victim");
    }

    #[test]
    fn expired_entries_probe_as_quiet_misses() {
        let cache = ScheduleCache::new(16, Some(Duration::ZERO));
        cache.insert(1, payload("one"));
        assert!(cache.probe_wire(1).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn concurrent_hits_and_inserts_are_consistent() {
        let cache = Arc::new(ScheduleCache::new(64, None));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let key = t * 1000 + i % 8;
                        cache.insert(key, Arc::from(format!("{key}")));
                        if let Some(p) = cache.get(key) {
                            assert_eq!(p.as_ref(), format!("{key}"));
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = cache.stats();
        assert!(s.hits > 0);
        assert!(s.entries <= 64);
    }
}
