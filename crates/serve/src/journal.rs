//! Append-only, checksummed journal of cache inserts + the
//! [`DurableStore`] that orchestrates journal, snapshot and compaction.
//!
//! Format: one JSON record per line —
//! `{"crc":"<16 hex>","key":"<16 hex>","payload":"<canonical outcome>"}`
//! — where `crc` is FNV-1a 64 over `key`, a separator byte and the
//! payload. The line is written with a **single** [`Storage::append`]
//! call, so a crash mid-write can only tear the *tail* of the file.
//! Recovery ([`replay`]) therefore keeps the **longest valid prefix**:
//! it stops at the first record that fails to parse or whose checksum
//! disagrees (torn tail, flipped byte, truncation) and reports how many
//! bytes it dropped. Replay is idempotent — records are keyed inserts of
//! pure functions of the key — which is what lets compaction crash
//! between "snapshot written" and "journal truncated" without harm.
//!
//! Compaction policy: after every `snapshot_every` successful appends
//! the [`DurableStore`] writes the live cache contents as a checksummed
//! snapshot ([`crate::snapshot`], atomic replace) and empties the
//! journal. Recovery loads the snapshot first, then overlays the
//! journal.

use crate::codec::fnv1a64;
use crate::snapshot;
use crate::storage::Storage;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Journal file name under the data directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";
/// Snapshot file name under the data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";

/// One journal line (serde field order is irrelevant — records are
/// parsed, not byte-compared).
#[derive(Debug, Serialize, Deserialize)]
struct Record {
    crc: String,
    key: String,
    payload: String,
}

/// Checksum binding a record's key to its payload.
fn record_crc(key_hex: &str, payload: &str) -> u64 {
    let mut bytes = Vec::with_capacity(key_hex.len() + 1 + payload.len());
    bytes.extend_from_slice(key_hex.as_bytes());
    bytes.push(b'\n');
    bytes.extend_from_slice(payload.as_bytes());
    fnv1a64(&bytes)
}

/// Renders one journal line (including the trailing newline).
pub fn encode_record(key: u64, payload: &str) -> String {
    let key_hex = format!("{key:016x}");
    let record = Record {
        crc: format!("{:016x}", record_crc(&key_hex, payload)),
        key: key_hex,
        payload: payload.to_string(),
    };
    let mut line = serde_json::to_string(&record).expect("record serialisation cannot fail");
    line.push('\n');
    line
}

/// Parses and verifies one journal line. `None` = corrupt.
fn decode_record(line: &str) -> Option<(u64, String)> {
    let record: Record = serde_json::from_str(line).ok()?;
    let crc = u64::from_str_radix(&record.crc, 16).ok()?;
    if crc != record_crc(&record.key, &record.payload) {
        return None;
    }
    let key = u64::from_str_radix(&record.key, 16).ok()?;
    Some((key, record.payload))
}

/// What [`replay`] found in a journal byte stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplayReport {
    /// Valid records, in append order (later duplicates of a key win).
    pub entries: Vec<(u64, String)>,
    /// Bytes dropped after the longest valid prefix (torn tail, flipped
    /// checksum byte, garbage).
    pub dropped_bytes: usize,
}

/// Replays journal bytes to the longest valid prefix: parsing stops at
/// the first record that is torn (no trailing newline), malformed, or
/// checksum-corrupt; everything after it is counted as dropped.
pub fn replay(bytes: &[u8]) -> ReplayReport {
    let mut report = ReplayReport::default();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(rel) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            // Torn tail: a record without its newline.
            report.dropped_bytes = bytes.len() - offset;
            return report;
        };
        let line = &bytes[offset..offset + rel];
        match std::str::from_utf8(line).ok().and_then(decode_record) {
            Some(entry) => report.entries.push(entry),
            None => {
                report.dropped_bytes = bytes.len() - offset;
                return report;
            }
        }
        offset += rel + 1;
    }
    report
}

/// Counters of the durability layer, exported through the service stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurableStats {
    /// Journal records appended successfully.
    pub appends: u64,
    /// Appends that failed (denied/torn I/O) — the entry stayed
    /// RAM-only; the service keeps serving.
    pub append_errors: u64,
    /// Snapshots written by compaction.
    pub snapshots: u64,
    /// Snapshot/compaction attempts that failed.
    pub snapshot_errors: u64,
}

/// What startup recovery found.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Recovered `(key, payload)` pairs — snapshot overlaid by journal.
    pub entries: Vec<(u64, String)>,
    /// Entries contributed by the snapshot.
    pub snapshot_entries: usize,
    /// Valid journal records replayed.
    pub journal_records: usize,
    /// Journal bytes dropped after the longest valid prefix.
    pub dropped_bytes: usize,
    /// Human-readable recovery problems (corrupt snapshot, dead disk) —
    /// recovery is best-effort, so these are reported, not thrown.
    pub errors: Vec<String>,
}

struct CompactionState {
    appends_since_snapshot: usize,
}

/// Journal + snapshot + compaction over an injectable [`Storage`].
pub struct DurableStore {
    storage: Arc<dyn Storage>,
    snapshot_every: usize,
    state: Mutex<CompactionState>,
    appends: AtomicU64,
    append_errors: AtomicU64,
    snapshots: AtomicU64,
    snapshot_errors: AtomicU64,
}

impl DurableStore {
    /// A store journaling through `storage`, snapshotting every
    /// `snapshot_every` appends (`0` = never compact).
    pub fn new(storage: Arc<dyn Storage>, snapshot_every: usize) -> DurableStore {
        DurableStore {
            storage,
            snapshot_every,
            state: Mutex::new(CompactionState {
                appends_since_snapshot: 0,
            }),
            appends: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            snapshot_errors: AtomicU64::new(0),
        }
    }

    /// Loads snapshot + journal into the recovered entry list. Tolerates
    /// a missing data dir (cold start), a torn/corrupt journal tail
    /// (longest valid prefix) and a corrupt snapshot (ignored, reported).
    pub fn recover(&self) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        match self.storage.read(SNAPSHOT_FILE) {
            Ok(bytes) => match snapshot::decode(&bytes) {
                Ok(entries) => {
                    report.snapshot_entries = entries.len();
                    report.entries = entries;
                }
                Err(e) => report.errors.push(format!("snapshot corrupt: {e}")),
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => report.errors.push(format!("snapshot read: {e}")),
        }
        match self.storage.read(JOURNAL_FILE) {
            Ok(bytes) => {
                let replayed = replay(&bytes);
                report.journal_records = replayed.entries.len();
                report.dropped_bytes = replayed.dropped_bytes;
                // Overlay: journal entries win over snapshot entries of
                // the same key (they are identical payloads anyway — the
                // payload is a pure function of the key).
                for (key, payload) in replayed.entries {
                    match report.entries.iter_mut().find(|(k, _)| *k == key) {
                        Some(slot) => slot.1 = payload,
                        None => report.entries.push((key, payload)),
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => report.errors.push(format!("journal read: {e}")),
        }
        report
    }

    /// Durably records one cache insert, then compacts if the policy
    /// says so. `live` is called only when compacting and must return
    /// the full set of entries the snapshot should hold (the live cache
    /// contents). Best-effort: failures land in the counters and the
    /// returned flag, never in the request path.
    ///
    /// Returns `true` when the append reached storage.
    pub fn persist(
        &self,
        key: u64,
        payload: &str,
        live: &dyn Fn() -> Vec<(u64, Arc<str>)>,
    ) -> bool {
        let mut state = self.state.lock().expect("durable state poisoned");
        let line = encode_record(key, payload);
        match self.storage.append(JOURNAL_FILE, line.as_bytes()) {
            Ok(()) => {
                self.appends.fetch_add(1, Ordering::Relaxed);
                state.appends_since_snapshot += 1;
            }
            Err(_) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        if self.snapshot_every > 0 && state.appends_since_snapshot >= self.snapshot_every {
            // Snapshot first, truncate second: a crash in between leaves
            // journal records that replay idempotently over the snapshot.
            let entries = live();
            let encoded = snapshot::encode(&entries);
            let compacted = self
                .storage
                .replace(SNAPSHOT_FILE, encoded.as_bytes())
                .and_then(|()| self.storage.replace(JOURNAL_FILE, b""));
            match compacted {
                Ok(()) => {
                    self.snapshots.fetch_add(1, Ordering::Relaxed);
                    state.appends_since_snapshot = 0;
                }
                Err(_) => {
                    self.snapshot_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        true
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> DurableStats {
        DurableStats {
            appends: self.appends.load(Ordering::Relaxed),
            append_errors: self.append_errors.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            snapshot_errors: self.snapshot_errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{DiskStorage, FaultyStorage, StorageFaults};
    use std::path::PathBuf;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rfid_journal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn disk(tag: &str) -> (Arc<dyn Storage>, PathBuf) {
        let root = tmp_root(tag);
        (Arc::new(DiskStorage::open(&root).unwrap()), root)
    }

    #[test]
    fn encode_decode_round_trips() {
        let line = encode_record(0xdead_beef, r#"{"slots":3}"#);
        assert!(line.ends_with('\n'));
        let report = replay(line.as_bytes());
        assert_eq!(report.dropped_bytes, 0);
        assert_eq!(
            report.entries,
            vec![(0xdead_beef, r#"{"slots":3}"#.to_string())]
        );
    }

    #[test]
    fn replay_keeps_longest_valid_prefix_on_torn_tail() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(encode_record(1, "one").as_bytes());
        bytes.extend_from_slice(encode_record(2, "two").as_bytes());
        let torn = encode_record(3, "three");
        bytes.extend_from_slice(&torn.as_bytes()[..torn.len() / 2]);
        let report = replay(&bytes);
        assert_eq!(report.entries.len(), 2);
        assert_eq!(report.dropped_bytes, torn.len() / 2);
    }

    #[test]
    fn replay_stops_at_a_flipped_checksum_byte() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(encode_record(1, "one").as_bytes());
        let mut bad = encode_record(2, "two").into_bytes();
        // Flip one payload byte: the crc no longer matches.
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        bytes.extend_from_slice(&bad);
        bytes.extend_from_slice(encode_record(3, "three").as_bytes());
        let report = replay(&bytes);
        assert_eq!(report.entries.len(), 1, "prefix before the corruption");
        assert!(report.dropped_bytes > 0);
    }

    #[test]
    fn empty_journal_recovers_to_nothing() {
        let report = replay(b"");
        assert!(report.entries.is_empty());
        assert_eq!(report.dropped_bytes, 0);
    }

    #[test]
    fn persist_then_recover_round_trips() {
        let (storage, root) = disk("roundtrip");
        let store = DurableStore::new(Arc::clone(&storage), 0);
        assert!(store.persist(7, "seven", &Vec::new));
        assert!(store.persist(8, "eight", &Vec::new));
        let report = store.recover();
        assert_eq!(
            report.entries,
            vec![(7, "seven".to_string()), (8, "eight".to_string())]
        );
        assert!(report.errors.is_empty());
        assert_eq!(store.stats().appends, 2);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn compaction_snapshots_then_empties_the_journal() {
        let (storage, root) = disk("compact");
        let store = DurableStore::new(Arc::clone(&storage), 2);
        let live = || {
            vec![
                (1u64, Arc::<str>::from("one")),
                (2u64, Arc::<str>::from("two")),
            ]
        };
        store.persist(1, "one", &live);
        store.persist(2, "two", &live);
        assert_eq!(store.stats().snapshots, 1);
        assert_eq!(
            storage.read(JOURNAL_FILE).unwrap(),
            b"",
            "journal empties after compaction"
        );
        // A third insert lands in the fresh journal; recovery overlays.
        store.persist(3, "three", &live);
        let report = store.recover();
        assert_eq!(report.snapshot_entries, 2);
        assert_eq!(report.journal_records, 1);
        let mut keys: Vec<u64> = report.entries.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2, 3]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn torn_append_is_survived_by_recovery() {
        let (inner, root) = disk("torn");
        let faulty: Arc<dyn Storage> = Arc::new(FaultyStorage::new(
            Arc::clone(&inner),
            StorageFaults::seeded(5).with_torn_append(3),
        ));
        let store = DurableStore::new(faulty, 0);
        assert!(store.persist(1, "one", &Vec::new));
        assert!(store.persist(2, "two", &Vec::new));
        assert!(!store.persist(3, "three", &Vec::new), "torn mid-write");
        assert_eq!(store.stats().append_errors, 1);
        // "Restart" over the same directory with healthy storage.
        let recovered = DurableStore::new(inner, 0).recover();
        assert_eq!(recovered.journal_records, 2);
        let keys: Vec<u64> = recovered.entries.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn dead_disk_recovery_reports_errors_instead_of_panicking() {
        let (inner, root) = disk("dead");
        let faulty: Arc<dyn Storage> = Arc::new(FaultyStorage::new(
            inner,
            StorageFaults::seeded(1).with_deny_reads(),
        ));
        let report = DurableStore::new(faulty, 0).recover();
        assert!(report.entries.is_empty());
        assert_eq!(report.errors.len(), 2, "{:?}", report.errors);
        std::fs::remove_dir_all(&root).ok();
    }
}
