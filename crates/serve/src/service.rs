//! The scheduling service: cache in front of a bounded worker pool.
//!
//! Request path (DESIGN.md §9): canonicalise ([`crate::codec`]) → look
//! up the content key in the [`ScheduleCache`] → on miss, admit into the
//! bounded [`WorkQueue`] (full → structured `429`) → a worker resolves
//! the algorithm through [`SchedulerRegistry`], runs
//! [`covering_schedule_with`] with the server's [`Recorder`] attached,
//! renders the [`ScheduleOutcome`] as canonical JSON, publishes it to
//! the cache and fulfils the client's [`ResponseSlot`].
//!
//! The payload deliberately contains **no wall-clock data** (per-slot
//! summaries are recomputed from the schedule itself, not from the timed
//! `SlotMetrics`), which is what makes the determinism contract hold:
//! cold solve, warm cache, in-process and TCP paths all hand back the
//! same bytes.

use crate::cache::ScheduleCache;
use crate::codec::{canonical_json, CanonicalJob, CodecError, JobSpec, Workload};
use crate::journal::DurableStore;
use crate::protocol::{
    GossipEntry, ServiceStats, CODE_BAD_REQUEST, CODE_BASE_MISS, CODE_DEADLINE, CODE_INTERNAL,
    CODE_KEY_MISS, CODE_QUEUE_FULL, CODE_SHUTTING_DOWN, CODE_UNKNOWN_ALGORITHM, CODE_UNSOLVABLE,
};
use crate::queue::{PushError, ResponseSlot, WorkQueue};
use crate::replicate::Replicator;
use crate::storage::{DiskStorage, Storage};
use rfid_core::mcs::{covering_schedule_with, CoveringSchedule, McsOptions};
use rfid_core::SchedulerRegistry;
use rfid_delta::{apply_ops, derived_key, key_hex, parse_key_hex, ScenarioDelta};
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, Deployment};
use rfid_obs::{counter, event, Recorder, Subscriber};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Bound on the failover-dedup id set; reaching it clears the set (a
/// coarse generation swap — old ids simply stop being deduplicated,
/// which is harmless because the requests are idempotent anyway).
const SEEN_IDS_CAP: usize = 4096;

/// Bound on the canonical-spec store that resolves delta bases; reaching
/// it clears the store (same coarse generation swap as [`SEEN_IDS_CAP`]).
/// A cleared base simply answers the next delta with a structured
/// base-miss, and the client re-sends the full scenario.
const SPEC_STORE_CAP: usize = 1024;

/// A structured service error: an HTTP-flavoured code plus a cause.
/// Every failure mode of the request path maps to exactly one code —
/// clients never see a hang, a dropped request or a panic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceError {
    /// One of the `crate::protocol::CODE_*` constants.
    pub code: u16,
    /// Human-readable cause.
    pub message: String,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for ServiceError {}

impl ServiceError {
    fn new(code: u16, message: impl Into<String>) -> Self {
        ServiceError {
            code,
            message: message.into(),
        }
    }
}

impl From<CodecError> for ServiceError {
    fn from(err: CodecError) -> Self {
        match err {
            // The registry message is already self-describing ("unknown
            // algorithm \"x\"; known: ..."), so no extra prefix.
            CodecError::UnknownAlgorithm(m) => ServiceError::new(CODE_UNKNOWN_ALGORITHM, m),
            CodecError::InvalidWorkload(m) => {
                ServiceError::new(CODE_BAD_REQUEST, format!("invalid workload: {m}"))
            }
            CodecError::Malformed(m) => {
                ServiceError::new(CODE_BAD_REQUEST, format!("malformed job: {m}"))
            }
        }
    }
}

/// Per-slot summary recomputed from the schedule itself — everything a
/// dashboard needs, none of the wall-clock data that would break the
/// determinism contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotSummary {
    /// Slot index in activation order.
    pub slot: usize,
    /// Readers activated this slot.
    pub active_readers: usize,
    /// Tags served this slot.
    pub tags_served: usize,
    /// `true` when the progress guard produced this slot.
    pub fallback: bool,
}

/// The response payload: `McsRun` totals, the full schedule and per-slot
/// summaries. Rendered as canonical JSON, this is the byte string the
/// cache stores and every client receives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// Canonical algorithm label that produced the schedule.
    pub algorithm: String,
    /// Number of time slots (the paper's metric).
    pub slots: usize,
    /// Total tags served.
    pub tags_served: usize,
    /// Slots produced by the progress guard.
    pub fallback_slots: usize,
    /// Tags no reader covers.
    pub uncoverable: usize,
    /// RTc pairs repaired by the resilient policy.
    pub repaired_pairs: usize,
    /// Activations dropped because their reader crashed.
    pub crashed_dropped: usize,
    /// Coverable tags abandoned by the resilient policy.
    pub abandoned_tags: usize,
    /// `true` when every coverable tag was served.
    pub complete: bool,
    /// The full covering schedule.
    pub schedule: CoveringSchedule,
    /// One summary row per slot (`slot_summaries[i]` ↔ `schedule.slots[i]`).
    pub slot_summaries: Vec<SlotSummary>,
}

/// A successful schedule response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleReply {
    /// Content key (fixed-width hex) — the cache address of the payload.
    pub key: String,
    /// `true` when the payload came from the cache.
    pub cached: bool,
    /// Canonical JSON of a [`ScheduleOutcome`].
    pub payload: Arc<str>,
}

impl ScheduleReply {
    /// Parses the payload back into a typed outcome.
    pub fn outcome(&self) -> Result<ScheduleOutcome, String> {
        serde_json::from_str(&self.payload).map_err(|e| e.to_string())
    }
}

/// A request-by-key cache hit: the payload plus its pre-rendered wire
/// form (the payload as a JSON string literal) so the transport can
/// splice the reply envelope together without re-serialising anything.
#[derive(Debug, Clone)]
pub struct KeyHit {
    /// The content key the payload is cached under (the derived key
    /// when the request carried ops), fixed-width hex.
    pub key_hex: String,
    /// Canonical JSON of a [`ScheduleOutcome`] — the same bytes a full
    /// submission returns.
    pub payload: Arc<str>,
    /// `payload` pre-escaped as a JSON string literal, rendered once
    /// per cache entry (see [`ScheduleCache::probe_wire`]).
    pub wire: Arc<str>,
}

impl KeyHit {
    /// The reply as the transport-agnostic [`ScheduleReply`] (key hits
    /// are by definition cached).
    pub fn into_reply(self) -> ScheduleReply {
        ScheduleReply {
            key: self.key_hex,
            cached: true,
            payload: self.payload,
        }
    }
}

/// Service construction parameters (the CLI's `serve` flags).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads solving cache misses. `0` is legal (nothing is
    /// ever solved — useful for backpressure tests).
    pub workers: usize,
    /// Bounded queue capacity; a full queue rejects with `429`.
    pub queue_cap: usize,
    /// Cache capacity in entries; `0` disables caching.
    pub cache_cap: usize,
    /// Optional time-to-live for cache entries.
    pub cache_ttl: Option<Duration>,
    /// Directory for the journal + snapshot (DESIGN.md §10). `None`
    /// keeps the cache RAM-only (the pre-durability behaviour).
    pub data_dir: Option<PathBuf>,
    /// Compact the journal into a snapshot after this many appends
    /// (`0` = never compact).
    pub snapshot_every: usize,
    /// Peer daemon addresses to gossip cache entries to.
    pub peers: Vec<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(2),
            queue_cap: 64,
            cache_cap: 256,
            cache_ttl: None,
            data_dir: None,
            snapshot_every: 64,
            peers: Vec::new(),
        }
    }
}

type JobResult = Result<ScheduleReply, ServiceError>;

/// What [`Service::submit_with_id`] decided without blocking.
pub enum Submission {
    /// Answered synchronously: a cache hit, or a structured admission
    /// error (bad request, 404, 429, 503).
    Ready(JobResult),
    /// Admitted: the job is queued behind a worker (leader) or
    /// coalesced onto an identical in-flight solve (follower). The slot
    /// delivers the result; poll it with
    /// [`ResponseSlot::try_take`](crate::queue::ResponseSlot::try_take)
    /// or block on [`ResponseSlot::wait`](crate::queue::ResponseSlot::wait).
    Queued(Arc<ResponseSlot<JobResult>>),
}

struct Job {
    canonical: CanonicalJob,
    slot: Arc<ResponseSlot<JobResult>>,
}

struct Inner {
    registry: SchedulerRegistry,
    cache: ScheduleCache,
    queue: WorkQueue<Job>,
    /// Single-flight table: content key → every [`ResponseSlot`] waiting
    /// on the in-flight solve of that key (index 0 is the leader that
    /// enqueued the job). Only populated while the cache is enabled —
    /// with caching off, every request is an independent solve.
    inflight: Mutex<HashMap<u64, Vec<Arc<ResponseSlot<JobResult>>>>>,
    recorder: Recorder,
    shutting_down: AtomicBool,
    workers: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Journal + snapshot persistence; `None` = RAM-only.
    durable: Option<DurableStore>,
    /// Gossip fan-out; `None` when no peers are configured. Taken (and
    /// consumed) by shutdown, hence the `Mutex<Option<..>>`.
    replicator: Mutex<Option<Replicator>>,
    /// Request ids already served, for failover-retry dedup accounting.
    seen_ids: Mutex<HashSet<String>>,
    /// Canonical job specs by content key — the bases a delta request
    /// can patch. Populated on every *admitted* submission (full or
    /// delta) — cache hits skip the spec clone to keep the hot path
    /// allocation-free, which is fine because the entry they hit was
    /// itself admitted here (or gossiped in, which never had a spec and
    /// therefore base-misses either way).
    specs: Mutex<HashMap<u64, Arc<JobSpec>>>,
    // Counters not derivable from the cache or queue.
    requests: AtomicU64,
    coalesced: AtomicU64,
    rejected_full: AtomicU64,
    rejected_shutdown: AtomicU64,
    deadline_expired: AtomicU64,
    solved: AtomicU64,
    errors: AtomicU64,
    recovered: AtomicU64,
    replicated_in: AtomicU64,
    deduped: AtomicU64,
}

impl Inner {
    /// Journals and gossips one freshly published payload. Both paths
    /// are best-effort and counter-backed; neither touches the request
    /// accounting.
    fn publish_durable(&self, key: u64, key_hex: &str, payload: &str) {
        let sub: Option<&dyn Subscriber> = Some(&self.recorder);
        if let Some(durable) = &self.durable {
            if durable.persist(key, payload, &|| self.cache.entries()) {
                counter!(sub, "serve.journal.append");
            } else {
                counter!(sub, "serve.journal.append_error");
            }
        }
        let repl = self.replicator.lock().expect("replicator poisoned");
        if let Some(repl) = repl.as_ref() {
            repl.offer(key_hex, payload);
            counter!(sub, "serve.replicate.out");
        }
    }

    /// Registers a canonical spec as a delta base under `key`.
    fn store_spec(&self, key: u64, spec: &Arc<JobSpec>) {
        let mut specs = self.specs.lock().expect("specs poisoned");
        if specs.len() >= SPEC_STORE_CAP && !specs.contains_key(&key) {
            specs.clear();
        }
        specs.entry(key).or_insert_with(|| Arc::clone(spec));
    }
}

/// The scheduling service: shared-nothing from the caller's view, cheap
/// to clone (an `Arc` internally), safe to use from many threads.
#[derive(Clone)]
pub struct Service {
    inner: Arc<Inner>,
}

impl Service {
    /// Starts the worker pool and returns the running service. With
    /// `data_dir` set, opens the directory (the only fallible step) and
    /// recovers the cache from snapshot + journal before accepting work.
    pub fn start(config: ServeConfig) -> std::io::Result<Self> {
        let storage: Option<Arc<dyn Storage>> = match &config.data_dir {
            Some(dir) => Some(Arc::new(DiskStorage::open(dir)?)),
            None => None,
        };
        Ok(Self::start_with_storage(config, storage))
    }

    /// [`start`](Self::start) with an explicit [`Storage`] — the seam
    /// the chaos harness injects a `FaultyStorage` through.
    pub fn start_with_storage(config: ServeConfig, storage: Option<Arc<dyn Storage>>) -> Self {
        let durable = storage.map(|s| DurableStore::new(s, config.snapshot_every));
        let replicator = if config.peers.is_empty() {
            None
        } else {
            Some(Replicator::start(&config.peers))
        };
        let inner = Arc::new(Inner {
            registry: SchedulerRegistry::global(),
            cache: ScheduleCache::new(config.cache_cap, config.cache_ttl),
            queue: WorkQueue::new(config.queue_cap),
            inflight: Mutex::new(HashMap::new()),
            recorder: Recorder::with_events(),
            shutting_down: AtomicBool::new(false),
            workers: config.workers,
            handles: Mutex::new(Vec::new()),
            durable,
            replicator: Mutex::new(replicator),
            seen_ids: Mutex::new(HashSet::new()),
            specs: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            rejected_shutdown: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            solved: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            replicated_in: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
        });
        if let Some(durable) = &inner.durable {
            // Warm the cache before the first request can arrive. Inserts
            // go through the counter-quiet path (plain `insert`), so a
            // recovered start does not distort hit/miss accounting.
            let report = durable.recover();
            let mut warmed = 0u64;
            for (key, payload) in &report.entries {
                inner.cache.insert(*key, Arc::from(payload.as_str()));
                warmed += 1;
            }
            inner.recovered.store(warmed, Ordering::Relaxed);
            let sub: Option<&dyn Subscriber> = Some(&inner.recorder);
            counter!(sub, "serve.cache.recovered_entries", warmed);
            event!(
                sub,
                "serve.recovery",
                "entries" => warmed,
                "snapshot_entries" => report.snapshot_entries,
                "journal_records" => report.journal_records,
                "dropped_bytes" => report.dropped_bytes,
                "errors" => report.errors.len(),
                "warm" => warmed > 0,
            );
            counter!(sub, "serve.recovery.errors", report.errors.len() as u64);
        }
        let mut handles = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let worker = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&worker))
                    .expect("spawn worker thread"),
            );
        }
        *inner.handles.lock().expect("handles poisoned") = handles;
        Service { inner }
    }

    /// Schedules one job, waiting up to `deadline` for the result.
    ///
    /// Every outcome is structured: a cache hit or solved schedule on
    /// success; otherwise a [`ServiceError`] whose code pins the cause
    /// (bad request, unknown algorithm, queue full, shutting down,
    /// deadline expired, solver stall, worker panic).
    pub fn schedule(&self, spec: &JobSpec, deadline: Option<Duration>) -> JobResult {
        self.schedule_with_id(spec, deadline, None)
    }

    /// [`schedule`](Self::schedule) with an optional client request id.
    /// A repeated id (a failover retry of an idempotent request) is
    /// served normally — content addressing already guarantees the same
    /// bytes — but counted as a dedup instead of fresh demand.
    pub fn schedule_with_id(
        &self,
        spec: &JobSpec,
        deadline: Option<Duration>,
        request_id: Option<&str>,
    ) -> JobResult {
        match self.submit_with_id(spec, request_id) {
            Submission::Ready(result) => result,
            Submission::Queued(slot) => match slot.wait(deadline) {
                Some(result) => result,
                None => Err(self.deadline_expired(&format!("{deadline:?}"))),
            },
        }
    }

    /// Counts a deadline expiry and builds its structured `504` error.
    /// Callers (the blocking wait above, the reactor's slot polling)
    /// must have abandoned the slot first so a late result is dropped.
    pub(crate) fn deadline_expired(&self, waited: &str) -> ServiceError {
        let inner = &self.inner;
        let sub: Option<&dyn Subscriber> = Some(&inner.recorder);
        inner.deadline_expired.fetch_add(1, Ordering::Relaxed);
        counter!(sub, "serve.deadline_expired");
        ServiceError::new(CODE_DEADLINE, format!("deadline expired after {waited}"))
    }

    /// The non-blocking half of [`schedule_with_id`](Self::schedule_with_id):
    /// runs admission (dedup, canonicalization, cache probe,
    /// single-flight, queueing) and returns without waiting. A cache hit
    /// or admission error is [`Submission::Ready`]; queued leaders and
    /// coalesced followers get [`Submission::Queued`] with the slot the
    /// worker will fulfill. This is the entry point the event-driven
    /// server uses — the reactor polls the slot instead of parking a
    /// thread on it.
    pub fn submit_with_id(&self, spec: &JobSpec, request_id: Option<&str>) -> Submission {
        let inner = &self.inner;
        let sub: Option<&dyn Subscriber> = Some(&inner.recorder);
        // Dedup *check* only — a `&str` set lookup, no clone. Recording
        // the id (which allocates) is deferred to the miss path via
        // `note_admitted`: a retried request that hits the cache is
        // already free, so paying an allocation to count it as a dedup
        // would tax exactly the path we keep hot.
        if let Some(id) = request_id {
            let seen = inner.seen_ids.lock().expect("seen ids poisoned");
            if seen.contains(id) {
                inner.deduped.fetch_add(1, Ordering::Relaxed);
                counter!(sub, "serve.failover.dedup");
            }
        }
        let canonical = match CanonicalJob::new(spec, &inner.registry) {
            Ok(canonical) => canonical,
            Err(e) => {
                inner.errors.fetch_add(1, Ordering::Relaxed);
                return Submission::Ready(Err(ServiceError::from(e)));
            }
        };
        inner.requests.fetch_add(1, Ordering::Relaxed);
        counter!(sub, "serve.request");
        let shutting_down = || {
            inner.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
            ServiceError::new(CODE_SHUTTING_DOWN, "service is shutting down")
        };
        let slot = Arc::new(ResponseSlot::new());
        if inner.cache.is_enabled() {
            // Hit, coalesce or lead — decided under the single-flight
            // lock, so exactly one solve of each key can be in flight:
            // a worker publishes to the cache *before* it drains the
            // entry (both under this lock), hence a request that finds
            // no entry and misses the cache is a genuine leader.
            let mut inflight = inner.inflight.lock().expect("inflight poisoned");
            if let Some(waiters) = inflight.get_mut(&canonical.key) {
                waiters.push(Arc::clone(&slot));
                inner.coalesced.fetch_add(1, Ordering::Relaxed);
                counter!(sub, "serve.coalesced");
                drop(inflight);
                note_admitted(inner, sub, request_id, &canonical);
            } else if let Some(payload) = inner.cache.get(canonical.key) {
                counter!(sub, "serve.cache.hit");
                return Submission::Ready(Ok(ScheduleReply {
                    key: canonical.key_hex(),
                    cached: true,
                    payload,
                }));
            } else {
                counter!(sub, "serve.cache.miss");
                if inner.shutting_down.load(Ordering::SeqCst) {
                    return Submission::Ready(Err(shutting_down()));
                }
                note_admitted(inner, sub, request_id, &canonical);
                let key = canonical.key;
                let job = Job {
                    canonical,
                    slot: Arc::clone(&slot),
                };
                match inner.queue.try_push(job) {
                    Ok(()) => {
                        inflight.insert(key, vec![Arc::clone(&slot)]);
                    }
                    Err(e) => return Submission::Ready(Err(self.reject(e))),
                }
            }
        } else {
            // Caching disabled: every request is an independent solve
            // (the cache still counts the forced miss).
            let _ = inner.cache.get(canonical.key);
            counter!(sub, "serve.cache.miss");
            if inner.shutting_down.load(Ordering::SeqCst) {
                return Submission::Ready(Err(shutting_down()));
            }
            note_admitted(inner, sub, request_id, &canonical);
            let job = Job {
                canonical,
                slot: Arc::clone(&slot),
            };
            if let Err(e) = inner.queue.try_push(job) {
                return Submission::Ready(Err(self.reject(e)));
            }
        }
        Submission::Queued(slot)
    }

    /// The protocol-v4 **request-by-key** fast path: answer an
    /// already-cached schedule addressed by content key alone — no
    /// scenario parse, no canonicalisation, no re-render. With `ops`,
    /// the probe targets [`derived_key`]`(key, ops)`, the warm path for
    /// a previously solved delta.
    ///
    /// A hit counts as a normal request + cache hit (so
    /// `hits + misses + coalesced == requests` keeps holding); a miss is
    /// a **counter-quiet** probe answered with a structured
    /// [`CODE_KEY_MISS`] error whose message starts with `key-miss` —
    /// the client falls back to the full frame, and *that* submission
    /// does the request accounting.
    pub fn request_by_key(&self, key: &str, ops: &[ScenarioDelta]) -> Result<KeyHit, ServiceError> {
        let inner = &self.inner;
        let sub: Option<&dyn Subscriber> = Some(&inner.recorder);
        let Some(base) = parse_key_hex(key) else {
            inner.errors.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::new(
                CODE_BAD_REQUEST,
                format!("malformed key {key:?}: expected 16 hex digits"),
            ));
        };
        let target = if ops.is_empty() {
            base
        } else {
            derived_key(base, ops)
        };
        if let Some((payload, wire)) = inner.cache.probe_wire(target) {
            inner.requests.fetch_add(1, Ordering::Relaxed);
            counter!(sub, "serve.request");
            counter!(sub, "serve.cache.hit");
            counter!(sub, "serve.key.hit");
            return Ok(KeyHit {
                key_hex: key_hex(target),
                payload,
                wire,
            });
        }
        inner.errors.fetch_add(1, Ordering::Relaxed);
        counter!(sub, "serve.key.miss");
        Err(ServiceError::new(
            CODE_KEY_MISS,
            format!(
                "key-miss: schedule {} is not cached on this node; send the full frame",
                key_hex(target)
            ),
        ))
    }

    /// Maps a queue-admission failure to its structured error.
    fn reject(&self, err: PushError) -> ServiceError {
        let inner = &self.inner;
        let sub: Option<&dyn Subscriber> = Some(&inner.recorder);
        match err {
            PushError::Full => {
                inner.rejected_full.fetch_add(1, Ordering::Relaxed);
                counter!(sub, "serve.queue.rejected");
                ServiceError::new(
                    CODE_QUEUE_FULL,
                    format!(
                        "work queue full ({} pending); retry later",
                        inner.queue.len()
                    ),
                )
            }
            PushError::Closed => {
                inner.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
                ServiceError::new(CODE_SHUTTING_DOWN, "service is shutting down")
            }
        }
    }

    /// Schedules a **delta** job: `ops` applied to the already-seen base
    /// scenario addressed by `base` (fixed-width hex content key),
    /// blocking up to `deadline`. The reply is addressed by the
    /// [`derived_key`] of `(base, ops)` and is byte-identical to sending
    /// the patched scenario as a full request.
    pub fn schedule_delta(
        &self,
        base: &str,
        ops: &[ScenarioDelta],
        deadline: Option<Duration>,
        request_id: Option<&str>,
    ) -> JobResult {
        let (derived, submission) = self.submit_delta(base, ops, request_id);
        let result = match submission {
            Submission::Ready(result) => result,
            Submission::Queued(slot) => match slot.wait(deadline) {
                Some(result) => result,
                None => Err(self.deadline_expired(&format!("{deadline:?}"))),
            },
        };
        self.finish_delta(derived, result)
    }

    /// The non-blocking half of [`schedule_delta`](Self::schedule_delta):
    /// resolves the base spec (structured `404` "base-miss" when this
    /// node has never seen it), applies the ops, and admits the patched
    /// scenario through the normal submission path — cache, coalescing,
    /// queue and all. Returns the derived key alongside the submission;
    /// the caller must pass the eventual result through
    /// [`finish_delta`](Self::finish_delta) to alias the payload under
    /// that key.
    pub fn submit_delta(
        &self,
        base: &str,
        ops: &[ScenarioDelta],
        request_id: Option<&str>,
    ) -> (u64, Submission) {
        let inner = &self.inner;
        let sub: Option<&dyn Subscriber> = Some(&inner.recorder);
        counter!(sub, "serve.delta.request");
        let Some(base_key) = parse_key_hex(base) else {
            inner.errors.fetch_add(1, Ordering::Relaxed);
            return (
                0,
                Submission::Ready(Err(ServiceError::new(
                    CODE_BAD_REQUEST,
                    format!("malformed base key {base:?}: expected 16 hex digits"),
                ))),
            );
        };
        let derived = derived_key(base_key, ops);
        // Fast path: the derived scenario was already solved here (or a
        // previous delta aliased it) — answer straight from the cache.
        if inner.cache.is_enabled() {
            if let Some(payload) = inner.cache.get(derived) {
                inner.requests.fetch_add(1, Ordering::Relaxed);
                counter!(sub, "serve.cache.hit");
                return (
                    derived,
                    Submission::Ready(Ok(ScheduleReply {
                        key: key_hex(derived),
                        cached: true,
                        payload,
                    })),
                );
            }
        }
        let spec = {
            let specs = inner.specs.lock().expect("specs poisoned");
            specs.get(&base_key).cloned()
        };
        let Some(spec) = spec else {
            inner.errors.fetch_add(1, Ordering::Relaxed);
            counter!(sub, "serve.delta.base_miss");
            return (
                derived,
                Submission::Ready(Err(ServiceError::new(
                    CODE_BASE_MISS,
                    format!(
                        "base-miss: scenario {base} is not resident on this node; \
                         send the full scenario"
                    ),
                ))),
            );
        };
        // Ops index tags and readers in the *canonical* base deployment
        // (the form the base's own reply was computed from), so
        // materialise that and patch it.
        let base_deployment: Deployment = match &spec.workload {
            Workload::Generated { scenario, seed } => scenario.generate(*seed),
            Workload::Explicit { deployment } => deployment.clone(),
        };
        let patched = match apply_ops(&base_deployment, ops) {
            Ok(patched) => patched,
            Err(e) => {
                inner.errors.fetch_add(1, Ordering::Relaxed);
                return (
                    derived,
                    Submission::Ready(Err(ServiceError::new(
                        CODE_BAD_REQUEST,
                        format!("invalid delta: {e}"),
                    ))),
                );
            }
        };
        let mut patched_spec = (*spec).clone();
        patched_spec.workload = Workload::Explicit {
            deployment: patched.deployment,
        };
        // Canonicalise once up front so the derived key can serve as a
        // base for *chained* deltas (ops against the canonical patched
        // form), then submit the canonical spec — canonicalisation is
        // idempotent, so the inner pass lands on the same content key.
        let canonical = match CanonicalJob::new(&patched_spec, &inner.registry) {
            Ok(canonical) => canonical,
            Err(e) => {
                inner.errors.fetch_add(1, Ordering::Relaxed);
                return (derived, Submission::Ready(Err(ServiceError::from(e))));
            }
        };
        let canonical_spec = Arc::new(canonical.spec.clone());
        inner.store_spec(derived, &canonical_spec);
        (derived, self.submit_with_id(&canonical.spec, request_id))
    }

    /// Completes a delta request: aliases a successful payload under the
    /// derived key (cache + journal + gossip, exactly like a full
    /// solve) and re-addresses the reply to it. Errors pass through.
    pub fn finish_delta(&self, derived: u64, result: JobResult) -> JobResult {
        let reply = result?;
        let inner = &self.inner;
        let derived_hex = key_hex(derived);
        if reply.key != derived_hex {
            if inner.cache.is_enabled() && !inner.cache.contains(derived) {
                inner.cache.insert(derived, Arc::clone(&reply.payload));
            }
            inner.publish_durable(derived, &derived_hex, &reply.payload);
        }
        Ok(ScheduleReply {
            key: derived_hex,
            cached: reply.cached,
            payload: reply.payload,
        })
    }

    /// Applies gossiped cache entries from a peer: parse the hex key,
    /// skip entries already cached (counter-quiet probe), insert and
    /// journal the rest. Returns how many were newly applied. Absorbed
    /// entries are **not** re-gossiped — fan-out is push-only, so a
    /// full-mesh peer set converges without flooding loops.
    pub fn absorb(&self, entries: &[GossipEntry]) -> u64 {
        let inner = &self.inner;
        let sub: Option<&dyn Subscriber> = Some(&inner.recorder);
        let mut applied = 0u64;
        for entry in entries {
            let Ok(key) = u64::from_str_radix(&entry.key, 16) else {
                continue;
            };
            if !inner.cache.is_enabled() || inner.cache.contains(key) {
                continue;
            }
            inner.cache.insert(key, Arc::from(entry.payload.as_str()));
            if let Some(durable) = &inner.durable {
                durable.persist(key, &entry.payload, &|| inner.cache.entries());
            }
            applied += 1;
        }
        if applied > 0 {
            inner.replicated_in.fetch_add(applied, Ordering::Relaxed);
            counter!(sub, "serve.replicate.in", applied);
        }
        applied
    }

    /// Point-in-time counters across cache, queue, workers and the
    /// durability/replication layers.
    pub fn stats(&self) -> ServiceStats {
        let inner = &self.inner;
        let cache = inner.cache.stats();
        let durable = inner
            .durable
            .as_ref()
            .map(|d| d.stats())
            .unwrap_or_default();
        let (replicated_out, replication_dropped) = {
            let repl = inner.replicator.lock().expect("replicator poisoned");
            repl.as_ref()
                .map(|r| (r.offered(), r.dropped()))
                .unwrap_or((0, 0))
        };
        ServiceStats {
            requests: inner.requests.load(Ordering::Relaxed),
            coalesced: inner.coalesced.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
            cache_expired: cache.expired,
            cache_entries: cache.entries,
            rejected_full: inner.rejected_full.load(Ordering::Relaxed),
            rejected_shutdown: inner.rejected_shutdown.load(Ordering::Relaxed),
            deadline_expired: inner.deadline_expired.load(Ordering::Relaxed),
            solved: inner.solved.load(Ordering::Relaxed),
            errors: inner.errors.load(Ordering::Relaxed),
            queue_depth: inner.queue.len() as u64,
            workers: inner.workers as u64,
            recovered_entries: inner.recovered.load(Ordering::Relaxed),
            journal_appends: durable.appends,
            journal_append_errors: durable.append_errors,
            snapshots_written: durable.snapshots,
            replicated_out,
            replication_dropped,
            replicated_in: inner.replicated_in.load(Ordering::Relaxed),
            deduped: inner.deduped.load(Ordering::Relaxed),
        }
    }

    /// Deterministic JSON snapshot of the server's `rfid-obs` recorder
    /// (counters, histograms, span counts — wall times excluded).
    pub fn metrics_json(&self) -> String {
        self.inner.recorder.snapshot().to_json()
    }

    /// `true` once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutting_down.load(Ordering::SeqCst)
    }

    /// Stops the service. With `drain == true`, queued jobs are solved
    /// before the workers exit (graceful "drain, then stop"); otherwise
    /// pending jobs are failed fast with a `503` so their waiters return
    /// immediately. Idempotent; blocks until every worker has exited.
    pub fn shutdown(&self, drain: bool) {
        let inner = &self.inner;
        inner.shutting_down.store(true, Ordering::SeqCst);
        if !drain {
            for job in inner.queue.take_pending() {
                let err = ServiceError::new(CODE_SHUTTING_DOWN, "service is shutting down");
                let waiters = inner
                    .inflight
                    .lock()
                    .expect("inflight poisoned")
                    .remove(&job.canonical.key);
                match waiters {
                    Some(waiters) => {
                        for w in waiters {
                            w.fulfill(Err(err.clone()));
                        }
                    }
                    None => {
                        job.slot.fulfill(Err(err));
                    }
                }
            }
        }
        inner.queue.close();
        let handles = std::mem::take(&mut *inner.handles.lock().expect("handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
        // Stop gossip last: queued entries from the drain still go out.
        let replicator = inner.replicator.lock().expect("replicator poisoned").take();
        if let Some(replicator) = replicator {
            replicator.shutdown();
        }
    }
}

/// Miss-path admission bookkeeping, deliberately **not** run on cache
/// hits: records the request id for failover-retry dedup (allocates the
/// id's `String`) and registers the canonical spec as a delta base
/// (clones the spec). Both allocations are pinned by the
/// `serve.admission.alloc` counter so a regression that re-runs them on
/// the hit path fails a test instead of quietly taxing every request.
fn note_admitted(
    inner: &Inner,
    sub: Option<&dyn Subscriber>,
    request_id: Option<&str>,
    canonical: &CanonicalJob,
) {
    if let Some(id) = request_id {
        let mut seen = inner.seen_ids.lock().expect("seen ids poisoned");
        if seen.len() >= SEEN_IDS_CAP {
            seen.clear();
        }
        if seen.insert(id.to_string()) {
            counter!(sub, "serve.admission.alloc");
        }
    }
    inner.store_spec(canonical.key, &Arc::new(canonical.spec.clone()));
    counter!(sub, "serve.admission.alloc");
}

fn worker_loop(inner: &Inner) {
    while let Some(job) = inner.queue.pop() {
        let key = job.canonical.key;
        {
            // Skip the solve when every waiter's deadline expired while
            // the job sat queued — no point burning a worker on ghosts.
            let mut inflight = inner.inflight.lock().expect("inflight poisoned");
            let all_abandoned = match inflight.get(&key) {
                Some(waiters) => waiters.iter().all(|w| w.is_abandoned()),
                None => job.slot.is_abandoned(),
            };
            if all_abandoned {
                inflight.remove(&key);
                inner.deadline_expired.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        }
        let sub: Option<&dyn Subscriber> = Some(&inner.recorder);
        let result = catch_unwind(AssertUnwindSafe(|| solve(inner, &job.canonical)))
            .unwrap_or_else(|panic| {
                Err(ServiceError::new(
                    CODE_INTERNAL,
                    format!("worker panicked: {}", panic_message(&panic)),
                ))
            });
        match &result {
            Ok(_) => {
                inner.solved.fetch_add(1, Ordering::Relaxed);
                counter!(sub, "serve.solve");
            }
            Err(_) => {
                inner.errors.fetch_add(1, Ordering::Relaxed);
                counter!(sub, "serve.solve.error");
            }
        }
        // Publish to the cache, then drain the single-flight entry —
        // in that order and both before any follower can re-enter the
        // leader path (see `Service::schedule`).
        let waiters = {
            let mut inflight = inner.inflight.lock().expect("inflight poisoned");
            if let Ok(reply) = &result {
                let evicted = inner.cache.insert(key, Arc::clone(&reply.payload));
                counter!(sub, "serve.cache.evicted", evicted as u64);
            }
            inflight.remove(&key)
        };
        // Journal + gossip outside the single-flight lock: disk and
        // network latency must never extend the critical section.
        if let Ok(reply) = &result {
            inner.publish_durable(key, &reply.key, &reply.payload);
        }
        match waiters {
            Some(waiters) => {
                for (i, w) in waiters.into_iter().enumerate() {
                    let shared = match &result {
                        Ok(reply) => Ok(ScheduleReply {
                            key: reply.key.clone(),
                            // Followers got their bytes from the shared
                            // in-flight solve, not a solve of their own.
                            cached: i > 0,
                            payload: Arc::clone(&reply.payload),
                        }),
                        Err(e) => Err(e.clone()),
                    };
                    w.fulfill(shared);
                }
            }
            None => {
                job.slot.fulfill(result);
            }
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

fn solve(inner: &Inner, canonical: &CanonicalJob) -> JobResult {
    let spec = &canonical.spec;
    let deployment: Deployment = match &spec.workload {
        Workload::Generated { scenario, seed } => scenario.generate(*seed),
        Workload::Explicit { deployment } => deployment.clone(),
    };
    let coverage = Coverage::build(&deployment);
    let graph = interference_graph(&deployment);
    let kind = inner
        .registry
        .parse(&spec.algorithm)
        .map_err(|m| ServiceError::new(CODE_UNKNOWN_ALGORITHM, m))?;
    let mut scheduler = inner.registry.instantiate(kind, spec.algo_seed);
    let mut options = McsOptions::new().subscriber(&inner.recorder);
    if spec.resilient {
        options = options.resilient();
    }
    if let Some(max_slots) = spec.max_slots {
        options = options.max_slots(max_slots);
    }
    let run = covering_schedule_with(&deployment, &coverage, &graph, scheduler.as_mut(), &options)
        .map_err(|e| ServiceError::new(CODE_UNSOLVABLE, e.to_string()))?;
    let outcome = ScheduleOutcome {
        algorithm: kind.label().to_string(),
        slots: run.schedule.size(),
        tags_served: run.schedule.tags_served(),
        fallback_slots: run.schedule.fallback_slots(),
        uncoverable: run.schedule.uncoverable.len(),
        repaired_pairs: run.repaired_pairs,
        crashed_dropped: run.crashed_dropped,
        abandoned_tags: run.abandoned_tags.len(),
        complete: run.complete(),
        slot_summaries: run
            .schedule
            .slots
            .iter()
            .enumerate()
            .map(|(i, s)| SlotSummary {
                slot: i,
                active_readers: s.active.len(),
                tags_served: s.served.len(),
                fallback: s.fallback,
            })
            .collect(),
        schedule: run.schedule,
    };
    Ok(ScheduleReply {
        key: canonical.key_hex(),
        cached: false,
        payload: Arc::from(canonical_json(&outcome)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{CODE_QUEUE_FULL, CODE_SHUTTING_DOWN, CODE_UNKNOWN_ALGORITHM};
    use rfid_model::{RadiusModel, Scenario, ScenarioKind};

    fn small_job(seed: u64) -> JobSpec {
        JobSpec::new(Workload::Generated {
            scenario: Scenario {
                kind: ScenarioKind::UniformRandom,
                n_readers: 8,
                n_tags: 40,
                region_side: 40.0,
                radius_model: RadiusModel::paper_default(),
            },
            seed,
        })
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_cap: 16,
            cache_cap: 32,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn solve_then_cache_hit_returns_identical_bytes() {
        let service = Service::start(quick_config()).unwrap();
        let job = small_job(3);
        let cold = service.schedule(&job, None).unwrap();
        assert!(!cold.cached);
        let warm = service.schedule(&job, None).unwrap();
        assert!(warm.cached);
        assert_eq!(cold.payload, warm.payload);
        assert_eq!(cold.key, warm.key);
        let outcome = warm.outcome().unwrap();
        assert!(outcome.complete);
        assert_eq!(outcome.slot_summaries.len(), outcome.slots);
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.solved, 1);
        service.shutdown(true);
    }

    #[test]
    fn unknown_algorithm_is_structured_404() {
        let service = Service::start(quick_config()).unwrap();
        let mut job = small_job(1);
        job.algorithm = "quantum-annealing".into();
        let err = service.schedule(&job, None).unwrap_err();
        assert_eq!(err.code, CODE_UNKNOWN_ALGORITHM);
        assert!(err.message.contains("alg2-central"), "{}", err.message);
        service.shutdown(true);
    }

    #[test]
    fn full_queue_rejects_with_429() {
        // No workers: every admitted job parks in the queue forever.
        let service = Service::start(ServeConfig {
            workers: 0,
            queue_cap: 2,
            cache_cap: 0,
            ..ServeConfig::default()
        })
        .unwrap();
        let svc = service.clone();
        let j1 = small_job(1);
        let t1 = std::thread::spawn(move || svc.schedule(&j1, None));
        let svc = service.clone();
        let j2 = small_job(2);
        let t2 = std::thread::spawn(move || svc.schedule(&j2, None));
        // Wait until both jobs are queued.
        for _ in 0..200 {
            if service.stats().queue_depth == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(service.stats().queue_depth, 2);
        let err = service.schedule(&small_job(3), None).unwrap_err();
        assert_eq!(err.code, CODE_QUEUE_FULL);
        // Non-draining shutdown fails the parked jobs with 503 so the
        // blocked threads return (nothing hangs, nothing is dropped).
        service.shutdown(false);
        for t in [t1, t2] {
            let err = t.join().unwrap().unwrap_err();
            assert_eq!(err.code, CODE_SHUTTING_DOWN);
        }
        assert_eq!(service.stats().rejected_full, 1);
    }

    #[test]
    fn concurrent_identical_requests_solve_once() {
        let service = Service::start(quick_config()).unwrap();
        let job = small_job(7);
        let threads: Vec<_> = (0..6)
            .map(|_| {
                let svc = service.clone();
                let job = job.clone();
                std::thread::spawn(move || svc.schedule(&job, None).unwrap())
            })
            .collect();
        let replies: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        for r in &replies {
            assert_eq!(replies[0].key, r.key);
            assert_eq!(replies[0].payload, r.payload);
        }
        let stats = service.stats();
        assert_eq!(stats.solved, 1, "identical in-flight jobs must coalesce");
        assert_eq!(stats.cache_misses, 1, "only the leader misses");
        assert_eq!(stats.cache_hits + stats.coalesced, 5);
        service.shutdown(true);
    }

    #[test]
    fn coalesced_followers_do_not_consume_queue_slots() {
        // One queue slot, no workers: the leader parks in the queue and
        // followers join its single-flight entry instead of drawing a
        // 429 — then every waiter expires together.
        let service = Service::start(ServeConfig {
            workers: 0,
            queue_cap: 1,
            cache_cap: 8,
            ..ServeConfig::default()
        })
        .unwrap();
        let job = small_job(1);
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let svc = service.clone();
                let job = job.clone();
                std::thread::spawn(move || svc.schedule(&job, Some(Duration::from_millis(200))))
            })
            .collect();
        for t in threads {
            let err = t.join().unwrap().unwrap_err();
            assert_eq!(err.code, CODE_DEADLINE);
        }
        let stats = service.stats();
        assert_eq!(stats.coalesced, 2);
        assert_eq!(stats.rejected_full, 0);
        assert_eq!(stats.queue_depth, 1);
        service.shutdown(false);
    }

    #[test]
    fn deadline_expires_with_504() {
        let service = Service::start(ServeConfig {
            workers: 0, // nothing will ever solve the job
            queue_cap: 4,
            cache_cap: 0,
            ..ServeConfig::default()
        })
        .unwrap();
        let err = service
            .schedule(&small_job(1), Some(Duration::from_millis(30)))
            .unwrap_err();
        assert_eq!(err.code, CODE_DEADLINE);
        assert_eq!(service.stats().deadline_expired, 1);
        service.shutdown(false);
    }

    #[test]
    fn shutdown_rejects_new_requests_with_503() {
        let service = Service::start(quick_config()).unwrap();
        service.shutdown(true);
        let err = service.schedule(&small_job(1), None).unwrap_err();
        assert_eq!(err.code, CODE_SHUTTING_DOWN);
        // Idempotent.
        service.shutdown(true);
    }

    #[test]
    fn metrics_snapshot_sees_serve_counters() {
        let service = Service::start(quick_config()).unwrap();
        let job = small_job(5);
        service.schedule(&job, None).unwrap();
        service.schedule(&job, None).unwrap();
        let metrics = service.metrics_json();
        assert!(metrics.contains("serve.cache.hit"), "{metrics}");
        assert!(metrics.contains("serve.cache.miss"), "{metrics}");
        assert!(metrics.contains("mcs.covering_schedule"), "{metrics}");
        service.shutdown(true);
    }

    /// An explicit deployment whose tags are already in canonical
    /// (ascending `(x, y)`) order, so local [`apply_ops`] sees the same
    /// indices the server does.
    fn explicit_job() -> (JobSpec, Deployment) {
        use rfid_geometry::{Point, Rect};
        let tags: Vec<Point> = (0..20)
            .map(|i| Point::new(1.0 + (i as f64) * 0.9, 2.0 + ((i * 7) % 17) as f64))
            .collect();
        let deployment = Deployment::new(
            Rect::square(20.0),
            vec![
                Point::new(5.0, 5.0),
                Point::new(15.0, 5.0),
                Point::new(5.0, 15.0),
                Point::new(15.0, 15.0),
            ],
            vec![9.0; 4],
            vec![7.0; 4],
            tags,
        );
        let spec = JobSpec::new(Workload::Explicit {
            deployment: deployment.clone(),
        });
        (spec, deployment)
    }

    fn sample_ops() -> Vec<rfid_delta::ScenarioDelta> {
        use rfid_delta::ScenarioDelta::*;
        vec![
            AddTag { x: 11.5, y: 3.5 },
            RemoveTag { tag: 2 },
            MoveReader {
                reader: 1,
                x: 14.0,
                y: 6.0,
            },
        ]
    }

    fn counter_value(service: &Service, name: &str) -> u64 {
        let metrics: serde_json::Value = serde_json::from_str(&service.metrics_json()).unwrap();
        metrics["counters"][name].as_f64().unwrap_or(0.0) as u64
    }

    #[test]
    fn request_by_key_answers_identical_bytes_and_counts_as_hit() {
        let service = Service::start(quick_config()).unwrap();
        let job = small_job(11);
        let cold = service.schedule(&job, None).unwrap();
        let hit = service.request_by_key(&cold.key, &[]).unwrap();
        assert_eq!(hit.key_hex, cold.key);
        assert_eq!(hit.payload, cold.payload, "determinism contract");
        assert_eq!(
            hit.wire.as_ref(),
            serde_json::to_string(cold.payload.as_ref()).unwrap(),
            "wire form is the payload as a JSON string literal"
        );
        let reply = hit.into_reply();
        assert!(reply.cached);
        let stats = service.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.cache_hits, 1, "key hits count as hits");
        assert_eq!(
            stats.cache_hits + stats.cache_misses + stats.coalesced,
            stats.requests,
            "request accounting must hold through the key path"
        );
        service.shutdown(true);
    }

    #[test]
    fn request_by_key_miss_is_structured_and_counter_quiet() {
        let service = Service::start(quick_config()).unwrap();
        let err = service.request_by_key("00000000deadbeef", &[]).unwrap_err();
        assert_eq!(err.code, CODE_KEY_MISS);
        assert!(err.message.starts_with("key-miss"), "{}", err.message);
        assert!(err.message.contains("send the full frame"));
        let stats = service.stats();
        assert_eq!(stats.requests, 0, "a key-miss is not a request");
        assert_eq!(stats.cache_misses, 0, "a key-miss is not a cache miss");
        assert_eq!(stats.errors, 1);

        let err = service.request_by_key("not-hex", &[]).unwrap_err();
        assert_eq!(err.code, CODE_BAD_REQUEST);
        service.shutdown(true);
    }

    #[test]
    fn request_by_key_with_ops_matches_the_delta_path() {
        let (spec, _) = explicit_job();
        let service = Service::start(quick_config()).unwrap();
        let base = service.schedule(&spec, None).unwrap();
        let ops = sample_ops();
        // Cold: the derivation is not cached yet — structured key-miss,
        // the client falls back to a full delta frame.
        let err = service.request_by_key(&base.key, &ops).unwrap_err();
        assert_eq!(err.code, CODE_KEY_MISS);
        let via_delta = service.schedule_delta(&base.key, &ops, None, None).unwrap();
        // Warm: key+ops answers from the derived-key alias, same bytes.
        let hit = service.request_by_key(&base.key, &ops).unwrap();
        assert_eq!(hit.key_hex, via_delta.key);
        assert_eq!(hit.payload, via_delta.payload);
        service.shutdown(true);
    }

    #[test]
    fn admission_allocations_are_gated_behind_the_miss_path() {
        let service = Service::start(quick_config()).unwrap();
        let job = small_job(21);
        service
            .schedule_with_id(&job, None, Some("retry-1"))
            .unwrap();
        // Cold solve: one id recorded + one spec clone.
        let after_miss = counter_value(&service, "serve.admission.alloc");
        assert_eq!(after_miss, 2);
        // Pure cache hits — same id, same spec — must not allocate: the
        // counter pins the id clone and the spec clone to the miss path.
        for _ in 0..3 {
            let warm = service
                .schedule_with_id(&job, None, Some("retry-1"))
                .unwrap();
            assert!(warm.cached);
        }
        assert_eq!(counter_value(&service, "serve.admission.alloc"), after_miss);
        // Key-path hits stay allocation-free too.
        let key = service.schedule(&job, None).unwrap().key;
        service.request_by_key(&key, &[]).unwrap();
        assert_eq!(counter_value(&service, "serve.admission.alloc"), after_miss);
        // The dedup *check* still runs on the hit path: the recorded id
        // was seen again, so the retries above counted as dedups.
        assert_eq!(service.stats().deduped, 3);
        service.shutdown(true);
    }

    #[test]
    fn delta_reply_matches_cold_solve_of_patched_scenario() {
        let (spec, deployment) = explicit_job();
        let service = Service::start(quick_config()).unwrap();
        let base = service.schedule(&spec, None).unwrap();
        let ops = sample_ops();
        let via_delta = service.schedule_delta(&base.key, &ops, None, None).unwrap();

        // Cold-solve the patched scenario on a *fresh* service: the
        // bytes must match exactly (the determinism contract).
        let patched = apply_ops(&deployment, &ops).unwrap();
        let patched_spec = JobSpec::new(Workload::Explicit {
            deployment: patched.deployment,
        });
        let cold_service = Service::start(quick_config()).unwrap();
        let cold = cold_service.schedule(&patched_spec, None).unwrap();
        assert_eq!(via_delta.payload, cold.payload);

        // The reply is addressed by the derived key, and asking again
        // hits the derived-key cache alias.
        let base_key = parse_key_hex(&base.key).unwrap();
        assert_eq!(via_delta.key, key_hex(derived_key(base_key, &ops)));
        let again = service.schedule_delta(&base.key, &ops, None, None).unwrap();
        assert!(again.cached);
        assert_eq!(again.payload, via_delta.payload);
        service.shutdown(true);
        cold_service.shutdown(true);
    }

    #[test]
    fn delta_chains_off_a_derived_key() {
        let (spec, _) = explicit_job();
        let service = Service::start(quick_config()).unwrap();
        let base = service.schedule(&spec, None).unwrap();
        let first = service
            .schedule_delta(&base.key, &sample_ops(), None, None)
            .unwrap();
        let more = vec![rfid_delta::ScenarioDelta::SetReaderAlive {
            reader: 0,
            alive: false,
        }];
        let second = service
            .schedule_delta(&first.key, &more, None, None)
            .unwrap();
        assert_ne!(second.payload, first.payload);
        assert!(second.outcome().is_ok());
        service.shutdown(true);
    }

    #[test]
    fn delta_against_unknown_base_is_a_structured_base_miss() {
        let service = Service::start(quick_config()).unwrap();
        let err = service
            .schedule_delta("00000000deadbeef", &sample_ops(), None, None)
            .unwrap_err();
        assert_eq!(err.code, CODE_BASE_MISS);
        assert!(err.message.starts_with("base-miss"), "{}", err.message);
        assert!(err.message.contains("send the full scenario"));

        let err = service
            .schedule_delta("not-a-key", &[], None, None)
            .unwrap_err();
        assert_eq!(err.code, CODE_BAD_REQUEST);
        service.shutdown(true);
    }

    #[test]
    fn delta_with_out_of_range_op_is_a_bad_request() {
        let (spec, _) = explicit_job();
        let service = Service::start(quick_config()).unwrap();
        let base = service.schedule(&spec, None).unwrap();
        let err = service
            .schedule_delta(
                &base.key,
                &[rfid_delta::ScenarioDelta::RemoveTag { tag: 10_000 }],
                None,
                None,
            )
            .unwrap_err();
        assert_eq!(err.code, CODE_BAD_REQUEST);
        assert!(err.message.contains("invalid delta"), "{}", err.message);
        service.shutdown(true);
    }
}
