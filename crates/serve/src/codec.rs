//! Canonical scenario codec: deterministic JSON and content-addressed keys.
//!
//! The service layer caches solved schedules by the *content* of the
//! request, so two syntactically different requests that describe the same
//! scheduling problem must map to the same key. Canonicalisation happens
//! at two levels:
//!
//! * **Value level** ([`JobSpec::canonicalize`]): algorithm aliases
//!   resolve to the registry's canonical label, and explicit deployments
//!   get their tag list sorted into a fixed spatial order (tag order is a
//!   labelling choice, not a scheduling input — the feasible sets a solver
//!   may return depend only on the multiset of tag positions).
//! * **Encoding level** ([`canonical_json`]): the serde content tree is
//!   rendered with every object's keys sorted, so field order can never
//!   leak into the hash.
//!
//! The cache key is a hand-rolled 64-bit FNV-1a ([`fnv1a64`]) over the
//! canonical encoding — stable across platforms and processes, with no
//! dependency on `std::hash`'s randomised state.

use rfid_core::SchedulerRegistry;
use rfid_model::{Deployment, Scenario};
use serde::{Deserialize, Serialize};

// The canonical renderer and content hash moved to `rfid-delta` (the
// delta key derivation needs them without a serve dependency); they are
// re-exported here so existing `rfid_serve::codec::{canonical_json,
// fnv1a64}` callers keep working.
pub use rfid_delta::{canonical_json, fnv1a64};

/// Upper bounds on untrusted workload sizes, so a single request cannot
/// ask the daemon to materialise an absurd deployment.
pub const MAX_READERS: usize = 100_000;
/// See [`MAX_READERS`].
pub const MAX_TAGS: usize = 2_000_000;

/// Where the deployment to schedule comes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Workload {
    /// Generate the deployment server-side from a parametric scenario and
    /// a seed (the cheap, cache-friendly path — a few dozen bytes name
    /// millions of tags).
    Generated {
        /// The parametric scenario.
        scenario: Scenario,
        /// Deployment seed fed to [`Scenario::generate`].
        seed: u64,
    },
    /// Ship the full deployment in the request. Canonicalisation sorts
    /// the tag list by position, so permuted-but-equal tag lists share a
    /// cache entry (and receive identical schedules over the canonical
    /// tag labelling).
    Explicit {
        /// The deployment to schedule.
        deployment: Deployment,
    },
}

/// A complete, self-contained scheduling job: the workload plus every
/// solver option that can change the answer. This is the unit the cache
/// keys on — nothing outside a `JobSpec` may influence the payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// The deployment source.
    pub workload: Workload,
    /// Algorithm label or alias (resolved through [`SchedulerRegistry`];
    /// canonicalisation rewrites aliases to the canonical label).
    pub algorithm: String,
    /// Seed for randomised algorithms (Colorwave's colour draws).
    pub algo_seed: u64,
    /// Run under the resilient fault policy instead of strict.
    pub resilient: bool,
    /// Optional slot budget (`None` = the driver's one-million default).
    pub max_slots: Option<usize>,
}

/// Why a request could not be canonicalised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The algorithm label matched no registry row. The message lists
    /// every accepted spelling.
    UnknownAlgorithm(String),
    /// The workload fails validation (sizes, radii, finiteness).
    InvalidWorkload(String),
    /// The wire text is not a valid `JobSpec`.
    Malformed(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnknownAlgorithm(m) => write!(f, "unknown algorithm: {m}"),
            CodecError::InvalidWorkload(m) => write!(f, "invalid workload: {m}"),
            CodecError::Malformed(m) => write!(f, "malformed job: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl JobSpec {
    /// A job with the default solver options (Algorithm 2 by canonical
    /// label, seed 0, strict policy, default budget).
    pub fn new(workload: Workload) -> Self {
        JobSpec {
            workload,
            algorithm: "alg2-central".to_string(),
            algo_seed: 0,
            resilient: false,
            max_slots: None,
        }
    }

    /// Validates the job and rewrites it into canonical form: the
    /// algorithm becomes the registry's canonical label and explicit tag
    /// lists are sorted by position. Canonicalisation is idempotent.
    pub fn canonicalize(&self, registry: &SchedulerRegistry) -> Result<JobSpec, CodecError> {
        let kind = registry
            .parse(&self.algorithm)
            .map_err(CodecError::UnknownAlgorithm)?;
        let workload = match &self.workload {
            Workload::Generated { scenario, seed } => {
                validate_scenario(scenario)?;
                Workload::Generated {
                    scenario: *scenario,
                    seed: *seed,
                }
            }
            Workload::Explicit { deployment } => Workload::Explicit {
                deployment: canonical_deployment(deployment)?,
            },
        };
        Ok(JobSpec {
            workload,
            algorithm: kind.label().to_string(),
            algo_seed: self.algo_seed,
            resilient: self.resilient,
            max_slots: self.max_slots,
        })
    }
}

fn validate_scenario(s: &Scenario) -> Result<(), CodecError> {
    if !(s.region_side.is_finite() && s.region_side > 0.0) {
        return Err(CodecError::InvalidWorkload(format!(
            "region_side must be finite and positive, got {}",
            s.region_side
        )));
    }
    if s.n_readers > MAX_READERS {
        return Err(CodecError::InvalidWorkload(format!(
            "n_readers {} exceeds the service cap {MAX_READERS}",
            s.n_readers
        )));
    }
    if s.n_tags > MAX_TAGS {
        return Err(CodecError::InvalidWorkload(format!(
            "n_tags {} exceeds the service cap {MAX_TAGS}",
            s.n_tags
        )));
    }
    use rfid_model::RadiusModel::*;
    let radii_ok = match s.radius_model {
        PoissonPair {
            lambda_interference,
            lambda_interrogation,
        } => {
            lambda_interference.is_finite()
                && lambda_interference > 0.0
                && lambda_interrogation.is_finite()
                && lambda_interrogation > 0.0
        }
        Fixed {
            interference,
            interrogation,
        } => interference.is_finite() && interrogation > 0.0 && interrogation <= interference,
        Scaled {
            lambda_interference,
            beta,
        } => {
            lambda_interference.is_finite() && lambda_interference > 0.0 && beta > 0.0 && beta < 1.0
        }
    };
    if !radii_ok {
        return Err(CodecError::InvalidWorkload(format!(
            "radius model parameters out of range: {:?}",
            s.radius_model
        )));
    }
    match s.kind {
        rfid_model::ScenarioKind::ClusteredTags { sigma, .. }
            if !(sigma.is_finite() && sigma > 0.0) =>
        {
            Err(CodecError::InvalidWorkload(format!(
                "cluster sigma must be finite and positive, got {sigma}"
            )))
        }
        _ => Ok(()),
    }
}

/// Validates an untrusted deployment (derived `Deserialize` bypasses
/// [`Deployment::new`]'s asserts) and rebuilds it with the tag list in
/// canonical order: ascending `(x, y)` under IEEE total order.
fn canonical_deployment(d: &Deployment) -> Result<Deployment, CodecError> {
    if d.n_readers() > MAX_READERS {
        return Err(CodecError::InvalidWorkload(format!(
            "{} readers exceeds the service cap {MAX_READERS}",
            d.n_readers()
        )));
    }
    if d.n_tags() > MAX_TAGS {
        return Err(CodecError::InvalidWorkload(format!(
            "{} tags exceeds the service cap {MAX_TAGS}",
            d.n_tags()
        )));
    }
    let n = d.n_readers();
    if d.reader_positions().len() != n
        || d.interference_radii().len() != n
        || d.interrogation_radii().len() != n
    {
        return Err(CodecError::InvalidWorkload(
            "reader position/radius array lengths disagree".to_string(),
        ));
    }
    for (i, p) in d.reader_positions().iter().enumerate() {
        if !p.is_finite() {
            return Err(CodecError::InvalidWorkload(format!(
                "reader {i} has a non-finite position"
            )));
        }
    }
    for (i, p) in d.tag_positions().iter().enumerate() {
        if !p.is_finite() {
            return Err(CodecError::InvalidWorkload(format!(
                "tag {i} has a non-finite position"
            )));
        }
    }
    for i in 0..n {
        let big = d.interference_radii()[i];
        let small = d.interrogation_radii()[i];
        // A fully dead reader (both radii zero — how the delta op
        // `SetReaderAlive(false)` is materialised) is valid; otherwise
        // the interrogation radius must be positive and bounded by the
        // interference radius.
        let dead = big == 0.0 && small == 0.0;
        let alive_ok = big.is_finite() && small.is_finite() && small > 0.0 && small <= big;
        if !(dead || alive_ok) {
            return Err(CodecError::InvalidWorkload(format!(
                "reader {i} radii out of range: interference {big}, interrogation {small}"
            )));
        }
    }
    let mut tags = d.tag_positions().to_vec();
    tags.sort_by(|a, b| a.x.total_cmp(&b.x).then_with(|| a.y.total_cmp(&b.y)));
    Ok(Deployment::new(
        d.region(),
        d.reader_positions().to_vec(),
        d.interference_radii().to_vec(),
        d.interrogation_radii().to_vec(),
        tags,
    ))
}

/// A canonicalised job together with its canonical encoding and content
/// key — everything the cache and the solver need.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalJob {
    /// The canonical job (aliases resolved, tags sorted).
    pub spec: JobSpec,
    /// Canonical JSON encoding of `spec`.
    pub encoded: String,
    /// `fnv1a64(encoded)` — the cache key.
    pub key: u64,
}

impl CanonicalJob {
    /// Canonicalises and encodes a job in one step.
    pub fn new(spec: &JobSpec, registry: &SchedulerRegistry) -> Result<CanonicalJob, CodecError> {
        let spec = spec.canonicalize(registry)?;
        let encoded = canonical_json(&spec);
        let key = fnv1a64(encoded.as_bytes());
        Ok(CanonicalJob { spec, encoded, key })
    }

    /// The key as the fixed-width hex string used on the wire.
    pub fn key_hex(&self) -> String {
        format!("{:016x}", self.key)
    }
}

/// Decodes a job from its JSON encoding (canonical or not — callers
/// re-canonicalise via [`CanonicalJob::new`]).
pub fn decode_job(text: &str) -> Result<JobSpec, CodecError> {
    serde_json::from_str(text).map_err(|e| CodecError::Malformed(e.to_string()))
}

/// What the shallow scan of a request-by-key frame extracted — borrowed
/// slices of the wire line, no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyFrameScan<'a> {
    /// The `key` field, exactly as it appears on the wire (validated
    /// downstream via [`rfid_delta::parse_key_hex`]).
    pub key: &'a str,
    /// The declared protocol version, `None` when absent or `null`.
    pub v: Option<u32>,
    /// The `request_id` field when present and escape-free.
    pub request_id: Option<&'a str>,
    /// Whether a non-empty `ops` array is present — the caller must run
    /// the full parse to materialise the ops.
    pub has_ops: bool,
}

/// Shallowly scans one wire line for a `{"Key":{...}}` frame, extracting
/// the frame type, `key`, `v` and `request_id` without a `serde_json`
/// parse (no allocation, no number/string materialisation). This is the
/// admission path for the protocol-v4 request-by-key fast path: key
/// frames are tiny and their hot fields are flat strings, so a full
/// recursive parse is pure overhead.
///
/// The scanner is deliberately conservative: anything it cannot prove
/// unambiguous — escapes in a field it needs, unknown fields, trailing
/// bytes, malformed structure — returns `None` and the caller falls back
/// to the ordinary `serde_json` decode. It never mis-extracts: string
/// values are skipped with full escape handling, so a hostile
/// `request_id` containing `"key":"…"` cannot spoof the key.
pub fn scan_key_frame(line: &str) -> Option<KeyFrameScan<'_>> {
    let mut s = Scanner::new(line.as_bytes());
    s.skip_ws();
    s.eat(b'{')?;
    s.skip_ws();
    let (tag, escaped) = s.string(line)?;
    if escaped || tag != "Key" {
        return None;
    }
    s.skip_ws();
    s.eat(b':')?;
    s.skip_ws();
    s.eat(b'{')?;
    let mut key = None;
    let mut v = None;
    let mut request_id = None;
    let mut has_ops = false;
    s.skip_ws();
    if !s.try_eat(b'}') {
        loop {
            s.skip_ws();
            let (name, escaped) = s.string(line)?;
            if escaped {
                return None;
            }
            s.skip_ws();
            s.eat(b':')?;
            s.skip_ws();
            match name {
                "key" => {
                    let (val, escaped) = s.string(line)?;
                    if escaped {
                        return None; // content keys are plain hex
                    }
                    key = Some(val);
                }
                "v" => v = s.opt_u32()?,
                "request_id" => {
                    if s.try_literal(b"null") {
                        request_id = None;
                    } else {
                        let (val, escaped) = s.string(line)?;
                        if escaped {
                            return None; // exotic id: let serde handle it
                        }
                        request_id = Some(val);
                    }
                }
                "ops" => {
                    if s.try_literal(b"null") {
                        has_ops = false;
                    } else {
                        has_ops = s.skip_array()?;
                    }
                }
                _ => return None, // unknown field: full parse decides
            }
            s.skip_ws();
            if s.try_eat(b',') {
                continue;
            }
            s.eat(b'}')?;
            break;
        }
    }
    s.skip_ws();
    s.eat(b'}')?;
    s.skip_ws();
    if !s.at_end() {
        return None; // trailing bytes: not one clean frame
    }
    Some(KeyFrameScan {
        key: key?,
        v,
        request_id,
        has_ops,
    })
}

/// Byte cursor for [`scan_key_frame`]. Every method returns `None` on
/// the first byte that does not match the expected shape.
struct Scanner<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Scanner<'a> {
    fn new(b: &'a [u8]) -> Self {
        Scanner { b, i: 0 }
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\r' | b'\n') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn at_end(&self) -> bool {
        self.i >= self.b.len()
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn try_eat(&mut self, c: u8) -> bool {
        self.eat(c).is_some()
    }

    fn try_literal(&mut self, lit: &[u8]) -> bool {
        if self.b[self.i..].starts_with(lit) {
            self.i += lit.len();
            true
        } else {
            false
        }
    }

    /// Consumes a JSON string, returning the raw slice between the
    /// quotes and whether it contained any escape sequences. The slice
    /// indexes back into `line` (the `&str` the bytes came from), so the
    /// result is guaranteed valid UTF-8 on char boundaries whenever
    /// `escaped` is false.
    fn string(&mut self, line: &'a str) -> Option<(&'a str, bool)> {
        self.eat(b'"')?;
        let start = self.i;
        let mut escaped = false;
        loop {
            match self.b.get(self.i)? {
                b'"' => {
                    let raw = line.get(start..self.i)?;
                    self.i += 1;
                    return Some((raw, escaped));
                }
                b'\\' => {
                    escaped = true;
                    self.i += 2; // skip the escape; \uXXXX digits are plain bytes
                }
                _ => self.i += 1,
            }
        }
    }

    /// Consumes `null` or a plain unsigned integer (the only shapes a
    /// protocol version takes). Fractions, exponents and signs bail.
    fn opt_u32(&mut self) -> Option<Option<u32>> {
        if self.try_literal(b"null") {
            return Some(None);
        }
        let start = self.i;
        while self.b.get(self.i).is_some_and(u8::is_ascii_digit) {
            self.i += 1;
        }
        if self.i == start || matches!(self.b.get(self.i), Some(b'.' | b'e' | b'E')) {
            return None;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).ok()?;
        Some(Some(text.parse().ok()?))
    }

    /// Skips a complete JSON array with bracket matching (strings are
    /// skipped escape-aware so brackets inside them don't count).
    /// Returns whether the array held anything but whitespace.
    fn skip_array(&mut self) -> Option<bool> {
        self.eat(b'[')?;
        let mut depth = 1usize;
        let mut nonempty = false;
        while depth > 0 {
            match self.b.get(self.i)? {
                b'"' => {
                    self.i += 1;
                    loop {
                        match self.b.get(self.i)? {
                            b'"' => {
                                self.i += 1;
                                break;
                            }
                            b'\\' => self.i += 2,
                            _ => self.i += 1,
                        }
                    }
                    nonempty = true;
                }
                b'[' | b'{' => {
                    depth += 1;
                    self.i += 1;
                    nonempty = true;
                }
                b']' | b'}' => {
                    depth -= 1;
                    self.i += 1;
                }
                c => {
                    if !matches!(c, b' ' | b'\t' | b'\r' | b'\n') {
                        nonempty = true;
                    }
                    self.i += 1;
                }
            }
        }
        Some(nonempty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geometry::{Point, Rect};
    use rfid_model::{RadiusModel, ScenarioKind};

    fn registry() -> SchedulerRegistry {
        SchedulerRegistry::global()
    }

    fn generated_spec(alias: &str) -> JobSpec {
        JobSpec {
            workload: Workload::Generated {
                scenario: Scenario {
                    kind: ScenarioKind::UniformRandom,
                    n_readers: 10,
                    n_tags: 60,
                    region_side: 50.0,
                    radius_model: RadiusModel::paper_default(),
                },
                seed: 7,
            },
            algorithm: alias.to_string(),
            algo_seed: 3,
            resilient: false,
            max_slots: None,
        }
    }

    fn explicit_spec(tags: Vec<Point>) -> JobSpec {
        let d = Deployment::new(
            Rect::square(20.0),
            vec![Point::new(5.0, 5.0), Point::new(15.0, 15.0)],
            vec![6.0, 6.0],
            vec![3.0, 3.0],
            tags,
        );
        JobSpec::new(Workload::Explicit { deployment: d })
    }

    #[test]
    fn encode_decode_round_trips() {
        let job = CanonicalJob::new(&generated_spec("alg2"), &registry()).unwrap();
        let back = decode_job(&job.encoded).unwrap();
        assert_eq!(back, job.spec);
        // Re-canonicalising the round-tripped spec is a fixed point.
        let again = CanonicalJob::new(&back, &registry()).unwrap();
        assert_eq!(again, job);
    }

    #[test]
    fn aliases_hash_to_the_same_key_as_canonical_labels() {
        let reg = registry();
        let a = CanonicalJob::new(&generated_spec("alg2"), &reg).unwrap();
        let b = CanonicalJob::new(&generated_spec("ALG2-Central"), &reg).unwrap();
        let c = CanonicalJob::new(&generated_spec("central"), &reg).unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.encoded, c.encoded);
        assert_eq!(a.spec.algorithm, "alg2-central");
    }

    #[test]
    fn reordered_tag_lists_hash_identically() {
        let reg = registry();
        let tags = vec![
            Point::new(4.0, 4.0),
            Point::new(16.0, 14.0),
            Point::new(6.0, 5.0),
            Point::new(16.0, 2.0),
        ];
        let mut reversed = tags.clone();
        reversed.reverse();
        let a = CanonicalJob::new(&explicit_spec(tags), &reg).unwrap();
        let b = CanonicalJob::new(&explicit_spec(reversed), &reg).unwrap();
        assert_eq!(a.encoded, b.encoded);
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn different_content_yields_different_keys() {
        let reg = registry();
        let a = CanonicalJob::new(&generated_spec("alg2"), &reg).unwrap();
        let mut other = generated_spec("alg2");
        other.algo_seed = 4;
        let b = CanonicalJob::new(&other, &reg).unwrap();
        assert_ne!(a.key, b.key);
        let mut ghc = generated_spec("ghc");
        ghc.algo_seed = 3;
        let c = CanonicalJob::new(&ghc, &reg).unwrap();
        assert_ne!(a.key, c.key);
    }

    #[test]
    fn unknown_algorithm_is_a_structured_error() {
        let err = CanonicalJob::new(&generated_spec("nope"), &registry()).unwrap_err();
        match &err {
            CodecError::UnknownAlgorithm(m) => assert!(m.contains("alg2-central"), "{m}"),
            other => panic!("wrong error: {other:?}"),
        }
        assert!(err.to_string().contains("unknown algorithm"));
    }

    #[test]
    fn oversized_and_degenerate_workloads_are_rejected() {
        let mut spec = generated_spec("alg2");
        if let Workload::Generated { scenario, .. } = &mut spec.workload {
            scenario.n_readers = MAX_READERS + 1;
        }
        assert!(matches!(
            CanonicalJob::new(&spec, &registry()).unwrap_err(),
            CodecError::InvalidWorkload(_)
        ));
        let mut spec = generated_spec("alg2");
        if let Workload::Generated { scenario, .. } = &mut spec.workload {
            scenario.region_side = f64::NAN;
        }
        assert!(matches!(
            CanonicalJob::new(&spec, &registry()).unwrap_err(),
            CodecError::InvalidWorkload(_)
        ));
    }

    #[test]
    fn invalid_explicit_deployments_error_instead_of_panicking() {
        // Build a hostile deployment by deserialising (bypasses
        // `Deployment::new`'s asserts, exactly like untrusted wire input).
        let hostile = r#"{"region":{"min_x":0.0,"min_y":0.0,"max_x":10.0,"max_y":10.0},
            "reader_pos":[{"x":1.0,"y":1.0}],
            "interference_r":[2.0],
            "interrogation_r":[5.0],
            "tag_pos":[]}"#;
        let d: Deployment = serde_json::from_str(hostile).unwrap();
        let spec = JobSpec::new(Workload::Explicit { deployment: d });
        let err = CanonicalJob::new(&spec, &registry()).unwrap_err();
        assert!(matches!(err, CodecError::InvalidWorkload(_)), "{err}");
    }

    #[test]
    fn dead_readers_with_zeroed_radii_are_accepted() {
        // `SetReaderAlive(false)` materialises as both radii zero; the
        // validator must admit such deployments. A zero interrogation
        // radius with a nonzero interference radius stays rejected.
        let d = Deployment::new(
            Rect::square(20.0),
            vec![Point::new(5.0, 5.0), Point::new(15.0, 15.0)],
            vec![6.0, 0.0],
            vec![3.0, 0.0],
            vec![Point::new(4.0, 4.0)],
        );
        let spec = JobSpec::new(Workload::Explicit { deployment: d });
        let job = CanonicalJob::new(&spec, &registry()).unwrap();
        assert_eq!(job.spec, job.spec.canonicalize(&registry()).unwrap());
    }

    #[test]
    fn canonical_json_sorts_keys_at_every_depth() {
        let v: serde_json::Value =
            serde_json::from_str(r#"{"b":1,"a":{"z":[{"y":2,"x":3}],"w":4}}"#).unwrap();
        assert_eq!(
            canonical_json(&v),
            r#"{"a":{"w":4,"z":[{"x":3,"y":2}]},"b":1}"#
        );
    }

    #[test]
    fn scan_extracts_key_v_and_request_id_from_wire_frames() {
        use crate::protocol::{encode_frame, Request, PROTOCOL_VERSION};
        let frame = Request::Key {
            key: "00000000000000ff".into(),
            ops: None,
            request_id: Some("c1-42".into()),
            v: Some(PROTOCOL_VERSION),
        };
        let line = encode_frame(&frame);
        let scan = scan_key_frame(&line).expect("wire frame must scan");
        assert_eq!(scan.key, "00000000000000ff");
        assert_eq!(scan.v, Some(PROTOCOL_VERSION));
        assert_eq!(scan.request_id, Some("c1-42"));
        assert!(!scan.has_ops);

        let frame = Request::Key {
            key: "00000000000000ff".into(),
            ops: Some(vec![rfid_delta::ScenarioDelta::AddTag { x: 1.5, y: 2.5 }]),
            request_id: None,
            v: None,
        };
        let line = encode_frame(&frame);
        let scan = scan_key_frame(&line).unwrap();
        assert_eq!(scan.key, "00000000000000ff");
        assert_eq!(scan.v, None);
        assert_eq!(scan.request_id, None);
        assert!(scan.has_ops, "non-empty ops must force the full parse");

        // Empty ops array: nothing to materialise, fast path stays open.
        let scan = scan_key_frame(r#"{"Key":{"key":"00000000000000ff","ops":[],"v":4}}"#).unwrap();
        assert!(!scan.has_ops);
    }

    #[test]
    fn scan_rejects_non_key_and_malformed_frames() {
        use crate::protocol::{encode_frame, Request};
        assert_eq!(scan_key_frame(&encode_frame(&Request::Stats)), None);
        assert_eq!(
            scan_key_frame(&encode_frame(&Request::Hello { v: 4 })),
            None
        );
        for bad in [
            "",
            "{",
            r#"{"Key":"#,
            r#"{"Key":{"key":"ff"}"#,            // unterminated outer object
            r#"{"Key":{"key":"ff"}}{"Key":{}}"#, // trailing bytes
            r#"{"Key":{"keg":"ff"}}"#,           // unknown field
            r#"{"Key":{"key":"ff","v":4.5}}"#,   // non-integer version
            r#"{"Key":{"v":4}}"#,                // no key at all
            r#"{"Key":{"key":"ff" "v":4}}"#,     // missing comma
            r#"{"Key":[1,2]}"#,                  // wrong value shape
        ] {
            assert_eq!(scan_key_frame(bad), None, "must bail on {bad:?}");
        }
    }

    #[test]
    fn scan_cannot_be_spoofed_by_hostile_string_values() {
        // A request_id whose *content* looks like a key field: the
        // escape-aware string skip must not let it shadow the real key.
        let line = r#"{"Key":{"key":"00000000000000aa","request_id":"x\",\"key\":\"00000000000000bb","v":4}}"#;
        // The id contains escapes, so the scanner bails to the full
        // parse rather than guessing — and serde agrees on the real key.
        assert_eq!(scan_key_frame(line), None);
        let parsed: crate::protocol::Request = crate::protocol::decode_frame(line).unwrap();
        match parsed {
            crate::protocol::Request::Key { key, .. } => assert_eq!(key, "00000000000000aa"),
            other => panic!("wrong frame: {other:?}"),
        }
        // Same trick inside an ops array: the array is skipped
        // escape-aware, the scanned key stays the real one.
        let line =
            r#"{"Key":{"key":"00000000000000aa","ops":["\",\"key\":\"00000000000000bb"],"v":4}}"#;
        let scan = scan_key_frame(line).unwrap();
        assert_eq!(scan.key, "00000000000000aa");
        assert!(scan.has_ops);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
