//! Canonical encoding and content keys for deltas (and everything else).
//!
//! The canonical-JSON renderer and the FNV-1a content hash used to live
//! in the serve codec; they moved here so the delta key derivation —
//! which must agree byte-for-byte between clients, servers and the
//! bench harness — has one home with no serve dependency. Serve
//! re-exports both, so `rfid_serve::codec::{canonical_json, fnv1a64}`
//! keep working.
//!
//! A delta request names its scenario as `{base, ops}`: the base's
//! content key plus an op list. [`derived_key`] chains a new 64-bit key
//! off the base key by hashing the base's fixed-width hex form, a `|`
//! separator and the canonical JSON of the op list — computable by
//! anyone who knows the base *key* (no need for the base scenario), and
//! associative in the sense that distinct `(base, ops)` pairs get
//! distinct keys with FNV's usual collision odds.

use crate::ops::ScenarioDelta;
use serde::{Content, Serialize};

/// Renders any serialisable value as canonical JSON: compact, with every
/// object's keys sorted. Two semantically equal content trees always
/// produce byte-identical text.
pub fn canonical_json<T: Serialize + ?Sized>(value: &T) -> String {
    let mut content = value.to_content();
    sort_maps(&mut content);
    serde_json::to_string(&serde_json::Value(content)).expect("canonical render cannot fail")
}

fn sort_maps(content: &mut Content) {
    match content {
        Content::Map(entries) => {
            for (_, v) in entries.iter_mut() {
                sort_maps(v);
            }
            entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        }
        Content::Seq(items) => {
            for item in items {
                sort_maps(item);
            }
        }
        _ => {}
    }
}

/// 64-bit FNV-1a — the content hash behind every cache key. Hand-rolled
/// so the key is stable across platforms, processes and Rust versions
/// (unlike `DefaultHasher`, which is seeded per process).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Renders a content key in the fixed-width hex form used on the wire.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

/// Parses a fixed-width hex key back to its 64-bit value.
pub fn parse_key_hex(hex: &str) -> Option<u64> {
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// The content key of "the base scenario named by `base_key`, edited by
/// `ops`": FNV-1a over `<base hex>|<canonical ops JSON>`.
pub fn derived_key(base_key: u64, ops: &[ScenarioDelta]) -> u64 {
    let text = format!("{}|{}", key_hex(base_key), canonical_json(ops));
    fnv1a64(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn canonical_json_sorts_keys_at_every_depth() {
        let v: serde_json::Value =
            serde_json::from_str(r#"{"b":1,"a":{"z":[{"y":2,"x":3}],"w":4}}"#).unwrap();
        assert_eq!(
            canonical_json(&v),
            r#"{"a":{"w":4,"z":[{"x":3,"y":2}]},"b":1}"#
        );
    }

    #[test]
    fn key_hex_round_trips() {
        for key in [0u64, 1, 0xdead_beef_cafe_f00d, u64::MAX] {
            assert_eq!(parse_key_hex(&key_hex(key)), Some(key));
        }
        assert_eq!(parse_key_hex("xyz"), None);
        assert_eq!(parse_key_hex("00"), None);
        assert_eq!(parse_key_hex("zzzzzzzzzzzzzzzz"), None);
    }

    #[test]
    fn derived_keys_chain_off_base_and_ops() {
        let ops_a = vec![ScenarioDelta::AddTag { x: 1.0, y: 2.0 }];
        let ops_b = vec![ScenarioDelta::AddTag { x: 1.0, y: 2.5 }];
        let k = derived_key(42, &ops_a);
        assert_ne!(k, derived_key(43, &ops_a), "base key must matter");
        assert_ne!(k, derived_key(42, &ops_b), "ops must matter");
        assert_eq!(k, derived_key(42, &ops_a.clone()), "deterministic");
        // Chaining: a second hop derives off the first derived key.
        let k2 = derived_key(k, &ops_b);
        assert_ne!(k2, k);
    }
}
