//! The scenario-delta op model: small edits to an existing deployment.
//!
//! A [`ScenarioDelta`] describes one evolution step of a deployment the
//! way the workloads the paper targets actually change: tags arrive and
//! depart, readers move, fail, recover or get retuned. Ops apply
//! *sequentially* — each op's indices refer to the deployment as edited
//! by the ops before it — and [`apply_ops`] folds a whole op list into a
//! [`PatchedScenario`]: the edited deployment plus exactly the
//! provenance the incremental machinery needs (which new tag was which
//! old tag, which readers' geometry changed).

use rfid_geometry::Point;
use rfid_model::Deployment;
use serde::{Deserialize, Serialize};

/// One edit to a deployment. Tag and reader indices refer to the
/// deployment *as edited by the preceding ops of the same list*; for the
/// first op that is the base deployment in its canonical order (explicit
/// workloads sort tags by position — see the serve codec — and generated
/// workloads use generation order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioDelta {
    /// A tag arrives at `(x, y)`; it is appended after the existing tags.
    AddTag {
        /// Tag x position.
        x: f64,
        /// Tag y position.
        y: f64,
    },
    /// Tag `tag` departs; later tags shift down by one.
    RemoveTag {
        /// Index of the departing tag.
        tag: u32,
    },
    /// Reader `reader` moves to `(x, y)` (radii unchanged).
    MoveReader {
        /// Index of the moving reader.
        reader: u32,
        /// New x position.
        x: f64,
        /// New y position.
        y: f64,
    },
    /// Marks a reader dead (`alive = false`: both radii become zero — it
    /// covers nothing and jams nobody) or revives it (`alive = true`:
    /// radii return to the base deployment's values, or to the last
    /// [`Retune`](ScenarioDelta::Retune) in this op list).
    SetReaderAlive {
        /// Index of the affected reader.
        reader: u32,
        /// `false` kills the reader, `true` revives it.
        alive: bool,
    },
    /// Reassigns reader `reader`'s interference radius `R` and
    /// interrogation radius `r` (the model requires `0 ≤ r ≤ R`). A
    /// retune of a currently dead reader takes effect on revival.
    Retune {
        /// Index of the retuned reader.
        reader: u32,
        /// New interference radius `R`.
        interference: f64,
        /// New interrogation radius `r`.
        interrogation: f64,
    },
}

/// Why an op list could not be applied.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// A tag index is out of range for the deployment at that point of
    /// the op list.
    TagOutOfRange {
        /// The offending index.
        tag: u32,
        /// Tag count when the op applied.
        len: usize,
    },
    /// A reader index is out of range (reader count never changes).
    ReaderOutOfRange {
        /// The offending index.
        reader: u32,
        /// Reader count.
        len: usize,
    },
    /// A position is non-finite.
    BadPosition {
        /// Offending x.
        x: f64,
        /// Offending y.
        y: f64,
    },
    /// Retuned radii violate `0 ≤ r ≤ R` (finite).
    BadRadii {
        /// The retuned reader.
        reader: u32,
        /// Offending interference radius.
        interference: f64,
        /// Offending interrogation radius.
        interrogation: f64,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::TagOutOfRange { tag, len } => {
                write!(
                    f,
                    "tag index {tag} out of range (deployment has {len} tags)"
                )
            }
            DeltaError::ReaderOutOfRange { reader, len } => {
                write!(
                    f,
                    "reader index {reader} out of range (deployment has {len} readers)"
                )
            }
            DeltaError::BadPosition { x, y } => {
                write!(f, "non-finite position ({x}, {y})")
            }
            DeltaError::BadRadii {
                reader,
                interference,
                interrogation,
            } => write!(
                f,
                "reader {reader} radii out of range: interference {interference}, \
                 interrogation {interrogation} (need finite 0 ≤ r ≤ R)"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// The result of applying an op list: the edited deployment plus the
/// provenance [`rfid_model::Coverage::patched`] and the repair engine
/// consume.
#[derive(Debug, Clone, PartialEq)]
pub struct PatchedScenario {
    /// The edited deployment.
    pub deployment: Deployment,
    /// For each tag of the edited deployment, its index in the base
    /// deployment (`None` for tags added by the op list).
    pub old_index: Vec<Option<u32>>,
    /// Readers whose position or effective radii differ from the base,
    /// ascending.
    pub touched_readers: Vec<u32>,
}

/// Applies `ops` to `base` in order. Fails on the first invalid op; the
/// base deployment is never modified.
pub fn apply_ops(base: &Deployment, ops: &[ScenarioDelta]) -> Result<PatchedScenario, DeltaError> {
    let n = base.n_readers();
    let mut reader_pos = base.reader_positions().to_vec();
    // The radii a reader *wants* (base values, updated by `Retune`);
    // `alive = false` overrides both to zero until revival.
    let mut tuned: Vec<(f64, f64)> = base
        .interference_radii()
        .iter()
        .zip(base.interrogation_radii())
        .map(|(&big, &small)| (big, small))
        .collect();
    let mut alive = vec![true; n];
    let base_m = base.n_tags();
    let mut tag_pos = base.tag_positions().to_vec();
    // `RemoveTag` addresses the *live* sequence, whose indices shift as
    // earlier removals land. Rather than `Vec::remove` (an O(m)
    // memmove per op), keep every physical slot in place and tombstone:
    // `dead` holds removed physical indices, ascending, and live →
    // physical mapping walks it. Compaction happens once at the end.
    let mut dead: Vec<u32> = Vec::new();
    let mut live_len = base_m;

    let check_reader = |reader: u32| -> Result<usize, DeltaError> {
        if (reader as usize) < n {
            Ok(reader as usize)
        } else {
            Err(DeltaError::ReaderOutOfRange { reader, len: n })
        }
    };
    for op in ops {
        match *op {
            ScenarioDelta::AddTag { x, y } => {
                if !(x.is_finite() && y.is_finite()) {
                    return Err(DeltaError::BadPosition { x, y });
                }
                tag_pos.push(Point::new(x, y));
                live_len += 1;
            }
            ScenarioDelta::RemoveTag { tag } => {
                if tag as usize >= live_len {
                    return Err(DeltaError::TagOutOfRange { tag, len: live_len });
                }
                // Live → physical: every tombstone at or below the
                // cursor pushes it one slot right.
                let mut p = tag;
                for &d0 in &dead {
                    if d0 <= p {
                        p += 1;
                    } else {
                        break;
                    }
                }
                let at = dead.partition_point(|&x| x < p);
                dead.insert(at, p);
                live_len -= 1;
            }
            ScenarioDelta::MoveReader { reader, x, y } => {
                let i = check_reader(reader)?;
                if !(x.is_finite() && y.is_finite()) {
                    return Err(DeltaError::BadPosition { x, y });
                }
                reader_pos[i] = Point::new(x, y);
            }
            ScenarioDelta::SetReaderAlive { reader, alive: up } => {
                let i = check_reader(reader)?;
                alive[i] = up;
            }
            ScenarioDelta::Retune {
                reader,
                interference,
                interrogation,
            } => {
                let i = check_reader(reader)?;
                let ok = interference.is_finite()
                    && interrogation.is_finite()
                    && interrogation >= 0.0
                    && interrogation <= interference;
                if !ok {
                    return Err(DeltaError::BadRadii {
                        reader,
                        interference,
                        interrogation,
                    });
                }
                tuned[i] = (interference, interrogation);
            }
        }
    }

    // Compact the tombstoned array in place: survivors keep their
    // relative order, appended tags trail, exactly as eager removal
    // would leave them.
    let mut old_index = Vec::with_capacity(live_len);
    let mut next_dead = dead.iter().copied().peekable();
    let mut dst = 0usize;
    for p in 0..tag_pos.len() {
        if next_dead.peek() == Some(&(p as u32)) {
            next_dead.next();
            continue;
        }
        tag_pos[dst] = tag_pos[p];
        old_index.push(if p < base_m { Some(p as u32) } else { None });
        dst += 1;
    }
    tag_pos.truncate(dst);

    let interference_r: Vec<f64> = (0..n)
        .map(|i| if alive[i] { tuned[i].0 } else { 0.0 })
        .collect();
    let interrogation_r: Vec<f64> = (0..n)
        .map(|i| if alive[i] { tuned[i].1 } else { 0.0 })
        .collect();
    let touched_readers: Vec<u32> = (0..n)
        .filter(|&i| {
            reader_pos[i] != base.reader_positions()[i]
                || interference_r[i] != base.interference_radii()[i]
                || interrogation_r[i] != base.interrogation_radii()[i]
        })
        .map(|i| i as u32)
        .collect();
    let deployment = Deployment::new(
        base.region(),
        reader_pos,
        interference_r,
        interrogation_r,
        tag_pos,
    );
    Ok(PatchedScenario {
        deployment,
        old_index,
        touched_readers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geometry::Rect;

    fn base() -> Deployment {
        Deployment::new(
            Rect::square(30.0),
            vec![Point::new(5.0, 5.0), Point::new(20.0, 20.0)],
            vec![6.0, 8.0],
            vec![3.0, 4.0],
            vec![
                Point::new(4.0, 4.0),
                Point::new(6.0, 6.0),
                Point::new(21.0, 19.0),
            ],
        )
    }

    #[test]
    fn empty_ops_are_the_identity() {
        let d = base();
        let p = apply_ops(&d, &[]).unwrap();
        assert_eq!(p.deployment, d);
        assert_eq!(p.old_index, vec![Some(0), Some(1), Some(2)]);
        assert!(p.touched_readers.is_empty());
    }

    #[test]
    fn tag_ops_track_provenance_through_shifts() {
        let d = base();
        let p = apply_ops(
            &d,
            &[
                ScenarioDelta::RemoveTag { tag: 1 },
                ScenarioDelta::AddTag { x: 10.0, y: 10.0 },
                ScenarioDelta::RemoveTag { tag: 0 },
            ],
        )
        .unwrap();
        // Survivors: old tag 2, then the added tag.
        assert_eq!(p.old_index, vec![Some(2), None]);
        assert_eq!(p.deployment.n_tags(), 2);
        assert_eq!(p.deployment.tag(1), Point::new(10.0, 10.0));
        assert!(p.touched_readers.is_empty());
    }

    #[test]
    fn kill_revive_and_retune_interact() {
        let d = base();
        // Kill 0, retune it while dead, revive it: the retune applies.
        let p = apply_ops(
            &d,
            &[
                ScenarioDelta::SetReaderAlive {
                    reader: 0,
                    alive: false,
                },
                ScenarioDelta::Retune {
                    reader: 0,
                    interference: 7.0,
                    interrogation: 2.0,
                },
                ScenarioDelta::SetReaderAlive {
                    reader: 0,
                    alive: true,
                },
            ],
        )
        .unwrap();
        assert_eq!(p.deployment.interference_radii()[0], 7.0);
        assert_eq!(p.deployment.interrogation_radii()[0], 2.0);
        assert_eq!(p.touched_readers, vec![0]);

        // A kill that stays dead zeroes both radii.
        let p = apply_ops(
            &d,
            &[ScenarioDelta::SetReaderAlive {
                reader: 1,
                alive: false,
            }],
        )
        .unwrap();
        assert_eq!(p.deployment.interference_radii()[1], 0.0);
        assert_eq!(p.deployment.interrogation_radii()[1], 0.0);
        assert_eq!(p.touched_readers, vec![1]);

        // Kill + revive with no retune is the identity (untouched).
        let p = apply_ops(
            &d,
            &[
                ScenarioDelta::SetReaderAlive {
                    reader: 1,
                    alive: false,
                },
                ScenarioDelta::SetReaderAlive {
                    reader: 1,
                    alive: true,
                },
            ],
        )
        .unwrap();
        assert!(p.touched_readers.is_empty());
        assert_eq!(p.deployment, d);
    }

    #[test]
    fn invalid_ops_are_structured_errors() {
        let d = base();
        assert_eq!(
            apply_ops(&d, &[ScenarioDelta::RemoveTag { tag: 3 }]).unwrap_err(),
            DeltaError::TagOutOfRange { tag: 3, len: 3 }
        );
        assert_eq!(
            apply_ops(
                &d,
                &[ScenarioDelta::MoveReader {
                    reader: 2,
                    x: 0.0,
                    y: 0.0
                }]
            )
            .unwrap_err(),
            DeltaError::ReaderOutOfRange { reader: 2, len: 2 }
        );
        assert!(matches!(
            apply_ops(
                &d,
                &[ScenarioDelta::AddTag {
                    x: f64::NAN,
                    y: 0.0
                }]
            )
            .unwrap_err(),
            DeltaError::BadPosition { .. }
        ));
        assert!(matches!(
            apply_ops(
                &d,
                &[ScenarioDelta::Retune {
                    reader: 0,
                    interference: 2.0,
                    interrogation: 3.0
                }]
            )
            .unwrap_err(),
            DeltaError::BadRadii { .. }
        ));
    }

    #[test]
    fn ops_round_trip_through_serde() {
        let ops = vec![
            ScenarioDelta::AddTag { x: 1.5, y: 2.5 },
            ScenarioDelta::RemoveTag { tag: 0 },
            ScenarioDelta::MoveReader {
                reader: 1,
                x: 3.0,
                y: 4.0,
            },
            ScenarioDelta::SetReaderAlive {
                reader: 0,
                alive: false,
            },
            ScenarioDelta::Retune {
                reader: 1,
                interference: 9.0,
                interrogation: 3.0,
            },
        ];
        let text = serde_json::to_string(&ops).unwrap();
        let back: Vec<ScenarioDelta> = serde_json::from_str(&text).unwrap();
        assert_eq!(back, ops);
    }
}
