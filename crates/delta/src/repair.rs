//! Incremental schedule repair: patch the previous run, don't re-solve.
//!
//! Given the base scenario, its covering schedule and an applied delta,
//! [`repair_schedule`] produces a valid covering schedule for the
//! *patched* scenario in three steps:
//!
//! 1. **Patch the derived structures.** Coverage comes from
//!    [`Coverage::patched`] (old rows carried over, touched readers
//!    re-tested) and the interference graph from an edge-level patch of
//!    the base CSR — both skip the full geometric rebuild, which at
//!    scale costs as much as the greedy solve itself.
//! 2. **Replay the base activation sequence.** Each base slot is
//!    re-audited against the patched geometry: dead readers drop out,
//!    slots containing touched readers get their feasibility repaired
//!    (the lower-singleton-weight member of each RTc pair is dropped),
//!    and the served set is recomputed by multiplicity counting over the
//!    slot's coverage rows — so a slot whose well-covered set changed
//!    serves exactly what Definition 1 still grants it, and untouched
//!    slots replay at memory speed. Slots left serving nothing are
//!    elided.
//! 3. **Append a greedy suffix.** Whatever the replay left unread
//!    (departed coverage, newly arrived tags) is handed to the ordinary
//!    lazy-greedy driver seeded with the replay's unread set
//!    (`McsOptions::initial_unread`), which completes the cover.
//!
//! Two guards bound the quality loss against a cold solve: when the
//! *dirty fraction* (tags added, removed, or with changed coverage rows
//! over the patched tag count) exceeds
//! [`RepairOptions::max_dirty_fraction`], or when the merged schedule
//! ends up longer than ρ× the base schedule, the engine falls back to a
//! cold solve of the patched scenario and reports it.

use crate::ops::PatchedScenario;
use rfid_core::{
    covering_schedule, AlgorithmKind, CoveringSchedule, McsOptions, McsRun, ScheduleError,
    SlotRecord,
};
use rfid_graph::Csr;
use rfid_model::interference::interference_graph;
use rfid_model::{audit_activation, Coverage, Deployment, TagSet};

/// Tuning knobs for [`repair_schedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOptions {
    /// Algorithm used for the appended suffix and any cold fallback.
    pub algorithm: AlgorithmKind,
    /// Seed for randomised algorithms.
    pub seed: u64,
    /// Cold-solve when more than this fraction of the patched tag set is
    /// dirty (added, removed, or covered differently). `0.0` forces the
    /// cold path for any non-trivial delta.
    pub max_dirty_fraction: f64,
    /// Quality bound ρ: cold-solve when the repaired schedule exceeds
    /// `ρ × base_size + 1` slots.
    pub rho: f64,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            algorithm: AlgorithmKind::default(),
            seed: 0,
            max_dirty_fraction: 0.25,
            rho: 1.5,
        }
    }
}

/// What [`repair_schedule`] did and produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairReport {
    /// The run for the patched scenario (valid covering schedule).
    pub run: McsRun,
    /// Base slots that survived the replay (possibly with repaired
    /// activation sets).
    pub kept_slots: usize,
    /// Slots the greedy suffix added.
    pub appended_slots: usize,
    /// Tags counted dirty by the invalidation pass (added + removed +
    /// coverage-row changes).
    pub dirty_tags: usize,
    /// `true` when a guard tripped and the result is a cold solve.
    pub cold_fallback: bool,
}

/// Repairs `base_run` into a covering schedule for `patch.deployment`.
///
/// `base_coverage` and `base_graph` must be the structures `base_run`
/// was solved with. Errors only if a (cold or suffix) solve exhausts the
/// driver's slot budget — impossible for ordinary scenarios.
pub fn repair_schedule(
    base: &Deployment,
    base_coverage: &Coverage,
    base_graph: &Csr,
    base_run: &McsRun,
    patch: &PatchedScenario,
    options: &RepairOptions,
) -> Result<RepairReport, ScheduleError> {
    let d = &patch.deployment;
    let m_new = d.n_tags();
    let coverage = Coverage::patched(d, base_coverage, &patch.old_index, &patch.touched_readers);

    // Dirty-tag invalidation: anything added, removed, or whose coverage
    // row could differ (covered by a touched reader before or after).
    let added = patch.old_index.iter().filter(|src| src.is_none()).count();
    let removed = base.n_tags() - (patch.old_index.len() - added);
    let dirty_tags = if patch.touched_readers.is_empty() {
        // Pure tag churn: survivor rows are untouched by construction,
        // so the dirty set is exactly the adds and removes.
        added + removed
    } else {
        let mut new_index = vec![u32::MAX; base.n_tags()];
        let mut dirty = vec![false; m_new];
        for (t_new, &src) in patch.old_index.iter().enumerate() {
            match src {
                Some(t_old) => new_index[t_old as usize] = t_new as u32,
                None => dirty[t_new] = true,
            }
        }
        for &i in &patch.touched_readers {
            for &t_old in base_coverage.tags_of(i as usize) {
                let t_new = new_index[t_old as usize];
                if t_new != u32::MAX {
                    dirty[t_new as usize] = true;
                }
            }
            for &t_new in coverage.tags_of(i as usize) {
                dirty[t_new as usize] = true;
            }
        }
        dirty.iter().filter(|&&b| b).count() + removed
    };
    let dirty_fraction = dirty_tags as f64 / m_new.max(1) as f64;

    let cold = |coverage: &Coverage, dirty_tags: usize| -> Result<RepairReport, ScheduleError> {
        let graph = interference_graph(d);
        let run = covering_schedule(
            d,
            coverage,
            &graph,
            &McsOptions::new()
                .algorithm(options.algorithm)
                .seed(options.seed),
        )?;
        let appended = run.schedule.size();
        Ok(RepairReport {
            run,
            kept_slots: 0,
            appended_slots: appended,
            dirty_tags,
            cold_fallback: true,
        })
    };
    if dirty_fraction > options.max_dirty_fraction {
        return cold(&coverage, dirty_tags);
    }

    // Replay the base activation sequence against the patched scenario.
    // A slot's activation set is small, so per-slot multiplicity
    // counting over its coverage rows beats building the popcount-plane
    // machinery the full solver amortises across its whole greedy loop.
    let singleton = |v: usize, unread: &TagSet| {
        coverage
            .tags_of(v)
            .iter()
            .filter(|&&t| unread.is_unread(t as usize))
            .count()
    };
    let mut touched = vec![false; d.n_readers()];
    for &i in &patch.touched_readers {
        touched[i as usize] = true;
    }
    let mut unread = TagSet::all_unread(m_new);
    let mut kept: Vec<SlotRecord> = Vec::with_capacity(base_run.schedule.size());
    let mut repaired_pairs = 0usize;
    let mut count = vec![0u8; m_new];
    let mut covered: Vec<u32> = Vec::new();
    let mut served_bits = vec![0u64; m_new.div_ceil(64)];
    let mut served = Vec::new();
    let mut served_total = 0usize;
    for slot in &base_run.schedule.slots {
        // Mute readers (dead, or retuned to r = 0) serve nothing; drop
        // them before the feasibility audit.
        let mut active: Vec<usize> = slot
            .active
            .iter()
            .copied()
            .filter(|&v| d.interrogation_radii()[v] > 0.0)
            .collect();
        // Geometry changes can only break feasibility through a touched
        // member; untouched slots replay without the O(|X|²) audit.
        if active.iter().any(|&v| touched[v]) {
            while !d.is_feasible(&active) {
                let audit = audit_activation(d, &coverage, &active, &unread);
                let (v, u) = audit.rtc_pairs[0];
                let loser = if singleton(v, &unread) <= singleton(u, &unread) {
                    v
                } else {
                    u
                };
                active.retain(|&r| r != loser);
                repaired_pairs += 1;
            }
        }
        // Definition 1: a tag is read iff exactly one active reader
        // covers it. Count multiplicities, then reset only what was
        // touched so the scratch array stays clean across slots.
        covered.clear();
        for &v in &active {
            for &t in coverage.tags_of(v) {
                let c = &mut count[t as usize];
                if *c == 0 {
                    covered.push(t);
                }
                *c = c.saturating_add(1);
            }
        }
        let mut any = false;
        for &t in &covered {
            if count[t as usize] == 1 && unread.is_unread(t as usize) {
                served_bits[t as usize / 64] |= 1u64 << (t % 64);
                any = true;
            }
            count[t as usize] = 0;
        }
        if !any {
            continue;
        }
        // Bitmap extraction gives the canonical ascending order —
        // matching the solver's, keeping the empty-delta replay
        // byte-identical — without sorting the served list.
        served.clear();
        for (w, word) in served_bits.iter_mut().enumerate() {
            let mut bits = std::mem::take(word);
            while bits != 0 {
                served.push(w * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
        unread.mark_all_read(&served);
        served_total += served.len();
        kept.push(SlotRecord {
            active,
            served: std::mem::take(&mut served),
            fallback: slot.fallback,
        });
    }

    // Greedy suffix over whatever the replay left unread. Everything
    // the replay served is coverable, so the remaining coverable count
    // falls out of the served tally — no per-tag unread scan.
    let uncoverable: Vec<usize> = coverage
        .tag_degrees()
        .enumerate()
        .filter_map(|(t, deg)| (deg == 0).then_some(t))
        .collect();
    let remaining_coverable = m_new - uncoverable.len() - served_total;
    let (mut slots, mut run_tail) = (kept, None);
    if remaining_coverable > 0 {
        // The interference graph only feeds the suffix solve; a replay
        // that already covers everything never pays for it.
        let graph = patched_graph(base_graph, d, &patch.touched_readers);
        let suffix = covering_schedule(
            d,
            &coverage,
            &graph,
            &McsOptions::new()
                .algorithm(options.algorithm)
                .seed(options.seed)
                .initial_unread(&unread),
        )?;
        run_tail = Some(suffix);
    }
    let kept_slots = slots.len();
    let mut appended_slots = 0;
    let (mut crashed_dropped, mut abandoned_tags) = (0, Vec::new());
    if let Some(suffix) = run_tail {
        appended_slots = suffix.schedule.size();
        repaired_pairs += suffix.repaired_pairs;
        crashed_dropped = suffix.crashed_dropped;
        abandoned_tags = suffix.abandoned_tags;
        slots.extend(suffix.schedule.slots);
    }

    // Quality gate: a repair that drifted past ρ× the base size loses to
    // re-solving; do that instead.
    let bound = (options.rho * base_run.schedule.size() as f64).ceil() as usize + 1;
    if slots.len() > bound {
        return cold(&coverage, dirty_tags);
    }

    Ok(RepairReport {
        run: McsRun {
            schedule: CoveringSchedule { slots, uncoverable },
            slot_metrics: Vec::new(),
            repaired_pairs,
            crashed_dropped,
            abandoned_tags,
        },
        kept_slots,
        appended_slots,
        dirty_tags,
        cold_fallback: false,
    })
}

/// Patches the base interference CSR for the touched readers: edges
/// between untouched pairs carry over; every edge incident to a touched
/// reader is recomputed from Definition 2 against the new geometry.
fn patched_graph(base_graph: &Csr, d: &Deployment, touched_readers: &[u32]) -> Csr {
    if touched_readers.is_empty() {
        return base_graph.clone();
    }
    let n = d.n_readers();
    let mut touched = vec![false; n];
    for &i in touched_readers {
        touched[i as usize] = true;
    }
    let mut edges: Vec<(usize, usize)> = base_graph
        .edges()
        .into_iter()
        .filter(|&(a, b)| !touched[a] && !touched[b])
        .collect();
    for &i in touched_readers {
        let i = i as usize;
        for j in 0..n {
            if j != i && !d.independent(i, j) {
                // `Csr::from_edges` merges the duplicate when both
                // endpoints are touched.
                edges.push((i, j));
            }
        }
    }
    Csr::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{apply_ops, ScenarioDelta};
    use rfid_core::verify_covering_schedule;
    use rfid_model::{RadiusModel, Scenario, ScenarioKind};

    fn scenario(seed: u64) -> Deployment {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 20,
            n_tags: 200,
            region_side: 80.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 12.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(seed)
    }

    fn solve(d: &Deployment) -> (Coverage, Csr, McsRun) {
        let coverage = Coverage::build(d);
        let graph = interference_graph(d);
        let run = covering_schedule(d, &coverage, &graph, &McsOptions::new()).unwrap();
        (coverage, graph, run)
    }

    #[test]
    fn identity_delta_replays_the_base_schedule() {
        let d = scenario(3);
        let (coverage, graph, run) = solve(&d);
        let patch = apply_ops(&d, &[]).unwrap();
        let report = repair_schedule(
            &d,
            &coverage,
            &graph,
            &run,
            &patch,
            &RepairOptions::default(),
        )
        .unwrap();
        assert!(!report.cold_fallback);
        assert_eq!(report.dirty_tags, 0);
        assert_eq!(report.appended_slots, 0);
        assert_eq!(report.run.schedule, run.schedule);
    }

    #[test]
    fn repaired_schedules_verify_against_the_patched_deployment() {
        for seed in 0..3u64 {
            let d = scenario(seed);
            let (coverage, graph, run) = solve(&d);
            let ops = vec![
                ScenarioDelta::AddTag { x: 11.0, y: 13.0 },
                ScenarioDelta::AddTag { x: 60.0, y: 55.0 },
                ScenarioDelta::RemoveTag { tag: 5 },
                ScenarioDelta::MoveReader {
                    reader: 2,
                    x: 30.0,
                    y: 30.0,
                },
                ScenarioDelta::SetReaderAlive {
                    reader: 7,
                    alive: false,
                },
            ];
            let patch = apply_ops(&d, &ops).unwrap();
            let report = repair_schedule(
                &d,
                &coverage,
                &graph,
                &run,
                &patch,
                &RepairOptions::default(),
            )
            .unwrap();
            assert_eq!(
                verify_covering_schedule(&patch.deployment, &report.run.schedule),
                Ok(()),
                "seed {seed}"
            );
            assert!(report.dirty_tags > 0, "seed {seed}");
        }
    }

    #[test]
    fn forced_fallback_is_exactly_the_cold_solve() {
        let d = scenario(1);
        let (coverage, graph, run) = solve(&d);
        let ops = vec![ScenarioDelta::AddTag { x: 40.0, y: 40.0 }];
        let patch = apply_ops(&d, &ops).unwrap();
        let forced = RepairOptions {
            max_dirty_fraction: 0.0,
            ..RepairOptions::default()
        };
        let report = repair_schedule(&d, &coverage, &graph, &run, &patch, &forced).unwrap();
        assert!(report.cold_fallback);
        assert_eq!(report.kept_slots, 0);
        let cold_cov = Coverage::build(&patch.deployment);
        let cold_graph = interference_graph(&patch.deployment);
        let cold = covering_schedule(
            &patch.deployment,
            &cold_cov,
            &cold_graph,
            &McsOptions::new(),
        )
        .unwrap();
        assert_eq!(report.run, cold);
    }

    #[test]
    fn repair_quality_stays_within_rho_of_cold() {
        let d = scenario(4);
        let (coverage, graph, run) = solve(&d);
        let ops = vec![
            ScenarioDelta::AddTag { x: 20.0, y: 20.0 },
            ScenarioDelta::RemoveTag { tag: 0 },
        ];
        let patch = apply_ops(&d, &ops).unwrap();
        let options = RepairOptions::default();
        let report = repair_schedule(&d, &coverage, &graph, &run, &patch, &options).unwrap();
        let cold_cov = Coverage::build(&patch.deployment);
        let cold_graph = interference_graph(&patch.deployment);
        let cold = covering_schedule(
            &patch.deployment,
            &cold_cov,
            &cold_graph,
            &McsOptions::new(),
        )
        .unwrap();
        let bound = (options.rho * cold.schedule.size() as f64).ceil() as usize + 1;
        assert!(
            report.run.schedule.size() <= bound,
            "repair {} vs cold {}",
            report.run.schedule.size(),
            cold.schedule.size()
        );
    }

    #[test]
    fn patched_graph_matches_full_rebuild() {
        let d = scenario(2);
        let base_graph = interference_graph(&d);
        let ops = vec![
            ScenarioDelta::MoveReader {
                reader: 0,
                x: 70.0,
                y: 70.0,
            },
            ScenarioDelta::Retune {
                reader: 3,
                interference: 20.0,
                interrogation: 5.0,
            },
            ScenarioDelta::SetReaderAlive {
                reader: 9,
                alive: false,
            },
        ];
        let patch = apply_ops(&d, &ops).unwrap();
        let patched = patched_graph(&base_graph, &patch.deployment, &patch.touched_readers);
        assert_eq!(patched, interference_graph(&patch.deployment));
    }
}
