//! Incremental scheduling: scenario deltas, delta keys, schedule repair.
//!
//! Real multi-reader deployments evolve by small steps — tags arrive
//! and depart, readers move, fail, recover, get retuned — yet a
//! content-addressed cache only helps when a scenario repeats *exactly*.
//! This crate closes that gap end to end:
//!
//! * [`ops`] — the [`ScenarioDelta`] op vocabulary and [`apply_ops`],
//!   which folds an op list over a base [`rfid_model::Deployment`] into
//!   a [`PatchedScenario`] carrying the provenance (tag index map,
//!   touched readers) the incremental machinery feeds on.
//! * [`codec`] — canonical JSON and the FNV-1a content hash (moved here
//!   from the serve codec), plus [`derived_key`]: the content key of
//!   "base scenario `k`, edited by `ops`", chainable delta over delta.
//! * [`repair`] — [`repair_schedule`]: replay the base run against the
//!   patched scenario (coverage and interference graph patched
//!   incrementally, well-covered sets recomputed from popcount planes),
//!   then greedy-append whatever is left unread; guarded by a dirty
//!   fraction threshold and a ρ quality bound that both fall back to a
//!   cold solve.
//!
//! The serve layer speaks the same vocabulary on the wire (protocol v3
//! `Delta` frames), and `rfid-sim`'s dynamic/mobility generators emit
//! their epoch transitions as `ScenarioDelta` streams.

#![warn(missing_docs)]

pub mod codec;
pub mod ops;
pub mod repair;

pub use codec::{canonical_json, derived_key, fnv1a64, key_hex, parse_key_hex};
pub use ops::{apply_ops, DeltaError, PatchedScenario, ScenarioDelta};
pub use repair::{repair_schedule, RepairOptions, RepairReport};
