//! Property-based tests for the RFID domain model.

use proptest::prelude::*;
use rfid_geometry::{Point, Rect};
use rfid_model::interference::{interference_graph, interference_graph_naive};
use rfid_model::{
    audit_activation, Coverage, Deployment, RadiusModel, Scenario, ScenarioKind, TagSet,
    WeightEvaluator,
};

/// Arbitrary valid deployment (readers + tags in a 100×100 region).
fn arb_deployment() -> impl Strategy<Value = Deployment> {
    let reader = (0.0..100.0f64, 0.0..100.0f64, 1.0..25.0f64, 0.05..1.0f64);
    let tag = (0.0..100.0f64, 0.0..100.0f64);
    (
        proptest::collection::vec(reader, 1..25),
        proptest::collection::vec(tag, 0..120),
    )
        .prop_map(|(readers, tags)| {
            let mut pos = Vec::new();
            let mut big = Vec::new();
            let mut small = Vec::new();
            for (x, y, interference, frac) in readers {
                pos.push(Point::new(x, y));
                big.push(interference);
                small.push(interference * frac);
            }
            let tag_pos = tags.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            Deployment::new(Rect::square(100.0), pos, big, small, tag_pos)
        })
}

fn arb_subset(n: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..n, 0..n.min(12)).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interference_graph_fast_equals_naive(d in arb_deployment()) {
        prop_assert_eq!(interference_graph(&d), interference_graph_naive(&d));
    }

    #[test]
    fn interference_edges_iff_not_independent(d in arb_deployment()) {
        let g = interference_graph(&d);
        for i in 0..d.n_readers() {
            for j in (i + 1)..d.n_readers() {
                prop_assert_eq!(g.has_edge(i, j), !d.independent(i, j));
            }
        }
    }

    #[test]
    fn coverage_is_consistent_both_ways(d in arb_deployment()) {
        let c = Coverage::build(&d);
        for t in 0..d.n_tags() {
            for &i in c.readers_of(t) {
                prop_assert!(d.covers(i as usize, t));
                prop_assert!(c.tags_of(i as usize).contains(&(t as u32)));
            }
        }
        for i in 0..d.n_readers() {
            for &t in c.tags_of(i) {
                prop_assert!(d.covers(i, t as usize));
            }
        }
    }

    #[test]
    fn weight_bounds(d in arb_deployment(), seed in 0u64..100) {
        let c = Coverage::build(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let mut w = WeightEvaluator::new(&c);
        let set: Vec<usize> = (0..d.n_readers()).filter(|v| (v * 7 + seed as usize).is_multiple_of(3)).collect();
        let weight = w.weight(&set, &unread);
        // bounded by total tags and by sum of singleton weights
        prop_assert!(weight <= d.n_tags());
        let singleton_sum: usize = set.iter().map(|&v| w.singleton_weight(v, &unread)).sum();
        prop_assert!(weight <= singleton_sum);
        // singleton weight equals tag list length on a fresh set
        for &v in &set {
            prop_assert_eq!(w.singleton_weight(v, &unread), c.tags_of(v).len());
        }
    }

    #[test]
    fn incremental_matches_batch_on_random_walks(
        d in arb_deployment(),
        ops in proptest::collection::vec((0usize..25, proptest::bool::ANY), 1..40),
    ) {
        let c = Coverage::build(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let mut inc = rfid_model::IncrementalWeight::new(&c, &unread);
        let mut batch = WeightEvaluator::new(&c);
        let mut active: Vec<usize> = Vec::new();
        for (vr, add) in ops {
            let v = vr % d.n_readers();
            if add && !inc.is_active(v) {
                inc.add(v);
                active.push(v);
            } else if !add && inc.is_active(v) {
                inc.remove(v);
                active.retain(|&x| x != v);
            }
            prop_assert_eq!(inc.weight(), batch.weight(&active, &unread));
        }
    }

    #[test]
    fn audit_agrees_with_fast_path_on_feasible_sets(d in arb_deployment(), pick in arb_subset(25)) {
        let set: Vec<usize> = pick.into_iter().filter(|&v| v < d.n_readers()).collect();
        if !d.is_feasible(&set) {
            return Ok(());
        }
        let c = Coverage::build(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let audit = audit_activation(&d, &c, &set, &unread);
        prop_assert!(audit.is_feasible());
        let mut w = WeightEvaluator::new(&c);
        prop_assert_eq!(audit.well_covered, w.well_covered(&set, &unread));
    }

    #[test]
    fn audit_well_covered_never_exceeds_fast_count(d in arb_deployment(), pick in arb_subset(25)) {
        // For *infeasible* sets jamming can only reduce the well-covered
        // tags below the exactly-once-covered count.
        let set: Vec<usize> = pick.into_iter().filter(|&v| v < d.n_readers()).collect();
        let c = Coverage::build(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let audit = audit_activation(&d, &c, &set, &unread);
        let mut w = WeightEvaluator::new(&c);
        prop_assert!(audit.well_covered.len() <= w.weight(&set, &unread));
    }

    #[test]
    fn scenarios_generate_valid_deployments(
        n_readers in 1usize..40,
        n_tags in 0usize..200,
        lambda_big in 1.0..25.0f64,
        lambda_small in 1.0..25.0f64,
        seed in 0u64..50,
    ) {
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers,
            n_tags,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: lambda_big,
                lambda_interrogation: lambda_small,
            },
        }
        .generate(seed);
        prop_assert_eq!(d.n_readers(), n_readers);
        prop_assert_eq!(d.n_tags(), n_tags);
        for i in 0..n_readers {
            let r = d.reader(i);
            prop_assert!(r.interrogation_radius >= 1.0);
            prop_assert!(r.interrogation_radius <= r.interference_radius);
        }
    }

    #[test]
    fn tagset_bookkeeping(m in 0usize..200, reads in proptest::collection::vec(0usize..200, 0..300)) {
        let mut s = TagSet::all_unread(m);
        let mut reference = std::collections::BTreeSet::new();
        for t in reads {
            if t < m {
                s.mark_read(t);
                reference.insert(t);
            }
        }
        prop_assert_eq!(s.remaining(), m - reference.len());
        let unread: Vec<usize> = s.iter_unread().collect();
        prop_assert!(unread.iter().all(|t| !reference.contains(t)));
        prop_assert_eq!(unread.len() + reference.len(), m);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The paper's growth-bounded premise, verified empirically: on disk
    /// interference graphs the ball independence number grows at most
    /// quadratically in the radius (unit-disk-style packing), which is
    /// what Theorems 3/5 need.
    #[test]
    fn interference_graphs_are_growth_bounded(seed in 0u64..60) {
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 35,
            n_tags: 0,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 16.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(seed);
        let g = interference_graph(&d);
        let f = rfid_graph::growth_function(&g, 3);
        for (r, &fr) in f.iter().enumerate() {
            // Radii within a Poisson class differ by small constant factors;
            // generous packing constant 12 per (r+1)² captures that.
            let bound = 12 * (r + 1) * (r + 1);
            prop_assert!(fr <= bound, "f({r}) = {fr} > {bound}");
        }
        // monotone in r
        prop_assert!(f.windows(2).all(|w| w[0] <= w[1]));
    }
}
