//! Imperfect RF site surveys.
//!
//! The paper obtains the interference graph "through network measurement …
//! a RF site survey using a localization device and radio signal strength
//! measurement device" (footnote 1). Real surveys err in both directions:
//! a missed interference relationship (false negative) lets the scheduler
//! activate two conflicting readers — an RTc at run time; a phantom edge
//! (false positive) merely forfeits concurrency. This module produces
//! corrupted interference graphs with independently seeded error rates so
//! the harness can quantify both failure modes.

use crate::deployment::Deployment;
use crate::interference::interference_graph;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_graph::Csr;

/// Error rates of a simulated site survey.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurveyError {
    /// Probability that a true interference edge is *missed*.
    pub false_negative: f64,
    /// Probability that a non-edge reader pair is *falsely reported* as
    /// interfering.
    pub false_positive: f64,
}

impl SurveyError {
    /// A perfect survey.
    pub const NONE: SurveyError = SurveyError {
        false_negative: 0.0,
        false_positive: 0.0,
    };
}

/// Runs a simulated site survey: the true interference graph corrupted by
/// the given error rates (deterministic per seed).
pub fn surveyed_interference_graph(d: &Deployment, err: SurveyError, seed: u64) -> Csr {
    assert!(
        (0.0..=1.0).contains(&err.false_negative) && (0.0..=1.0).contains(&err.false_positive),
        "error rates must be probabilities"
    );
    let truth = interference_graph(d);
    let n = d.n_readers();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            let real = truth.has_edge(a, b);
            let reported = if real {
                rng.random::<f64>() >= err.false_negative
            } else {
                rng.random::<f64>() < err.false_positive
            };
            if reported {
                edges.push((a, b));
            }
        }
    }
    Csr::from_edges(n, &edges)
}

/// Outcome of scheduling against a surveyed (possibly wrong) graph,
/// evaluated against the *true* model.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyImpact {
    /// Edges the survey missed (these can cause RTc).
    pub missed_edges: usize,
    /// Phantom edges the survey invented (these only cost concurrency).
    pub phantom_edges: usize,
}

/// Compares a surveyed graph against the ground truth.
pub fn survey_impact(d: &Deployment, surveyed: &Csr) -> SurveyImpact {
    let truth = interference_graph(d);
    let mut missed = 0;
    let mut phantom = 0;
    for a in 0..d.n_readers() {
        for b in (a + 1)..d.n_readers() {
            match (truth.has_edge(a, b), surveyed.has_edge(a, b)) {
                (true, false) => missed += 1,
                (false, true) => phantom += 1,
                _ => {}
            }
        }
    }
    SurveyImpact {
        missed_edges: missed,
        phantom_edges: phantom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioKind};
    use crate::RadiusModel;

    fn deployment(seed: u64) -> Deployment {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 30,
            n_tags: 10,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 16.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(seed)
    }

    #[test]
    fn perfect_survey_is_the_truth() {
        let d = deployment(0);
        let s = surveyed_interference_graph(&d, SurveyError::NONE, 7);
        assert_eq!(s, interference_graph(&d));
        let impact = survey_impact(&d, &s);
        assert_eq!(
            impact,
            SurveyImpact {
                missed_edges: 0,
                phantom_edges: 0
            }
        );
    }

    #[test]
    fn full_false_negatives_erase_the_graph() {
        let d = deployment(1);
        let s = surveyed_interference_graph(
            &d,
            SurveyError {
                false_negative: 1.0,
                false_positive: 0.0,
            },
            7,
        );
        assert_eq!(s.m(), 0);
        let impact = survey_impact(&d, &s);
        assert_eq!(impact.missed_edges, interference_graph(&d).m());
    }

    #[test]
    fn full_false_positives_make_a_clique() {
        let d = deployment(2);
        let s = surveyed_interference_graph(
            &d,
            SurveyError {
                false_negative: 0.0,
                false_positive: 1.0,
            },
            7,
        );
        let n = d.n_readers();
        assert_eq!(s.m(), n * (n - 1) / 2);
    }

    #[test]
    fn partial_errors_are_roughly_calibrated() {
        let d = deployment(3);
        let truth = interference_graph(&d);
        let mut missed_total = 0usize;
        const RUNS: u64 = 30;
        for seed in 0..RUNS {
            let s = surveyed_interference_graph(
                &d,
                SurveyError {
                    false_negative: 0.3,
                    false_positive: 0.0,
                },
                seed,
            );
            missed_total += survey_impact(&d, &s).missed_edges;
        }
        let mean_missed = missed_total as f64 / RUNS as f64;
        let expect = 0.3 * truth.m() as f64;
        assert!(
            (mean_missed - expect).abs() <= 0.15 * truth.m() as f64 + 1.0,
            "mean missed {mean_missed} vs expected {expect}"
        );
    }

    #[test]
    fn surveys_are_deterministic_per_seed() {
        let d = deployment(4);
        let e = SurveyError {
            false_negative: 0.2,
            false_positive: 0.01,
        };
        assert_eq!(
            surveyed_interference_graph(&d, e, 9),
            surveyed_interference_graph(&d, e, 9)
        );
    }

    /// The punchline: schedulers driven by a lossy survey produce RTc
    /// against the true model; phantom-only surveys stay safe.
    #[test]
    fn false_negatives_cause_rtc_false_positives_do_not() {
        use crate::{audit_activation, Coverage, TagSet};
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 30,
            n_tags: 300,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 18.0,
                lambda_interrogation: 8.0,
            },
        }
        .generate(5);
        let c = Coverage::build(&d);
        let unread = TagSet::all_unread(d.n_tags());
        // Greedy activation against a surveyed graph: take readers in
        // singleton-weight order that the *surveyed* graph calls
        // independent.
        let schedule_with = |g: &Csr| -> Vec<usize> {
            let mut w = crate::WeightEvaluator::new(&c);
            let mut order: Vec<usize> = (0..d.n_readers()).collect();
            order.sort_by_key(|&v| std::cmp::Reverse(w.singleton_weight(v, &unread)));
            let mut x: Vec<usize> = Vec::new();
            for v in order {
                if x.iter().all(|&u| !g.has_edge(u, v)) {
                    x.push(v);
                }
            }
            x.sort_unstable();
            x
        };
        // Phantom-only survey: activation remains feasible in truth.
        let phantom = surveyed_interference_graph(
            &d,
            SurveyError {
                false_negative: 0.0,
                false_positive: 0.3,
            },
            1,
        );
        let x = schedule_with(&phantom);
        assert!(audit_activation(&d, &c, &x, &unread).is_feasible());
        // Miss half the edges: some seed must produce a real RTc.
        let mut any_rtc = false;
        for seed in 0..10 {
            let lossy = surveyed_interference_graph(
                &d,
                SurveyError {
                    false_negative: 0.5,
                    false_positive: 0.0,
                },
                seed,
            );
            let x = schedule_with(&lossy);
            any_rtc |= !audit_activation(&d, &c, &x, &unread).is_feasible();
        }
        assert!(
            any_rtc,
            "50% missed edges never caused an RTc across 10 surveys?"
        );
    }
}
