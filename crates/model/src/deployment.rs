//! The deployment: readers + tags in a region.

use crate::reader::{Reader, ReaderId};
use crate::tag::TagId;
use rfid_geometry::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A static multi-reader RFID deployment (paper Section III): `n` readers
/// `V = {v_1, …, v_n}` and `m` tags at fixed positions.
///
/// Stored structure-of-arrays for cache-friendly bulk passes (interference
/// graph construction, coverage tables, weight evaluation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    region: Rect,
    reader_pos: Vec<Point>,
    interference_r: Vec<f64>,
    interrogation_r: Vec<f64>,
    tag_pos: Vec<Point>,
}

impl Deployment {
    /// Assembles and validates a deployment.
    ///
    /// # Panics
    /// If array lengths disagree, any radius is non-finite/negative, or any
    /// interrogation radius exceeds its interference radius (the model
    /// requires `r_i ≤ R_i`; the paper "modif\[ies\] some assignments to
    /// ensure" this, which [`crate::RadiusModel`] already does).
    pub fn new(
        region: Rect,
        reader_pos: Vec<Point>,
        interference_r: Vec<f64>,
        interrogation_r: Vec<f64>,
        tag_pos: Vec<Point>,
    ) -> Self {
        assert_eq!(
            reader_pos.len(),
            interference_r.len(),
            "radius arrays must match readers"
        );
        assert_eq!(
            reader_pos.len(),
            interrogation_r.len(),
            "radius arrays must match readers"
        );
        for (i, p) in reader_pos.iter().enumerate() {
            assert!(p.is_finite(), "reader {i} has non-finite position");
        }
        for p in &tag_pos {
            assert!(p.is_finite(), "non-finite tag position");
        }
        for i in 0..reader_pos.len() {
            let big = interference_r[i];
            let small = interrogation_r[i];
            assert!(
                big.is_finite() && big >= 0.0,
                "reader {i}: bad interference radius {big}"
            );
            assert!(
                small.is_finite() && small >= 0.0 && small <= big,
                "reader {i}: interrogation radius {small} must satisfy 0 ≤ r ≤ R = {big}"
            );
        }
        Deployment {
            region,
            reader_pos,
            interference_r,
            interrogation_r,
            tag_pos,
        }
    }

    /// Deployment region (informational; readers/tags may sit on its
    /// boundary).
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of readers `n`.
    pub fn n_readers(&self) -> usize {
        self.reader_pos.len()
    }

    /// Number of tags `m`.
    pub fn n_tags(&self) -> usize {
        self.tag_pos.len()
    }

    /// By-value view of reader `i`.
    pub fn reader(&self, i: ReaderId) -> Reader {
        Reader {
            id: i,
            pos: self.reader_pos[i],
            interference_radius: self.interference_r[i],
            interrogation_radius: self.interrogation_r[i],
        }
    }

    /// All reader positions (parallel to ids).
    pub fn reader_positions(&self) -> &[Point] {
        &self.reader_pos
    }

    /// All interference radii `R_i`.
    pub fn interference_radii(&self) -> &[f64] {
        &self.interference_r
    }

    /// All interrogation radii `r_i`.
    pub fn interrogation_radii(&self) -> &[f64] {
        &self.interrogation_r
    }

    /// Position of tag `t`.
    pub fn tag(&self, t: TagId) -> Point {
        self.tag_pos[t]
    }

    /// All tag positions.
    pub fn tag_positions(&self) -> &[Point] {
        &self.tag_pos
    }

    /// Definition 2 independence: `‖v_i − v_j‖ > max(R_i, R_j)`.
    #[inline]
    pub fn independent(&self, i: ReaderId, j: ReaderId) -> bool {
        let r = self.interference_r[i].max(self.interference_r[j]);
        self.reader_pos[i].dist_sq(self.reader_pos[j]) > r * r
    }

    /// `true` iff `set` is a feasible scheduling set (pairwise independent).
    /// O(|set|²); schedulers use the interference graph instead — this is
    /// the ground-truth audit.
    pub fn is_feasible(&self, set: &[ReaderId]) -> bool {
        for (a, &i) in set.iter().enumerate() {
            for &j in &set[a + 1..] {
                if i == j || !self.independent(i, j) {
                    return false;
                }
            }
        }
        true
    }

    /// `true` iff reader `i`'s interrogation disk contains tag `t`.
    #[inline]
    pub fn covers(&self, i: ReaderId, t: TagId) -> bool {
        let r = self.interrogation_r[i];
        self.reader_pos[i].dist_sq(self.tag_pos[t]) <= r * r
    }

    /// Largest interference radius (0 for a reader-less deployment).
    pub fn max_interference_radius(&self) -> f64 {
        self.interference_r.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn line_deployment() -> Deployment {
        // Readers at x = 0, 10, 20 with R = 6, 6, 6 and r = 3.
        // Tags at x = 0, 2, 10, 15, 100.
        Deployment::new(
            Rect::square(100.0),
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
            ],
            vec![6.0, 6.0, 6.0],
            vec![3.0, 3.0, 3.0],
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(15.0, 0.0),
                Point::new(100.0, 0.0),
            ],
        )
    }

    #[test]
    fn counts_and_views() {
        let d = line_deployment();
        assert_eq!(d.n_readers(), 3);
        assert_eq!(d.n_tags(), 5);
        let r1 = d.reader(1);
        assert_eq!(r1.id, 1);
        assert_eq!(r1.pos, Point::new(10.0, 0.0));
        assert_eq!(r1.interference_radius, 6.0);
    }

    #[test]
    fn independence_matrix() {
        let d = line_deployment();
        // dist(0,1) = 10 > 6 → independent
        assert!(d.independent(0, 1));
        assert!(d.independent(1, 2));
        assert!(d.independent(0, 2));
        assert!(d.is_feasible(&[0, 1, 2]));
        // Shrink distances: overlapping pair.
        let d2 = Deployment::new(
            Rect::square(10.0),
            vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)],
            vec![6.0, 2.0],
            vec![1.0, 1.0],
            vec![],
        );
        assert!(!d2.independent(0, 1)); // dist 5 ≤ max(6,2)
        assert!(!d2.is_feasible(&[0, 1]));
        assert!(d2.is_feasible(&[0]));
        assert!(d2.is_feasible(&[]));
    }

    #[test]
    fn duplicate_reader_in_set_is_infeasible() {
        let d = line_deployment();
        assert!(!d.is_feasible(&[0, 0]));
    }

    #[test]
    fn coverage_predicate() {
        let d = line_deployment();
        assert!(d.covers(0, 0)); // tag at reader
        assert!(d.covers(0, 1)); // dist 2 ≤ 3
        assert!(!d.covers(0, 2)); // dist 10
        assert!(!d.covers(1, 3)); // dist 5 > 3
        assert!(!d.covers(2, 4));
    }

    #[test]
    #[should_panic(expected = "interrogation radius")]
    fn interrogation_exceeding_interference_rejected() {
        let _ = Deployment::new(
            Rect::square(1.0),
            vec![Point::ORIGIN],
            vec![2.0],
            vec![3.0],
            vec![],
        );
    }

    #[test]
    #[should_panic(expected = "radius arrays")]
    fn mismatched_arrays_rejected() {
        let _ = Deployment::new(
            Rect::square(1.0),
            vec![Point::ORIGIN],
            vec![],
            vec![],
            vec![],
        );
    }

    #[test]
    fn empty_deployment_is_valid() {
        let d = Deployment::new(Rect::square(1.0), vec![], vec![], vec![], vec![]);
        assert_eq!(d.n_readers(), 0);
        assert_eq!(d.max_interference_radius(), 0.0);
        assert!(d.is_feasible(&[]));
    }
}
