//! Reader identity and per-reader view.

use rfid_geometry::{Disk, Point};
use serde::{Deserialize, Serialize};

/// Index of a reader within its [`Deployment`](crate::Deployment)
/// (`v_1 … v_n` in the paper, zero-based here).
pub type ReaderId = usize;

/// A by-value view of one reader. The deployment stores readers
/// structure-of-arrays; this struct materialises a row for ergonomic access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reader {
    /// Index of this reader in its deployment.
    pub id: ReaderId,
    /// Position in the plane.
    pub pos: Point,
    /// Interference radius `R_i`: other readers within this distance are
    /// jammed when this reader transmits (RTc).
    pub interference_radius: f64,
    /// Interrogation radius `γ_i ≤ R_i`: tags within this distance can be
    /// read.
    pub interrogation_radius: f64,
}

impl Reader {
    /// The interference disk `O(v_i)`.
    pub fn interference_disk(&self) -> Disk {
        Disk::new(self.pos, self.interference_radius)
    }

    /// The interrogation disk.
    pub fn interrogation_disk(&self) -> Disk {
        Disk::new(self.pos, self.interrogation_radius)
    }

    /// `true` iff the tag position is inside this reader's interrogation
    /// region (closed disk).
    pub fn covers(&self, tag: Point) -> bool {
        self.pos.within(tag, self.interrogation_radius)
    }

    /// Definition 2: two readers are *independent* iff neither sits in the
    /// other's interference disk, i.e. `‖v_i − v_j‖ > max(R_i, R_j)`.
    pub fn independent(&self, other: &Reader) -> bool {
        let r = self.interference_radius.max(other.interference_radius);
        self.pos.dist_sq(other.pos) > r * r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reader(id: ReaderId, x: f64, r_interf: f64, r_interro: f64) -> Reader {
        Reader {
            id,
            pos: Point::new(x, 0.0),
            interference_radius: r_interf,
            interrogation_radius: r_interro,
        }
    }

    #[test]
    fn coverage_is_closed_disk() {
        let r = reader(0, 0.0, 10.0, 5.0);
        assert!(r.covers(Point::new(5.0, 0.0)));
        assert!(!r.covers(Point::new(5.0 + 1e-9, 0.0)));
    }

    #[test]
    fn independence_uses_max_radius() {
        // Asymmetric radii: B has the big interference disk.
        let a = reader(0, 0.0, 2.0, 1.0);
        let b = reader(1, 5.0, 6.0, 3.0);
        // dist 5 ≤ max(2,6) = 6 → not independent (A sits in B's disk).
        assert!(!a.independent(&b));
        assert!(!b.independent(&a));
        let c = reader(2, 7.0, 2.0, 1.0);
        // dist(a,c) = 7 > max(2,2) → independent.
        assert!(a.independent(&c));
        // dist(b,c) = 2 ≤ 6 → not independent.
        assert!(!b.independent(&c));
    }

    #[test]
    fn boundary_distance_is_not_independent() {
        // Strict inequality: dist == max(R) means still interfering.
        let a = reader(0, 0.0, 4.0, 2.0);
        let b = reader(1, 4.0, 3.0, 2.0);
        assert!(!a.independent(&b));
        let c = reader(2, 4.0 + 1e-9, 3.0, 2.0);
        assert!(a.independent(&c));
    }

    #[test]
    fn disks_reflect_radii() {
        let r = reader(3, 1.0, 7.0, 4.0);
        assert_eq!(r.interference_disk().radius, 7.0);
        assert_eq!(r.interrogation_disk().radius, 4.0);
        assert_eq!(r.interference_disk().center, r.pos);
    }
}
