#![warn(missing_docs)]
//! # rfid-model
//!
//! Domain model of a multi-reader RFID system, following Sections II–III of
//! the paper.
//!
//! A [`Deployment`] holds `n` readers (position, interference radius `R_i`,
//! interrogation radius `r_i ≤ R_i`) and `m` passive tags (positions) in a
//! planar region. On top of it the crate derives:
//!
//! * the **interference graph** (`interference` module) — edge iff one
//!   reader lies inside the other's interference disk, i.e. the pair is
//!   *not* independent (`‖v_i − v_j‖ > max(R_i, R_j)` fails);
//! * the **coverage tables** (`coverage`) — which readers can interrogate
//!   which tags;
//! * the **weight function** `w(X)` (`weight`) — the number of unread tags
//!   covered by *exactly one* reader of an activation `X`, with both batch
//!   and incremental evaluation;
//! * the **collision audit** (`collisions`) — classifies RTc/RRc/TTc events
//!   of an arbitrary (possibly infeasible) activation, used to verify that
//!   schedulers never violate the model;
//! * **scenario generators** (`scenario`) — the paper's evaluation setup
//!   (50 readers, 1200 tags, 100×100 region, Poisson radii) plus clustered
//!   and lattice variants used by the examples.

pub mod analysis;
pub mod bits;
pub mod collisions;
pub mod coverage;
pub mod deployment;
pub mod interference;
pub mod radii;
pub mod reader;
pub mod scenario;
pub mod survey;
pub mod tag;
pub mod weight;

pub use analysis::{deployment_stats, DeploymentStats};
pub use bits::{AlignedWords, CoverageRows, PlaneScratch, CACHE_LINE};
pub use collisions::{audit_activation, ActivationAudit};
pub use coverage::Coverage;
pub use deployment::Deployment;
pub use radii::RadiusModel;
pub use reader::{Reader, ReaderId};
pub use scenario::{Scenario, ScenarioKind};
pub use survey::{survey_impact, surveyed_interference_graph, SurveyError, SurveyImpact};
pub use tag::{TagId, TagSet};
pub use weight::{
    EvalScratch, IncrementalCore, IncrementalWeight, SingletonWeights, WeightEvaluator,
};
