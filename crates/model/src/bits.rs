//! Packed-bitset coverage rows and exactly-once bitplanes (DESIGN.md §11).
//!
//! The scoring hot path of every covering-schedule driver asks two
//! questions per slot: *how many unread tags does this activation cover
//! exactly once* (`w(X)`), and *which ones* (the well-covered set). The
//! `Vec`-walking reference answers both one incidence at a time;
//! this module answers them a cache line at a time:
//!
//! * [`CoverageRows`] stores each reader's tag list as sparse
//!   `(word, mask)` pairs over the tag bit-space — the same information as
//!   [`Coverage::tags_of`], pre-packed for 64-tag-wide intersection.
//! * [`PlaneScratch`] maintains two dense bitplanes over the tag space:
//!   `ge1` (covered by ≥ 1 active reader) and `ge2` (covered by ≥ 2).
//!   Exactly-once coverage is `ge1 & !ge2`, so `w(X)` is a popcount and
//!   the well-covered set falls out of the planes in ascending tag order
//!   with no sort.
//!
//! Every operation is defined to be *bit-identical* to the eager
//! `Vec`-based evaluators in [`crate::weight`]; the differential suite in
//! `tests/perf_equivalence.rs` pins that equivalence.

use crate::coverage::Coverage;
use crate::reader::ReaderId;
use crate::tag::{TagId, TagSet};

/// A `u64` buffer whose storage starts on a 64-byte boundary, so a plane
/// never straddles an extra cache line and the popcount loops stream
/// aligned words. This is the alignment contract arena slabs and bitplanes
/// share (DESIGN.md §11).
pub struct AlignedWords {
    ptr: std::ptr::NonNull<u64>,
    len: usize,
}

/// Cache-line size in bytes; slab and plane storage is aligned to this.
pub const CACHE_LINE: usize = 64;

impl AlignedWords {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        AlignedWords {
            ptr: std::ptr::NonNull::dangling(),
            len: 0,
        }
    }

    /// A zeroed buffer of `len` words.
    pub fn zeroed(len: usize) -> Self {
        let mut w = AlignedWords::new();
        w.reset_zeroed(len);
        w
    }

    fn layout(len: usize) -> std::alloc::Layout {
        std::alloc::Layout::from_size_align(len * 8, CACHE_LINE).expect("aligned words layout")
    }

    /// Resizes to exactly `len` zeroed words, reallocating only when the
    /// length changes. Returns `true` when a fresh heap allocation was
    /// made (the arena's alloc-event signal).
    pub fn reset_zeroed(&mut self, len: usize) -> bool {
        if len == self.len {
            self.fill(0);
            return false;
        }
        self.release();
        if len > 0 {
            // SAFETY: layout has non-zero size; alloc_zeroed returns
            // CACHE_LINE-aligned memory or null (handled below).
            let raw = unsafe { std::alloc::alloc_zeroed(Self::layout(len)) };
            self.ptr = std::ptr::NonNull::new(raw as *mut u64)
                .unwrap_or_else(|| std::alloc::handle_alloc_error(Self::layout(len)));
            self.len = len;
            return true;
        }
        false
    }

    fn release(&mut self) {
        if self.len > 0 {
            // SAFETY: ptr was allocated with exactly this layout.
            unsafe { std::alloc::dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.len)) };
            self.ptr = std::ptr::NonNull::dangling();
            self.len = 0;
        }
    }
}

impl Drop for AlignedWords {
    fn drop(&mut self) {
        self.release();
    }
}

impl Clone for AlignedWords {
    fn clone(&self) -> Self {
        let mut c = AlignedWords::zeroed(self.len);
        c.copy_from_slice(self);
        c
    }
}

impl std::ops::Deref for AlignedWords {
    type Target = [u64];
    fn deref(&self) -> &[u64] {
        // SAFETY: ptr/len describe a live allocation (or len == 0).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl std::ops::DerefMut for AlignedWords {
    fn deref_mut(&mut self) -> &mut [u64] {
        // SAFETY: as above, and we hold &mut self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl std::fmt::Debug for AlignedWords {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedWords({} words)", self.len)
    }
}

impl Default for AlignedWords {
    fn default() -> Self {
        AlignedWords::new()
    }
}

// SAFETY: AlignedWords owns its allocation exclusively, like Vec<u64>.
unsafe impl Send for AlignedWords {}
unsafe impl Sync for AlignedWords {}

/// Per-reader coverage packed as sparse `(word, mask)` pairs over the tag
/// bit-space, in ascending word order (rows inherit the sort of
/// [`Coverage::tags_of`]). Built once per deployment; immutable.
#[derive(Debug, Clone)]
pub struct CoverageRows {
    /// Row `v` occupies `word_idx[offsets[v]..offsets[v+1]]` (and the same
    /// range of `mask`).
    offsets: Vec<u32>,
    word_idx: Vec<u32>,
    mask: Vec<u64>,
    n_words: usize,
}

impl CoverageRows {
    /// Packs every reader's tag list into bitset rows.
    pub fn build(coverage: &Coverage) -> Self {
        let n = coverage.n_readers();
        let n_words = coverage.n_tags().div_ceil(64);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut word_idx = Vec::new();
        let mut mask = Vec::new();
        offsets.push(0);
        for v in 0..n {
            // tags_of is sorted ascending, so equal words are consecutive.
            for &t in coverage.tags_of(v) {
                let (w, bit) = (t / 64, 1u64 << (t % 64));
                if word_idx.last() == Some(&w) && offsets[v] as usize != word_idx.len() {
                    *mask.last_mut().unwrap() |= bit;
                } else {
                    word_idx.push(w);
                    mask.push(bit);
                }
            }
            offsets.push(word_idx.len() as u32);
        }
        CoverageRows {
            offsets,
            word_idx,
            mask,
            n_words,
        }
    }

    /// Number of reader rows.
    pub fn n_readers(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Words spanned by the tag bit-space.
    pub fn n_words(&self) -> usize {
        self.n_words
    }

    /// Number of `(word, mask)` pairs in reader `v`'s row.
    #[inline]
    pub fn row_words(&self, v: ReaderId) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The `(word, mask)` pairs of reader `v`, ascending by word.
    #[inline]
    pub fn row(&self, v: ReaderId) -> impl Iterator<Item = (usize, u64)> + '_ {
        let range = self.offsets[v] as usize..self.offsets[v + 1] as usize;
        self.word_idx[range.clone()]
            .iter()
            .zip(&self.mask[range])
            .map(|(&w, &m)| (w as usize, m))
    }

    /// `w({v})` by popcount: unread tags in `v`'s interrogation region.
    /// `unread` is the packed word view of the unread [`TagSet`]
    /// ([`TagSet::words`]).
    #[inline]
    pub fn singleton_weight(&self, v: ReaderId, unread: &[u64]) -> usize {
        self.row(v)
            .map(|(w, m)| (m & unread[w]).count_ones() as usize)
            .sum()
    }

    /// All singleton weights, indexed by reader — the popcount form of
    /// [`crate::WeightEvaluator::all_singleton_weights`].
    pub fn all_singleton_weights(&self, unread: &TagSet) -> Vec<usize> {
        let words = unread.words();
        (0..self.n_readers())
            .map(|v| self.singleton_weight(v, words))
            .collect()
    }

    /// Total tag incidences across all rows (sum of mask popcounts).
    pub fn incidences(&self) -> usize {
        self.mask.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Drops read tags from every row in place, returning the live
    /// incidence count. Masks are ANDed with `unread` and emptied pairs
    /// removed, so later plane builds skip retired tags entirely.
    ///
    /// Safe under the byte-identity contract: a mask bit only influences
    /// the planes at its own tag position, and every consumer intersects
    /// the planes with the *current* unread set — positions dropped here
    /// are exactly the ones that intersection already zeroes.
    pub fn retain_unread(&mut self, unread: &[u64]) -> usize {
        let mut out = 0usize;
        let mut live = 0usize;
        let mut start = 0usize;
        for v in 0..self.n_readers() {
            let end = self.offsets[v + 1] as usize;
            for i in start..end {
                let w = self.word_idx[i];
                let m = self.mask[i] & unread[w as usize];
                if m != 0 {
                    self.word_idx[out] = w;
                    self.mask[out] = m;
                    live += m.count_ones() as usize;
                    out += 1;
                }
            }
            start = end;
            self.offsets[v + 1] = out as u32;
        }
        self.word_idx.truncate(out);
        self.mask.truncate(out);
        live
    }
}

/// Dense exactly-once bitplanes for one activation, reusable across slots.
///
/// `ge1[w]` holds tags covered by at least one added reader, `ge2[w]` by at
/// least two — so `ge1 & !ge2` is exactly-once coverage, and intersecting
/// with the unread words gives the well-covered set. The scratch tracks
/// which words it dirtied, so [`clear`](Self::clear) costs O(touched), not
/// O(tag words): a cheap fallback slot stays cheap even at n = 100k.
#[derive(Debug, Clone, Default)]
pub struct PlaneScratch {
    ge1: AlignedWords,
    ge2: AlignedWords,
    /// Words with at least one `ge1` bit, in first-touch order, unique.
    /// Meaningful only while `dense` is false.
    touched: Vec<u32>,
    /// Set by [`add_all`](Self::add_all) when the activation dirties so
    /// much of the plane that per-word touch tracking costs more than
    /// streaming: adds drop the branch-per-word, [`clear`](Self::clear)
    /// becomes a plane memset, extraction scans densely.
    dense: bool,
    /// Fresh heap allocations since the last [`take_allocs`](Self::take_allocs).
    allocs: u64,
}

impl PlaneScratch {
    /// An empty scratch; planes are sized on first [`ensure`](Self::ensure).
    pub fn new() -> Self {
        PlaneScratch::default()
    }

    /// Sizes the planes for a tag space of `n_words` words and clears them.
    /// Reallocation happens only when the word count changes.
    pub fn ensure(&mut self, n_words: usize) {
        if self.ge1.len() != n_words {
            self.allocs += self.ge1.reset_zeroed(n_words) as u64;
            self.allocs += self.ge2.reset_zeroed(n_words) as u64;
            self.touched.clear();
            self.dense = false;
        } else {
            self.clear();
        }
    }

    /// Fresh heap allocations since the last call (the `mcs.alloc` feed).
    pub fn take_allocs(&mut self) -> u64 {
        std::mem::take(&mut self.allocs)
    }

    /// Resets both planes by undoing only the touched words — or, after a
    /// dense [`add_all`](Self::add_all), by zeroing the planes outright.
    pub fn clear(&mut self) {
        if self.dense {
            self.ge1.fill(0);
            self.ge2.fill(0);
            self.dense = false;
        } else {
            for &w in &self.touched {
                self.ge1[w as usize] = 0;
                self.ge2[w as usize] = 0;
            }
        }
        self.touched.clear();
    }

    /// Adds reader `v`'s coverage to the planes.
    pub fn add(&mut self, rows: &CoverageRows, v: ReaderId) {
        debug_assert_eq!(self.ge1.len(), rows.n_words(), "ensure() not called");
        if self.dense {
            for (w, m) in rows.row(v) {
                self.ge2[w] |= self.ge1[w] & m;
                self.ge1[w] |= m;
            }
            return;
        }
        for (w, m) in rows.row(v) {
            // ge2 ⊆ ge1 invariantly, so ge1 == 0 detects first touch.
            if self.ge1[w] == 0 {
                self.touched.push(w as u32);
            }
            self.ge2[w] |= self.ge1[w] & m;
            self.ge1[w] |= m;
        }
    }

    /// Adds a whole activation at once, choosing the plane-update strategy
    /// from its total row mass: a heavy activation (row words on the order
    /// of the plane itself) switches to dense mode — unconditional `or`
    /// loops now, one memset at the next [`clear`](Self::clear) — while a
    /// sparse one keeps exact touch tracking so clears stay O(touched).
    /// Either way the resulting planes are bit-identical to a sequence of
    /// [`add`](Self::add) calls.
    pub fn add_all(&mut self, rows: &CoverageRows, active: &[ReaderId]) {
        debug_assert_eq!(self.ge1.len(), rows.n_words(), "ensure() not called");
        if !self.dense {
            let mass: usize = active.iter().map(|&v| rows.row_words(v)).sum();
            if mass >= self.ge1.len() / 2 {
                self.dense = true;
                // Words touched before the switch stay recorded only in
                // the planes; the memset clear covers them.
                self.touched.clear();
            }
        }
        for &v in active {
            self.add(rows, v);
        }
    }

    /// Read access to the raw `(ge1, ge2)` planes, for fixed-order merge
    /// of per-worker lanes into a main scratch.
    pub fn planes(&self) -> (&[u64], &[u64]) {
        (&self.ge1, &self.ge2)
    }

    /// Mutable access to the raw `(ge1, ge2)` planes. Callers writing
    /// through this (a parallel lane merge) bypass touch tracking and
    /// must put the scratch in dense mode first ([`make_dense`](Self::make_dense)).
    pub fn planes_mut(&mut self) -> (&mut [u64], &mut [u64]) {
        (&mut self.ge1, &mut self.ge2)
    }

    /// Switches to dense mode explicitly: subsequent clears memset the
    /// whole planes, so words dirtied through [`planes_mut`](Self::planes_mut)
    /// are reset even though no touch list recorded them.
    pub fn make_dense(&mut self) {
        self.dense = true;
        self.touched.clear();
    }

    /// `w(X)` of the added set against `unread` words, by popcount.
    pub fn weight(&self, unread: &[u64]) -> usize {
        if self.dense {
            return (0..self.ge1.len())
                .map(|w| (self.ge1[w] & !self.ge2[w] & unread[w]).count_ones() as usize)
                .sum();
        }
        self.touched
            .iter()
            .map(|&w| {
                let w = w as usize;
                (self.ge1[w] & !self.ge2[w] & unread[w]).count_ones() as usize
            })
            .sum()
    }

    /// The popcount well-covered delta of adding `v` to the current
    /// planes, without committing: tags `v` would newly cover exactly once
    /// minus tags it would demote from exactly-once to twice-covered.
    /// Matches [`crate::IncrementalWeight::delta_if_added`] bit for bit.
    pub fn delta_if_added(&self, rows: &CoverageRows, v: ReaderId, unread: &[u64]) -> isize {
        let mut delta = 0isize;
        for (w, m) in rows.row(v) {
            let live = m & unread[w];
            delta += (live & !self.ge1[w]).count_ones() as isize;
            delta -= (live & self.ge1[w] & !self.ge2[w]).count_ones() as isize;
        }
        delta
    }

    /// Appends the well-covered tags (exactly-once covered and unread) to
    /// `out` (cleared first), ascending — the planes yield them in natural
    /// order, no sort.
    pub fn well_covered_into(&mut self, unread: &[u64], out: &mut Vec<TagId>) {
        out.clear();
        // Dense and sparse extraction emit the same tags in the same
        // ascending order — an untouched word has no `ge1` bits and
        // contributes nothing — so the choice is purely a cost model:
        // once a sizeable fraction of the words is dirty, one streaming
        // pass over the planes beats sorting the touched list, while a
        // sparse activation (a fallback slot touches a dozen words at
        // n = 100k) keeps the O(touched log touched) path.
        if self.dense || self.touched.len() * 8 >= self.ge1.len() {
            for (w, ((&g1, &g2), &un)) in
                self.ge1.iter().zip(self.ge2.iter()).zip(unread).enumerate()
            {
                let mut bits = g1 & !g2 & un;
                while bits != 0 {
                    out.push(w * 64 + bits.trailing_zeros() as usize);
                    bits &= bits - 1;
                }
            }
        } else {
            self.touched.sort_unstable();
            for &w in &self.touched {
                let w = w as usize;
                let mut bits = self.ge1[w] & !self.ge2[w] & unread[w];
                while bits != 0 {
                    out.push(w * 64 + bits.trailing_zeros() as usize);
                    bits &= bits - 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radii::RadiusModel;
    use crate::scenario::{Scenario, ScenarioKind};
    use crate::weight::{IncrementalWeight, WeightEvaluator};

    fn random_instance(seed: u64) -> (Coverage, TagSet) {
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 25,
            n_tags: 180,
            region_side: 90.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 12.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(seed);
        let c = Coverage::build(&d);
        let mut unread = TagSet::all_unread(d.n_tags());
        // Retire a deterministic third of the tags to exercise the unread
        // intersection.
        for t in (0..d.n_tags()).filter(|t| t % 3 == seed as usize % 3) {
            unread.mark_read(t);
        }
        (c, unread)
    }

    #[test]
    fn rows_reproduce_coverage_lists() {
        let (c, _) = random_instance(1);
        let rows = CoverageRows::build(&c);
        assert_eq!(rows.n_readers(), c.n_readers());
        for v in 0..c.n_readers() {
            let mut tags = Vec::new();
            for (w, mut m) in rows.row(v) {
                while m != 0 {
                    tags.push((w * 64 + m.trailing_zeros() as usize) as u32);
                    m &= m - 1;
                }
            }
            assert_eq!(tags, c.tags_of(v), "reader {v}");
        }
    }

    #[test]
    fn row_words_are_strictly_ascending() {
        let (c, _) = random_instance(2);
        let rows = CoverageRows::build(&c);
        for v in 0..c.n_readers() {
            let words: Vec<usize> = rows.row(v).map(|(w, _)| w).collect();
            assert!(words.windows(2).all(|p| p[0] < p[1]), "reader {v}");
        }
    }

    #[test]
    fn popcount_singletons_match_evaluator() {
        for seed in 0..4 {
            let (c, unread) = random_instance(seed);
            let rows = CoverageRows::build(&c);
            let mut eval = WeightEvaluator::new(&c);
            assert_eq!(
                rows.all_singleton_weights(&unread),
                eval.all_singleton_weights(&unread),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn planes_match_batch_weight_and_well_covered() {
        for seed in 0..4 {
            let (c, unread) = random_instance(seed);
            let rows = CoverageRows::build(&c);
            let mut planes = PlaneScratch::new();
            planes.ensure(rows.n_words());
            let mut eval = WeightEvaluator::new(&c);
            let set: Vec<ReaderId> = (0..c.n_readers()).step_by(2).collect();
            for &v in &set {
                planes.add(&rows, v);
            }
            assert_eq!(
                planes.weight(unread.words()),
                eval.weight(&set, &unread),
                "seed {seed}"
            );
            let mut got = Vec::new();
            planes.well_covered_into(unread.words(), &mut got);
            assert_eq!(got, eval.well_covered(&set, &unread), "seed {seed}");
        }
    }

    #[test]
    fn plane_delta_matches_incremental() {
        for seed in 0..4 {
            let (c, unread) = random_instance(seed);
            let rows = CoverageRows::build(&c);
            let mut planes = PlaneScratch::new();
            planes.ensure(rows.n_words());
            let mut inc = IncrementalWeight::new(&c, &unread);
            for v in (0..c.n_readers()).step_by(3) {
                assert_eq!(
                    planes.delta_if_added(&rows, v, unread.words()),
                    inc.delta_if_added(v),
                    "seed {seed} reader {v}"
                );
                planes.add(&rows, v);
                inc.add(v);
            }
        }
    }

    #[test]
    fn clear_undoes_only_touched_words_but_fully() {
        let (c, unread) = random_instance(0);
        let rows = CoverageRows::build(&c);
        let mut planes = PlaneScratch::new();
        planes.ensure(rows.n_words());
        planes.add(&rows, 0);
        planes.add(&rows, 1);
        planes.clear();
        assert_eq!(planes.weight(unread.words()), 0);
        let mut out = vec![99];
        planes.well_covered_into(unread.words(), &mut out);
        assert!(out.is_empty());
        // Reusable after clear: same answer as a fresh scratch.
        planes.add(&rows, 3);
        let mut eval = WeightEvaluator::new(&c);
        assert_eq!(planes.weight(unread.words()), eval.weight(&[3], &unread));
    }

    #[test]
    fn ensure_reallocates_only_on_resize() {
        let mut planes = PlaneScratch::new();
        planes.ensure(8);
        assert_eq!(planes.take_allocs(), 2);
        planes.ensure(8);
        assert_eq!(planes.take_allocs(), 0);
        planes.ensure(16);
        assert_eq!(planes.take_allocs(), 2);
    }

    #[test]
    fn aligned_words_contract() {
        let w = AlignedWords::zeroed(11);
        assert_eq!(w.len(), 11);
        assert_eq!(w.as_ptr() as usize % CACHE_LINE, 0);
        assert!(w.iter().all(|&x| x == 0));
        let empty = AlignedWords::new();
        assert!(empty.is_empty());
    }
}
