//! Coverage tables: which readers can interrogate which tags.

use crate::deployment::Deployment;
use crate::reader::ReaderId;
use crate::tag::TagId;
use rfid_geometry::GridIndex;
use serde::{Deserialize, Serialize};

/// Bidirectional tag ⇄ reader coverage table.
///
/// [`readers_of`](Coverage::readers_of)`(t)` lists (sorted) the readers
/// whose interrogation disk contains tag `t`;
/// [`tags_of`](Coverage::tags_of)`(i)` lists (sorted) the tags reader
/// `i` covers. Both directions are precomputed once per deployment:
/// weight evaluation iterates the reader direction, and well-covered
/// classification needs the tag direction's cardinalities.
///
/// Internally both directions are flat CSR arrays (offsets + data), not
/// `Vec<Vec<_>>`: four allocations per table instead of `n + m`, which
/// is what makes [`Coverage::patched`] cheap enough for the incremental
/// delta path (carrying 20k rows over is a handful of `memcpy`s).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coverage {
    /// `tag_data[tag_offsets[t]..tag_offsets[t+1]]` = readers of tag `t`.
    tag_offsets: Vec<u32>,
    tag_data: Vec<u32>,
    /// `reader_data[reader_offsets[i]..reader_offsets[i+1]]` = tags of `i`.
    reader_offsets: Vec<u32>,
    reader_data: Vec<u32>,
}

impl Coverage {
    /// Builds the coverage table with a grid index over tag positions
    /// (expected `O(n + m + output)`).
    pub fn build(d: &Deployment) -> Self {
        let n = d.n_readers();
        let m = d.n_tags();
        let mut reader_offsets = vec![0u32; n + 1];
        let mut reader_data = Vec::new();
        if n > 0 && m > 0 {
            let r_max = d
                .interrogation_radii()
                .iter()
                .copied()
                .fold(0.0f64, f64::max)
                .max(1e-6);
            let index = GridIndex::build(d.tag_positions(), r_max);
            for i in 0..n {
                let r = d.interrogation_radii()[i];
                index.for_each_within(d.reader_positions()[i], r, |t, _| {
                    reader_data.push(t as u32);
                });
                reader_offsets[i + 1] = reader_data.len() as u32;
            }
            for i in 0..n {
                reader_data[reader_offsets[i] as usize..reader_offsets[i + 1] as usize]
                    .sort_unstable();
            }
        }
        Self::from_reader_csr(n, m, reader_offsets, reader_data)
    }

    /// Builds a coverage table directly from per-tag reader lists.
    ///
    /// Used by the distributed scheduler to reconstruct a *local* coverage
    /// view from gossiped per-reader tag lists (no positions available).
    /// Lists are sorted/deduplicated internally; reader ids must be
    /// `< n_readers`.
    pub fn from_lists(n_readers: usize, mut tag_readers: Vec<Vec<u32>>) -> Self {
        let m = tag_readers.len();
        let mut tag_offsets = vec![0u32; m + 1];
        let mut tag_data = Vec::new();
        for (t, row) in tag_readers.iter_mut().enumerate() {
            row.sort_unstable();
            row.dedup();
            for &i in row.iter() {
                assert!((i as usize) < n_readers, "reader id {i} out of range");
            }
            tag_data.extend_from_slice(row);
            tag_offsets[t + 1] = tag_data.len() as u32;
        }
        let (reader_offsets, reader_data) = transpose_csr(m, n_readers, &tag_offsets, &tag_data);
        Coverage {
            tag_offsets,
            tag_data,
            reader_offsets,
            reader_data,
        }
    }

    /// Assembles a table from a finished reader-major CSR (rows sorted),
    /// deriving the tag direction by counting transpose.
    fn from_reader_csr(
        n: usize,
        m: usize,
        reader_offsets: Vec<u32>,
        reader_data: Vec<u32>,
    ) -> Self {
        let (tag_offsets, tag_data) = transpose_csr(n, m, &reader_offsets, &reader_data);
        Coverage {
            tag_offsets,
            tag_data,
            reader_offsets,
            reader_data,
        }
    }

    /// Number of tags in the table.
    pub fn n_tags(&self) -> usize {
        self.tag_offsets.len() - 1
    }

    /// Number of readers in the table.
    pub fn n_readers(&self) -> usize {
        self.reader_offsets.len() - 1
    }

    /// Readers covering tag `t`, sorted ascending.
    #[inline]
    pub fn readers_of(&self, t: TagId) -> &[u32] {
        &self.tag_data[self.tag_offsets[t] as usize..self.tag_offsets[t + 1] as usize]
    }

    /// Tags covered by reader `i`, sorted ascending.
    #[inline]
    pub fn tags_of(&self, i: ReaderId) -> &[u32] {
        &self.reader_data[self.reader_offsets[i] as usize..self.reader_offsets[i + 1] as usize]
    }

    /// `true` iff some reader covers tag `t` — only such tags can ever be
    /// served; the MCS loop terminates when all *coverable* tags are read.
    #[inline]
    pub fn is_coverable(&self, t: TagId) -> bool {
        self.tag_offsets[t + 1] > self.tag_offsets[t]
    }

    /// Number of coverable tags.
    pub fn coverable_count(&self) -> usize {
        self.tag_offsets.windows(2).filter(|w| w[1] > w[0]).count()
    }

    /// Per-tag cover degrees in ascending tag order — the streaming
    /// form of [`readers_of`](Self::readers_of)`.len()`, one sequential
    /// pass over the offsets instead of a random lookup per tag.
    pub fn tag_degrees(&self) -> impl Iterator<Item = usize> + '_ {
        self.tag_offsets.windows(2).map(|w| (w[1] - w[0]) as usize)
    }

    /// Incrementally rebuilds the table for an edited deployment,
    /// reusing the rows of an existing table instead of re-running the
    /// full grid pass.
    ///
    /// `old_index[t]` gives, for each tag of the *new* deployment `d`,
    /// its index in the deployment `old` was built for (`None` for a
    /// newly added tag). `touched_readers` lists every reader whose
    /// position or interrogation radius differs from the old
    /// deployment; untouched readers' rows are carried over verbatim.
    /// Equivalent to `Coverage::build(d)` (same boundary semantics —
    /// both reduce to [`Deployment::covers`]) in
    /// `O(incidences + |touched| · m + |added| · n)` without the grid
    /// construction.
    ///
    /// # Panics
    /// If `old_index` does not match `d.n_tags()`, the reader counts
    /// disagree, or an `old_index`/`touched_readers` entry is out of
    /// range.
    pub fn patched(
        d: &Deployment,
        old: &Coverage,
        old_index: &[Option<u32>],
        touched_readers: &[u32],
    ) -> Self {
        assert_eq!(old_index.len(), d.n_tags(), "old_index must match tags");
        assert_eq!(
            old.n_readers(),
            d.n_readers(),
            "patched deployments keep their reader count"
        );
        let n = d.n_readers();
        let m = d.n_tags();
        let mut touched = vec![false; n];
        for &i in touched_readers {
            touched[i as usize] = true;
        }
        // Offsets are emitted strictly left-to-right in both branches,
        // so build by push and skip zero-filling 4(m+1) bytes up front.
        // The data capacity leaves headroom for added tags' rows.
        let mut tag_offsets = Vec::with_capacity(m + 1);
        tag_offsets.push(0u32);
        let mut tag_data = Vec::with_capacity(old.tag_data.len() + touched_readers.len() + 1024);
        // Added tags resolve their row through a grid over *reader*
        // positions (built lazily — pure survivor deltas never pay),
        // turning the per-add cost from O(n) into O(local density).
        let mut reader_grid: Option<(GridIndex, f64)> = None;
        let mut grid_row = |tag_data: &mut Vec<u32>, t_new: usize| {
            let (grid, r_max) = reader_grid.get_or_insert_with(|| {
                let r_max = d
                    .interrogation_radii()
                    .iter()
                    .copied()
                    .fold(0.0f64, f64::max)
                    .max(1e-6);
                (GridIndex::build(d.reader_positions(), r_max), r_max)
            });
            let start = tag_data.len();
            grid.for_each_within(d.tag_positions()[t_new], *r_max, |i, _| {
                if d.covers(i, t_new) {
                    tag_data.push(i as u32);
                }
            });
            tag_data[start..].sort_unstable();
        };
        if touched_readers.is_empty() {
            // Pure tag churn is the delta hot path: a run of surviving
            // tags with consecutive sources is one memcpy of the old
            // rows plus an offset shift — no per-tag work at all.
            let mut t_new = 0usize;
            while t_new < m {
                match old_index[t_new] {
                    Some(t0) => {
                        let mut len = 1usize;
                        while t_new + len < m && old_index[t_new + len] == Some(t0 + len as u32) {
                            len += 1;
                        }
                        let a = old.tag_offsets[t0 as usize] as usize;
                        let b = old.tag_offsets[t0 as usize + len] as usize;
                        // Exact in u32: the true offset fits, so the
                        // wrapping round-trip through a possibly
                        // "negative" shift is lossless.
                        let shift = (tag_data.len() as u32).wrapping_sub(a as u32);
                        tag_data.extend_from_slice(&old.tag_data[a..b]);
                        tag_offsets.extend(
                            old.tag_offsets[t0 as usize + 1..=t0 as usize + len]
                                .iter()
                                .map(|&o| o.wrapping_add(shift)),
                        );
                        t_new += len;
                    }
                    None => {
                        grid_row(&mut tag_data, t_new);
                        tag_offsets.push(tag_data.len() as u32);
                        t_new += 1;
                    }
                }
            }
        } else {
            for (t_new, &src) in old_index.iter().enumerate() {
                let start = tag_data.len();
                match src {
                    // Surviving tag: carry the old row minus touched
                    // readers, then re-test those at their new geometry.
                    Some(t_old) => {
                        for &i in old.readers_of(t_old as usize) {
                            if !touched[i as usize] {
                                tag_data.push(i);
                            }
                        }
                        for &i in touched_readers {
                            if d.covers(i as usize, t_new) {
                                tag_data.push(i);
                            }
                        }
                        tag_data[start..].sort_unstable();
                    }
                    // Added tag: grid lookup at the new geometry
                    // (touched readers included — the grid is over `d`).
                    None => grid_row(&mut tag_data, t_new),
                }
                tag_offsets.push(tag_data.len() as u32);
            }
        }
        let (reader_offsets, reader_data) = transpose_csr(m, n, &tag_offsets, &tag_data);
        Coverage {
            tag_offsets,
            tag_data,
            reader_offsets,
            reader_data,
        }
    }
}

/// Counting transpose of a CSR adjacency: rows-major in, columns-major
/// out. Iterating input rows ascending keeps every output row sorted.
fn transpose_csr(rows: usize, cols: usize, offsets: &[u32], data: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut t_offsets = vec![0u32; cols + 1];
    for &c in data {
        t_offsets[c as usize + 1] += 1;
    }
    for c in 0..cols {
        t_offsets[c + 1] += t_offsets[c];
    }
    let mut cursor: Vec<u32> = t_offsets[..cols].to_vec();
    let mut t_data = vec![0u32; data.len()];
    for r in 0..rows {
        for &c in &data[offsets[r] as usize..offsets[r + 1] as usize] {
            t_data[cursor[c as usize] as usize] = r as u32;
            cursor[c as usize] += 1;
        }
    }
    (t_offsets, t_data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radii::RadiusModel;
    use crate::scenario::{Scenario, ScenarioKind};
    use rfid_geometry::{Point, Rect};

    fn overlap_deployment() -> Deployment {
        // Two readers with overlapping interrogation disks; three tags:
        // one exclusive to each reader and one in the overlap.
        Deployment::new(
            Rect::square(20.0),
            vec![Point::new(5.0, 5.0), Point::new(11.0, 5.0)],
            vec![8.0, 8.0],
            vec![4.0, 4.0],
            vec![
                Point::new(2.0, 5.0),  // only reader 0
                Point::new(8.0, 5.0),  // both
                Point::new(14.0, 5.0), // only reader 1
                Point::new(5.0, 18.0), // nobody
            ],
        )
    }

    #[test]
    fn table_contents() {
        let d = overlap_deployment();
        let c = Coverage::build(&d);
        assert_eq!(c.readers_of(0), &[0]);
        assert_eq!(c.readers_of(1), &[0, 1]);
        assert_eq!(c.readers_of(2), &[1]);
        assert_eq!(c.readers_of(3), &[] as &[u32]);
        assert_eq!(c.tags_of(0), &[0, 1]);
        assert_eq!(c.tags_of(1), &[1, 2]);
    }

    #[test]
    fn coverable_accounting() {
        let c = Coverage::build(&overlap_deployment());
        assert!(c.is_coverable(0));
        assert!(!c.is_coverable(3));
        assert_eq!(c.coverable_count(), 3);
    }

    #[test]
    fn empty_cases() {
        let no_tags = Deployment::new(
            Rect::square(5.0),
            vec![Point::ORIGIN],
            vec![2.0],
            vec![1.0],
            vec![],
        );
        let c = Coverage::build(&no_tags);
        assert_eq!(c.n_tags(), 0);
        assert_eq!(c.tags_of(0), &[] as &[u32]);

        let no_readers = Deployment::new(
            Rect::square(5.0),
            vec![],
            vec![],
            vec![],
            vec![Point::ORIGIN],
        );
        let c = Coverage::build(&no_readers);
        assert_eq!(c.coverable_count(), 0);
    }

    #[test]
    fn from_lists_matches_build() {
        let d = overlap_deployment();
        let built = Coverage::build(&d);
        let lists: Vec<Vec<u32>> = (0..d.n_tags())
            .map(|t| built.readers_of(t).to_vec())
            .collect();
        let reconstructed = Coverage::from_lists(d.n_readers(), lists);
        assert_eq!(built, reconstructed);
    }

    #[test]
    fn from_lists_dedups_and_sorts() {
        let c = Coverage::from_lists(3, vec![vec![2, 0, 2], vec![]]);
        assert_eq!(c.readers_of(0), &[0, 2]);
        assert_eq!(c.tags_of(2), &[0]);
        assert_eq!(c.tags_of(1), &[] as &[u32]);
    }

    #[test]
    fn coverage_boundary_is_closed() {
        let d = Deployment::new(
            Rect::square(10.0),
            vec![Point::ORIGIN],
            vec![5.0],
            vec![3.0],
            vec![Point::new(3.0, 0.0), Point::new(3.0 + 1e-9, 0.0)],
        );
        let c = Coverage::build(&d);
        assert_eq!(c.readers_of(0), &[0]);
        assert!(c.readers_of(1).is_empty());
    }

    #[test]
    fn patched_matches_full_rebuild() {
        for seed in 0..4u64 {
            let base = Scenario {
                kind: ScenarioKind::UniformRandom,
                n_readers: 25,
                n_tags: 150,
                region_side: 80.0,
                radius_model: RadiusModel::PoissonPair {
                    lambda_interference: 12.0,
                    lambda_interrogation: 6.0,
                },
            }
            .generate(seed);
            let old = Coverage::build(&base);

            // Edit: drop tag 3, append two tags, move reader 1, retune
            // reader 4 (zeroed radii = dead reader).
            let mut tags: Vec<Point> = base.tag_positions().to_vec();
            tags.remove(3);
            tags.push(Point::new(1.0, 2.0));
            tags.push(Point::new(70.0, 70.0));
            let mut reader_pos = base.reader_positions().to_vec();
            reader_pos[1] = Point::new(40.0, 40.0);
            let mut big = base.interference_radii().to_vec();
            let mut small = base.interrogation_radii().to_vec();
            big[4] = 0.0;
            small[4] = 0.0;
            let patched_d = Deployment::new(base.region(), reader_pos, big, small, tags);

            let mut old_index: Vec<Option<u32>> = (0..base.n_tags() as u32)
                .filter(|&t| t != 3)
                .map(Some)
                .collect();
            old_index.push(None);
            old_index.push(None);
            let patched = Coverage::patched(&patched_d, &old, &old_index, &[1, 4]);
            assert_eq!(patched, Coverage::build(&patched_d), "seed {seed}");
        }
    }

    #[test]
    fn patched_with_no_edits_is_identity() {
        let d = overlap_deployment();
        let old = Coverage::build(&d);
        let old_index: Vec<Option<u32>> = (0..d.n_tags() as u32).map(Some).collect();
        assert_eq!(Coverage::patched(&d, &old, &old_index, &[]), old);
    }

    #[test]
    fn matches_brute_force_on_random_scenarios() {
        for seed in 0..4u64 {
            let d = Scenario {
                kind: ScenarioKind::UniformRandom,
                n_readers: 30,
                n_tags: 200,
                region_side: 100.0,
                radius_model: RadiusModel::PoissonPair {
                    lambda_interference: 12.0,
                    lambda_interrogation: 6.0,
                },
            }
            .generate(seed);
            let c = Coverage::build(&d);
            for t in 0..d.n_tags() {
                let expect: Vec<u32> = (0..d.n_readers())
                    .filter(|&i| d.covers(i, t))
                    .map(|i| i as u32)
                    .collect();
                assert_eq!(c.readers_of(t), expect.as_slice(), "seed {seed} tag {t}");
            }
        }
    }
}
