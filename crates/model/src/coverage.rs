//! Coverage tables: which readers can interrogate which tags.

use crate::deployment::Deployment;
use crate::reader::ReaderId;
use crate::tag::TagId;
use rfid_geometry::GridIndex;
use serde::{Deserialize, Serialize};

/// Bidirectional tag ⇄ reader coverage table.
///
/// `tag_readers[t]` lists (sorted) the readers whose interrogation disk
/// contains tag `t`; `reader_tags[i]` lists (sorted) the tags reader `i`
/// covers. Both directions are precomputed once per deployment: weight
/// evaluation iterates `reader_tags`, and well-covered classification needs
/// `tag_readers` cardinalities.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coverage {
    tag_readers: Vec<Vec<u32>>,
    reader_tags: Vec<Vec<u32>>,
}

impl Coverage {
    /// Builds the coverage table with a grid index over tag positions
    /// (expected `O(n + m + output)`).
    pub fn build(d: &Deployment) -> Self {
        let n = d.n_readers();
        let m = d.n_tags();
        let mut tag_readers = vec![Vec::new(); m];
        let mut reader_tags = vec![Vec::new(); n];
        if n > 0 && m > 0 {
            let r_max = d
                .interrogation_radii()
                .iter()
                .copied()
                .fold(0.0f64, f64::max)
                .max(1e-6);
            let index = GridIndex::build(d.tag_positions(), r_max);
            #[allow(clippy::needless_range_loop)]
            // `i` indexes radii, positions and rows in parallel
            for i in 0..n {
                let r = d.interrogation_radii()[i];
                index.for_each_within(d.reader_positions()[i], r, |t, _| {
                    reader_tags[i].push(t as u32);
                    tag_readers[t].push(i as u32);
                });
            }
            for row in &mut reader_tags {
                row.sort_unstable();
            }
            for row in &mut tag_readers {
                row.sort_unstable();
            }
        }
        Coverage {
            tag_readers,
            reader_tags,
        }
    }

    /// Builds a coverage table directly from per-tag reader lists.
    ///
    /// Used by the distributed scheduler to reconstruct a *local* coverage
    /// view from gossiped per-reader tag lists (no positions available).
    /// Lists are sorted/deduplicated internally; reader ids must be
    /// `< n_readers`.
    pub fn from_lists(n_readers: usize, mut tag_readers: Vec<Vec<u32>>) -> Self {
        let mut reader_tags = vec![Vec::new(); n_readers];
        for (t, row) in tag_readers.iter_mut().enumerate() {
            row.sort_unstable();
            row.dedup();
            for &i in row.iter() {
                assert!((i as usize) < n_readers, "reader id {i} out of range");
                reader_tags[i as usize].push(t as u32);
            }
        }
        // reader_tags rows are built in increasing t → already sorted.
        Coverage {
            tag_readers,
            reader_tags,
        }
    }

    /// Number of tags in the table.
    pub fn n_tags(&self) -> usize {
        self.tag_readers.len()
    }

    /// Number of readers in the table.
    pub fn n_readers(&self) -> usize {
        self.reader_tags.len()
    }

    /// Readers covering tag `t`, sorted ascending.
    #[inline]
    pub fn readers_of(&self, t: TagId) -> &[u32] {
        &self.tag_readers[t]
    }

    /// Tags covered by reader `i`, sorted ascending.
    #[inline]
    pub fn tags_of(&self, i: ReaderId) -> &[u32] {
        &self.reader_tags[i]
    }

    /// `true` iff some reader covers tag `t` — only such tags can ever be
    /// served; the MCS loop terminates when all *coverable* tags are read.
    #[inline]
    pub fn is_coverable(&self, t: TagId) -> bool {
        !self.tag_readers[t].is_empty()
    }

    /// Number of coverable tags.
    pub fn coverable_count(&self) -> usize {
        self.tag_readers.iter().filter(|r| !r.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radii::RadiusModel;
    use crate::scenario::{Scenario, ScenarioKind};
    use rfid_geometry::{Point, Rect};

    fn overlap_deployment() -> Deployment {
        // Two readers with overlapping interrogation disks; three tags:
        // one exclusive to each reader and one in the overlap.
        Deployment::new(
            Rect::square(20.0),
            vec![Point::new(5.0, 5.0), Point::new(11.0, 5.0)],
            vec![8.0, 8.0],
            vec![4.0, 4.0],
            vec![
                Point::new(2.0, 5.0),  // only reader 0
                Point::new(8.0, 5.0),  // both
                Point::new(14.0, 5.0), // only reader 1
                Point::new(5.0, 18.0), // nobody
            ],
        )
    }

    #[test]
    fn table_contents() {
        let d = overlap_deployment();
        let c = Coverage::build(&d);
        assert_eq!(c.readers_of(0), &[0]);
        assert_eq!(c.readers_of(1), &[0, 1]);
        assert_eq!(c.readers_of(2), &[1]);
        assert_eq!(c.readers_of(3), &[] as &[u32]);
        assert_eq!(c.tags_of(0), &[0, 1]);
        assert_eq!(c.tags_of(1), &[1, 2]);
    }

    #[test]
    fn coverable_accounting() {
        let c = Coverage::build(&overlap_deployment());
        assert!(c.is_coverable(0));
        assert!(!c.is_coverable(3));
        assert_eq!(c.coverable_count(), 3);
    }

    #[test]
    fn empty_cases() {
        let no_tags = Deployment::new(
            Rect::square(5.0),
            vec![Point::ORIGIN],
            vec![2.0],
            vec![1.0],
            vec![],
        );
        let c = Coverage::build(&no_tags);
        assert_eq!(c.n_tags(), 0);
        assert_eq!(c.tags_of(0), &[] as &[u32]);

        let no_readers = Deployment::new(
            Rect::square(5.0),
            vec![],
            vec![],
            vec![],
            vec![Point::ORIGIN],
        );
        let c = Coverage::build(&no_readers);
        assert_eq!(c.coverable_count(), 0);
    }

    #[test]
    fn from_lists_matches_build() {
        let d = overlap_deployment();
        let built = Coverage::build(&d);
        let lists: Vec<Vec<u32>> = (0..d.n_tags())
            .map(|t| built.readers_of(t).to_vec())
            .collect();
        let reconstructed = Coverage::from_lists(d.n_readers(), lists);
        assert_eq!(built, reconstructed);
    }

    #[test]
    fn from_lists_dedups_and_sorts() {
        let c = Coverage::from_lists(3, vec![vec![2, 0, 2], vec![]]);
        assert_eq!(c.readers_of(0), &[0, 2]);
        assert_eq!(c.tags_of(2), &[0]);
        assert_eq!(c.tags_of(1), &[] as &[u32]);
    }

    #[test]
    fn coverage_boundary_is_closed() {
        let d = Deployment::new(
            Rect::square(10.0),
            vec![Point::ORIGIN],
            vec![5.0],
            vec![3.0],
            vec![Point::new(3.0, 0.0), Point::new(3.0 + 1e-9, 0.0)],
        );
        let c = Coverage::build(&d);
        assert_eq!(c.readers_of(0), &[0]);
        assert!(c.readers_of(1).is_empty());
    }

    #[test]
    fn matches_brute_force_on_random_scenarios() {
        for seed in 0..4u64 {
            let d = Scenario {
                kind: ScenarioKind::UniformRandom,
                n_readers: 30,
                n_tags: 200,
                region_side: 100.0,
                radius_model: RadiusModel::PoissonPair {
                    lambda_interference: 12.0,
                    lambda_interrogation: 6.0,
                },
            }
            .generate(seed);
            let c = Coverage::build(&d);
            for t in 0..d.n_tags() {
                let expect: Vec<u32> = (0..d.n_readers())
                    .filter(|&i| d.covers(i, t))
                    .map(|i| i as u32)
                    .collect();
                assert_eq!(c.readers_of(t), expect.as_slice(), "seed {seed} tag {t}");
            }
        }
    }
}
