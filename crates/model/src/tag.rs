//! Tag identity and the unread-tag set.

use serde::{Deserialize, Serialize};

/// Index of a tag within its [`Deployment`](crate::Deployment), zero-based.
pub type TagId = usize;

/// A dense set of tags tracking which are still *unread*.
///
/// The paper's weight `w(X)` and the covering-schedule loop both operate on
/// the set of unread tags; a served tag "leaves the system". `TagSet` is a
/// plain bit-set with a cached count so `w(X)` evaluation and the MCS
/// termination test are O(1) per membership query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagSet {
    unread: Vec<bool>,
    remaining: usize,
}

impl TagSet {
    /// All `m` tags unread.
    pub fn all_unread(m: usize) -> Self {
        TagSet {
            unread: vec![true; m],
            remaining: m,
        }
    }

    /// Total number of tags (read or not).
    pub fn len(&self) -> usize {
        self.unread.len()
    }

    /// `true` iff the deployment has no tags at all.
    pub fn is_empty(&self) -> bool {
        self.unread.is_empty()
    }

    /// Number of tags still unread.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// `true` iff `tag` has not been served yet.
    #[inline]
    pub fn is_unread(&self, tag: TagId) -> bool {
        self.unread[tag]
    }

    /// Marks `tag` as served; idempotent.
    pub fn mark_read(&mut self, tag: TagId) {
        if std::mem::replace(&mut self.unread[tag], false) {
            self.remaining -= 1;
        }
    }

    /// Marks many tags served.
    pub fn mark_all_read(&mut self, tags: &[TagId]) {
        for &t in tags {
            self.mark_read(t);
        }
    }

    /// Iterator over unread tag ids, ascending.
    pub fn iter_unread(&self) -> impl Iterator<Item = TagId> + '_ {
        self.unread
            .iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_set_is_all_unread() {
        let s = TagSet::all_unread(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.remaining(), 5);
        assert!((0..5).all(|t| s.is_unread(t)));
    }

    #[test]
    fn marking_is_idempotent() {
        let mut s = TagSet::all_unread(3);
        s.mark_read(1);
        s.mark_read(1);
        assert_eq!(s.remaining(), 2);
        assert!(!s.is_unread(1));
        assert!(s.is_unread(0));
    }

    #[test]
    fn bulk_marking_and_iteration() {
        let mut s = TagSet::all_unread(6);
        s.mark_all_read(&[0, 2, 4, 4]);
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.iter_unread().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn empty_set() {
        let s = TagSet::all_unread(0);
        assert!(s.is_empty());
        assert_eq!(s.remaining(), 0);
        assert_eq!(s.iter_unread().count(), 0);
    }
}
