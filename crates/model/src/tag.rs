//! Tag identity and the unread-tag set.

use serde::{Deserialize, Serialize};

/// Index of a tag within its [`Deployment`](crate::Deployment), zero-based.
pub type TagId = usize;

/// A dense set of tags tracking which are still *unread*.
///
/// The paper's weight `w(X)` and the covering-schedule loop both operate on
/// the set of unread tags; a served tag "leaves the system". `TagSet` packs
/// membership into `u64` words with a cached count, so `w(X)` evaluation
/// and the MCS termination test are O(1) per membership query, and the
/// bitset hot path ([`crate::bits`]) can intersect whole cache lines of
/// coverage against [`words`](Self::words) with popcounts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagSet {
    /// Bit `t % 64` of `words[t / 64]` is set iff tag `t` is unread; bits
    /// at and beyond `len` are always clear.
    words: Vec<u64>,
    len: usize,
    remaining: usize,
}

impl TagSet {
    /// All `m` tags unread.
    pub fn all_unread(m: usize) -> Self {
        let mut words = vec![u64::MAX; m.div_ceil(64)];
        if !m.is_multiple_of(64) {
            *words.last_mut().unwrap() = (1u64 << (m % 64)) - 1;
        }
        TagSet {
            words,
            len: m,
            remaining: m,
        }
    }

    /// Total number of tags (read or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the deployment has no tags at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of tags still unread.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// `true` iff `tag` has not been served yet.
    #[inline]
    pub fn is_unread(&self, tag: TagId) -> bool {
        assert!(tag < self.len, "tag {tag} out of range {}", self.len);
        self.words[tag / 64] >> (tag % 64) & 1 == 1
    }

    /// The packed membership words (unread = set bit), tail bits clear.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Marks `tag` as served; idempotent.
    pub fn mark_read(&mut self, tag: TagId) {
        assert!(tag < self.len, "tag {tag} out of range {}", self.len);
        let (w, bit) = (tag / 64, 1u64 << (tag % 64));
        if self.words[w] & bit != 0 {
            self.words[w] &= !bit;
            self.remaining -= 1;
        }
    }

    /// Marks many tags served.
    pub fn mark_all_read(&mut self, tags: &[TagId]) {
        for &t in tags {
            self.mark_read(t);
        }
    }

    /// Iterator over unread tag ids, ascending.
    pub fn iter_unread(&self) -> impl Iterator<Item = TagId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let t = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(t)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_set_is_all_unread() {
        let s = TagSet::all_unread(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.remaining(), 5);
        assert!((0..5).all(|t| s.is_unread(t)));
    }

    #[test]
    fn marking_is_idempotent() {
        let mut s = TagSet::all_unread(3);
        s.mark_read(1);
        s.mark_read(1);
        assert_eq!(s.remaining(), 2);
        assert!(!s.is_unread(1));
        assert!(s.is_unread(0));
    }

    #[test]
    fn bulk_marking_and_iteration() {
        let mut s = TagSet::all_unread(6);
        s.mark_all_read(&[0, 2, 4, 4]);
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.iter_unread().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn empty_set() {
        let s = TagSet::all_unread(0);
        assert!(s.is_empty());
        assert_eq!(s.remaining(), 0);
        assert_eq!(s.iter_unread().count(), 0);
    }

    #[test]
    fn word_boundaries_are_exact() {
        for m in [63, 64, 65, 128, 130] {
            let mut s = TagSet::all_unread(m);
            assert_eq!(s.words().len(), m.div_ceil(64));
            let tail_bits: u32 = s.words().iter().map(|w| w.count_ones()).sum();
            assert_eq!(tail_bits as usize, m, "tail bits must be clear at m={m}");
            s.mark_read(m - 1);
            s.mark_read(0);
            assert_eq!(s.remaining(), m - 2);
            assert_eq!(s.iter_unread().count(), m - 2);
            assert!(!s.is_unread(m - 1));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_query_panics() {
        TagSet::all_unread(64).is_unread(64);
    }
}
