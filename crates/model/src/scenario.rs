//! Scenario generators — reproducible deployments.
//!
//! [`Scenario::paper_evaluation`] is the paper's Section VI setup: 50
//! readers and 1200 tags uniform in a 100×100 square with Poisson radii.
//! Clustered and lattice layouts back the examples and robustness tests.

use crate::deployment::Deployment;
use crate::radii::RadiusModel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rfid_geometry::sampling::{clustered_points, uniform_points};
use rfid_geometry::{Point, Rect};
use serde::{Deserialize, Serialize};

/// Spatial layout of readers and tags.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Readers and tags both uniform at random (the paper's evaluation).
    UniformRandom,
    /// Readers uniform, tags in Gaussian clusters (pallets at a dock).
    ClusteredTags {
        /// Number of Gaussian clusters.
        clusters: usize,
        /// Standard deviation of each cluster.
        sigma: f64,
    },
    /// Readers on a ⌈√n⌉×⌈√n⌉ lattice, tags uniform (planned deployments
    /// à la Zhou et al.).
    LatticeReaders,
}

/// A fully parameterised, seed-reproducible scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Spatial layout of readers and tags.
    pub kind: ScenarioKind,
    /// Number of readers `n`.
    pub n_readers: usize,
    /// Number of tags `m`.
    pub n_tags: usize,
    /// Side length of the square deployment region.
    pub region_side: f64,
    /// How per-reader radii are drawn.
    pub radius_model: RadiusModel,
}

impl Scenario {
    /// Paper §VI: "we uniformly and randomly distribute 50 readers and 1200
    /// tags in a square region of side-length 100 units", radii Poisson.
    ///
    /// ```
    /// use rfid_model::Scenario;
    /// let deployment = Scenario::paper_evaluation(14.0, 6.0).generate(42);
    /// assert_eq!(deployment.n_readers(), 50);
    /// assert_eq!(deployment.n_tags(), 1200);
    /// // identical seed ⇒ identical deployment, on every platform
    /// assert_eq!(deployment, Scenario::paper_evaluation(14.0, 6.0).generate(42));
    /// ```
    pub fn paper_evaluation(lambda_interference: f64, lambda_interrogation: f64) -> Self {
        Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 50,
            n_tags: 1200,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference,
                lambda_interrogation,
            },
        }
    }

    /// Generates the deployment for `seed`. The same `(scenario, seed)`
    /// always yields the same deployment, across platforms (ChaCha8 RNG).
    pub fn generate(&self, seed: u64) -> Deployment {
        assert!(self.region_side > 0.0, "region side must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let region = Rect::square(self.region_side);

        let reader_pos: Vec<Point> = match self.kind {
            ScenarioKind::UniformRandom | ScenarioKind::ClusteredTags { .. } => {
                uniform_points(&mut rng, self.n_readers, region)
            }
            ScenarioKind::LatticeReaders => {
                let cols = (self.n_readers as f64).sqrt().ceil() as usize;
                let rows = self.n_readers.div_ceil(cols.max(1)).max(1);
                (0..self.n_readers)
                    .map(|i| {
                        let cx = (i % cols) as f64 + 0.5;
                        let cy = (i / cols) as f64 + 0.5;
                        Point::new(
                            cx * self.region_side / cols as f64,
                            cy * self.region_side / rows as f64,
                        )
                    })
                    .collect()
            }
        };

        let mut interference = Vec::with_capacity(self.n_readers);
        let mut interrogation = Vec::with_capacity(self.n_readers);
        for _ in 0..self.n_readers {
            let (big, small) = self.radius_model.sample(&mut rng);
            interference.push(big);
            interrogation.push(small);
        }

        let tag_pos = match self.kind {
            ScenarioKind::UniformRandom | ScenarioKind::LatticeReaders => {
                uniform_points(&mut rng, self.n_tags, region)
            }
            ScenarioKind::ClusteredTags { clusters, sigma } => {
                let centers = uniform_points(&mut rng, clusters.max(1), region);
                clustered_points(&mut rng, self.n_tags, region, &centers, sigma)
            }
        };

        Deployment::new(region, reader_pos, interference, interrogation, tag_pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenario_shape() {
        let d = Scenario::paper_evaluation(14.0, 6.0).generate(1);
        assert_eq!(d.n_readers(), 50);
        assert_eq!(d.n_tags(), 1200);
        assert_eq!(d.region(), Rect::square(100.0));
        for i in 0..d.n_readers() {
            let r = d.reader(i);
            assert!(r.interrogation_radius >= 1.0);
            assert!(r.interrogation_radius <= r.interference_radius);
            assert!(d.region().contains(r.pos));
        }
        for t in 0..d.n_tags() {
            assert!(d.region().contains(d.tag(t)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = Scenario::paper_evaluation(14.0, 6.0);
        assert_eq!(s.generate(77), s.generate(77));
    }

    #[test]
    fn different_seeds_differ() {
        let s = Scenario::paper_evaluation(14.0, 6.0);
        assert_ne!(s.generate(1), s.generate(2));
    }

    #[test]
    fn lattice_positions_are_regular() {
        let s = Scenario {
            kind: ScenarioKind::LatticeReaders,
            n_readers: 9,
            n_tags: 10,
            region_side: 30.0,
            radius_model: RadiusModel::Fixed {
                interference: 5.0,
                interrogation: 2.0,
            },
        };
        let d = s.generate(0);
        assert_eq!(d.reader(0).pos, Point::new(5.0, 5.0));
        assert_eq!(d.reader(4).pos, Point::new(15.0, 15.0));
        assert_eq!(d.reader(8).pos, Point::new(25.0, 25.0));
    }

    #[test]
    fn clustered_tags_stay_in_region() {
        let s = Scenario {
            kind: ScenarioKind::ClusteredTags {
                clusters: 4,
                sigma: 5.0,
            },
            n_readers: 10,
            n_tags: 500,
            region_side: 100.0,
            radius_model: RadiusModel::paper_default(),
        };
        let d = s.generate(3);
        for t in 0..d.n_tags() {
            assert!(d.region().contains(d.tag(t)));
        }
    }
}
