//! Radius assignment models.
//!
//! The paper's evaluation "randomly assign\[s\] different interference range
//! and interrogation range to each reader following Poisson distribution
//! with parameter (mean) λ_R and λ_r respectively", then modifies
//! assignments "to ensure R_i ≥ r_i". [`RadiusModel::PoissonPair`] is that
//! model; fixed and scaled variants support the earlier works' settings
//! (identical radii, or `r_i = βR_i` as in Section II's simplification) and
//! the ablation benches.

use rand::Rng;
use rfid_geometry::sampling::poisson_at_least;
use serde::{Deserialize, Serialize};

/// How reader radii `(R_i, r_i)` are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RadiusModel {
    /// Paper §VI: `R_i ~ Poisson(λ_R)`, `r_i ~ Poisson(λ_r)`, both floored
    /// at 1 unit, and `r_i` clamped to `R_i` so interrogation never exceeds
    /// interference.
    PoissonPair {
        /// Mean λ_R of the interference radii.
        lambda_interference: f64,
        /// Mean λ_r of the interrogation radii.
        lambda_interrogation: f64,
    },
    /// Every reader identical — the "ideal model" of Zhou et al. that the
    /// paper generalises away from.
    Fixed {
        /// Shared interference radius R.
        interference: f64,
        /// Shared interrogation radius r ≤ R.
        interrogation: f64,
    },
    /// `R_i ~ Poisson(λ_R)` floored at 1 and `r_i = β·R_i` with
    /// `0 < β < 1` — Section II's presentation convenience.
    Scaled {
        /// Mean λ_R of the interference radii.
        lambda_interference: f64,
        /// Interrogation fraction: r_i = β·R_i.
        beta: f64,
    },
}

impl RadiusModel {
    /// Paper defaults used throughout the figures when the respective λ is
    /// "fixed": `λ_R = 14`, `λ_r = 6` on the 100×100 region.
    pub fn paper_default() -> Self {
        RadiusModel::PoissonPair {
            lambda_interference: 14.0,
            lambda_interrogation: 6.0,
        }
    }

    /// Draws `(R_i, r_i)` for one reader. Guarantees `0 < r_i ≤ R_i`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> (f64, f64) {
        match *self {
            RadiusModel::PoissonPair {
                lambda_interference,
                lambda_interrogation,
            } => {
                let big = poisson_at_least(rng, lambda_interference, 1) as f64;
                let small = poisson_at_least(rng, lambda_interrogation, 1) as f64;
                (big, small.min(big))
            }
            RadiusModel::Fixed {
                interference,
                interrogation,
            } => {
                assert!(
                    interrogation > 0.0 && interrogation <= interference,
                    "need 0 < interrogation ≤ interference"
                );
                (interference, interrogation)
            }
            RadiusModel::Scaled {
                lambda_interference,
                beta,
            } => {
                assert!(beta > 0.0 && beta < 1.0, "β must be in (0, 1)");
                let big = poisson_at_least(rng, lambda_interference, 1) as f64;
                (big, beta * big)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_pair_respects_ordering() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = RadiusModel::PoissonPair {
            lambda_interference: 5.0,
            lambda_interrogation: 9.0,
        };
        for _ in 0..2000 {
            let (big, small) = m.sample(&mut rng);
            assert!(small > 0.0, "interrogation radius must be positive");
            assert!(small <= big, "r_i must not exceed R_i");
        }
    }

    #[test]
    fn poisson_pair_means_are_plausible() {
        let mut rng = StdRng::seed_from_u64(12);
        let m = RadiusModel::PoissonPair {
            lambda_interference: 14.0,
            lambda_interrogation: 6.0,
        };
        let n = 5000;
        let (mut sum_big, mut sum_small) = (0.0, 0.0);
        for _ in 0..n {
            let (b, s) = m.sample(&mut rng);
            sum_big += b;
            sum_small += s;
        }
        let mean_big = sum_big / n as f64;
        let mean_small = sum_small / n as f64;
        assert!((mean_big - 14.0).abs() < 0.5, "mean R = {mean_big}");
        // Clamping r ≤ R barely moves the mean when λ_r ≪ λ_R.
        assert!((mean_small - 6.0).abs() < 0.5, "mean r = {mean_small}");
    }

    #[test]
    fn fixed_model_is_constant() {
        let mut rng = StdRng::seed_from_u64(13);
        let m = RadiusModel::Fixed {
            interference: 10.0,
            interrogation: 4.0,
        };
        assert_eq!(m.sample(&mut rng), (10.0, 4.0));
        assert_eq!(m.sample(&mut rng), (10.0, 4.0));
    }

    #[test]
    fn scaled_model_applies_beta() {
        let mut rng = StdRng::seed_from_u64(14);
        let m = RadiusModel::Scaled {
            lambda_interference: 8.0,
            beta: 0.5,
        };
        for _ in 0..100 {
            let (big, small) = m.sample(&mut rng);
            assert!((small - 0.5 * big).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "interrogation")]
    fn fixed_model_rejects_inverted_radii() {
        let mut rng = StdRng::seed_from_u64(15);
        let _ = RadiusModel::Fixed {
            interference: 3.0,
            interrogation: 4.0,
        }
        .sample(&mut rng);
    }
}
