//! Deployment analysis: the descriptive statistics behind the evaluation.
//!
//! The paper's trends (weight up with λ_r, down with λ_R; CA's widening
//! gap) are driven by a few structural quantities of the deployment —
//! how many readers cover a tag, how much interrogation area overlaps, how
//! dense the interference graph is. This module computes them so the
//! harness can *explain* figure shapes instead of just plotting them.

use crate::coverage::Coverage;
use crate::deployment::Deployment;
use serde::{Deserialize, Serialize};

/// Structural statistics of one deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentStats {
    /// `histogram[k]` = number of tags covered by exactly `k` readers
    /// (index 0 = uncoverable tags). Truncated at the maximum observed k.
    pub coverage_histogram: Vec<usize>,
    /// Mean readers covering a coverable tag.
    pub mean_coverage: f64,
    /// Fraction of coverable tags covered by ≥ 2 readers — the share at
    /// RRc risk, the quantity that separates `w(X)` from plain coverage.
    pub overlap_fraction: f64,
    /// Interference-graph degree histogram (`[k]` = readers with degree k).
    pub degree_histogram: Vec<usize>,
    /// Mean interference degree.
    pub mean_degree: f64,
    /// Sum of interrogation-disk areas divided by the region area — the
    /// offered coverage density (can exceed 1 with overlaps).
    pub interrogation_density: f64,
}

/// Computes the statistics for one deployment (with its coverage table and
/// interference graph, which callers usually already hold).
pub fn deployment_stats(
    d: &Deployment,
    coverage: &Coverage,
    graph: &rfid_graph::Csr,
) -> DeploymentStats {
    // Coverage histogram.
    let mut coverage_histogram = Vec::new();
    let mut covered_sum = 0usize;
    let mut coverable = 0usize;
    let mut overlapped = 0usize;
    for t in 0..d.n_tags() {
        let k = coverage.readers_of(t).len();
        if coverage_histogram.len() <= k {
            coverage_histogram.resize(k + 1, 0);
        }
        coverage_histogram[k] += 1;
        if k >= 1 {
            coverable += 1;
            covered_sum += k;
        }
        if k >= 2 {
            overlapped += 1;
        }
    }
    if coverage_histogram.is_empty() {
        coverage_histogram.push(0);
    }
    let mean_coverage = if coverable == 0 {
        0.0
    } else {
        covered_sum as f64 / coverable as f64
    };
    let overlap_fraction = if coverable == 0 {
        0.0
    } else {
        overlapped as f64 / coverable as f64
    };

    // Degree histogram.
    let mut degree_histogram = Vec::new();
    let mut deg_sum = 0usize;
    for v in 0..d.n_readers() {
        let k = graph.degree(v);
        if degree_histogram.len() <= k {
            degree_histogram.resize(k + 1, 0);
        }
        degree_histogram[k] += 1;
        deg_sum += k;
    }
    if degree_histogram.is_empty() {
        degree_histogram.push(0);
    }
    let mean_degree = if d.n_readers() == 0 {
        0.0
    } else {
        deg_sum as f64 / d.n_readers() as f64
    };

    let area = d.region().area();
    let interrogation_density = if area == 0.0 {
        0.0
    } else {
        d.interrogation_radii()
            .iter()
            .map(|&r| std::f64::consts::PI * r * r)
            .sum::<f64>()
            / area
    };

    DeploymentStats {
        coverage_histogram,
        mean_coverage,
        overlap_fraction,
        degree_histogram,
        mean_degree,
        interrogation_density,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::interference_graph;
    use crate::scenario::{Scenario, ScenarioKind};
    use crate::RadiusModel;
    use rfid_geometry::{Point, Rect};

    #[test]
    fn hand_built_deployment_statistics() {
        // Two overlapping readers, tags at: exclusive-0, shared, exclusive-1,
        // uncovered.
        let d = Deployment::new(
            Rect::square(20.0),
            vec![Point::new(5.0, 5.0), Point::new(11.0, 5.0)],
            vec![8.0, 8.0],
            vec![4.0, 4.0],
            vec![
                Point::new(2.0, 5.0),
                Point::new(8.0, 5.0),
                Point::new(14.0, 5.0),
                Point::new(5.0, 18.0),
            ],
        );
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let stats = deployment_stats(&d, &c, &g);
        assert_eq!(stats.coverage_histogram, vec![1, 2, 1]);
        assert!((stats.mean_coverage - 4.0 / 3.0).abs() < 1e-12);
        assert!((stats.overlap_fraction - 1.0 / 3.0).abs() < 1e-12);
        // dist 6 ≤ max(8,8): the two readers interfere → degree 1 each.
        assert_eq!(stats.degree_histogram, vec![0, 2]);
        assert_eq!(stats.mean_degree, 1.0);
        // 2 × π·16 / 400
        assert!(
            (stats.interrogation_density - 2.0 * std::f64::consts::PI * 16.0 / 400.0).abs() < 1e-12
        );
    }

    #[test]
    fn histograms_sum_to_populations() {
        let d = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 30,
            n_tags: 400,
            region_side: 100.0,
            radius_model: RadiusModel::PoissonPair {
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
            },
        }
        .generate(8);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let stats = deployment_stats(&d, &c, &g);
        assert_eq!(stats.coverage_histogram.iter().sum::<usize>(), d.n_tags());
        assert_eq!(stats.degree_histogram.iter().sum::<usize>(), d.n_readers());
        assert_eq!(
            stats.coverage_histogram[0],
            d.n_tags() - c.coverable_count()
        );
    }

    #[test]
    fn overlap_rises_with_interrogation_radius() {
        let base = |lambda_r: f64, seed| {
            let d = Scenario {
                kind: ScenarioKind::UniformRandom,
                n_readers: 40,
                n_tags: 500,
                region_side: 100.0,
                radius_model: RadiusModel::PoissonPair {
                    lambda_interference: 20.0,
                    lambda_interrogation: lambda_r,
                },
            }
            .generate(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            deployment_stats(&d, &c, &g).overlap_fraction
        };
        let mut small = 0.0;
        let mut large = 0.0;
        for seed in 0..5 {
            small += base(3.0, seed);
            large += base(12.0, seed);
        }
        assert!(
            large > small,
            "overlap fraction must grow with interrogation radii ({large} vs {small})"
        );
    }

    #[test]
    fn empty_deployment_is_all_zeros() {
        let d = Deployment::new(Rect::square(10.0), vec![], vec![], vec![], vec![]);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let stats = deployment_stats(&d, &c, &g);
        assert_eq!(stats.mean_coverage, 0.0);
        assert_eq!(stats.mean_degree, 0.0);
        assert_eq!(stats.interrogation_density, 0.0);
    }
}
