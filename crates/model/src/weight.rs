//! The weight function `w(X)` (paper Definition 3) — batch and incremental.
//!
//! For a *feasible* scheduling set `X`, `w(X)` is the number of unread tags
//! located in the interrogation region of **exactly one** reader of `X`:
//! tags in overlapping regions are excluded (RRc), and feasibility already
//! rules out RTc. The weight is famously *not additive* —
//! `w(X₁ ∪ X₂) ≤ w(X₁) + w(X₂)` — which is exactly what makes the paper's
//! MWFS search harder than classic maximum-weight independent set.
//!
//! [`WeightEvaluator`] scores a whole set in `O(Σ_{v∈X} |tags(v)|)` with a
//! stamped scratch array (no per-call allocation); [`IncrementalWeight`]
//! maintains an active set under add/remove/peek in `O(|tags(v)|)` per
//! operation, which is what the Greedy Hill-Climbing baseline and the local
//! searches in Algorithms 1–3 iterate on.
//!
//! Both evaluators are thin borrows over unborrowed cores
//! ([`EvalScratch`], [`IncrementalCore`]) so long-lived scheduler scratch
//! can persist across slots without a coverage lifetime: a core's
//! [`IncrementalCore::reset`] re-snapshots the unread set as a packed-word
//! memcpy plus a stamp bump — `O(n_tags / 64)`, not `O(n_tags)` — which is
//! what keeps per-slot setup flat on the n = 100k scaling legs.

use crate::coverage::Coverage;
use crate::reader::ReaderId;
use crate::tag::{TagId, TagSet};

/// Unborrowed scratch behind [`WeightEvaluator`]: per-tag cover counts
/// with stamp invalidation, so consecutive evaluations of different sets
/// never pay a clear. Every method takes the coverage table explicitly;
/// persistent scheduler state stores this core and borrows coverage per
/// call.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    /// Per-tag cover count for the set being evaluated, valid where
    /// `stamp_of[t] == stamp`.
    counts: Vec<u32>,
    stamp_of: Vec<u64>,
    stamp: u64,
}

impl EvalScratch {
    /// Scratch sized for `n_tags` tags.
    pub fn new(n_tags: usize) -> Self {
        EvalScratch {
            counts: vec![0; n_tags],
            stamp_of: vec![0; n_tags],
            stamp: 0,
        }
    }

    /// Resizes for a different tag count (no-op when unchanged).
    pub fn ensure(&mut self, n_tags: usize) {
        if self.counts.len() != n_tags {
            self.counts = vec![0; n_tags];
            self.stamp_of = vec![0; n_tags];
            self.stamp = 0;
        }
    }

    #[inline]
    fn bump(&mut self, t: usize) -> u32 {
        if self.stamp_of[t] != self.stamp {
            self.stamp_of[t] = self.stamp;
            self.counts[t] = 1;
        } else {
            self.counts[t] += 1;
        }
        self.counts[t]
    }

    /// `w(X)` for a feasible set `X` against the given unread set — see
    /// [`WeightEvaluator::weight`] for the contract.
    pub fn weight(&mut self, coverage: &Coverage, set: &[ReaderId], unread: &TagSet) -> usize {
        self.stamp += 1;
        let mut exactly_once = 0usize;
        for &v in set {
            for &t in coverage.tags_of(v) {
                let t = t as usize;
                if !unread.is_unread(t) {
                    continue;
                }
                match self.bump(t) {
                    1 => exactly_once += 1,
                    2 => exactly_once -= 1,
                    _ => {}
                }
            }
        }
        exactly_once
    }

    /// The well-covered tags of a feasible set, sorted ascending — see
    /// [`WeightEvaluator::well_covered`].
    pub fn well_covered(
        &mut self,
        coverage: &Coverage,
        set: &[ReaderId],
        unread: &TagSet,
    ) -> Vec<TagId> {
        self.stamp += 1;
        let mut candidates: Vec<TagId> = Vec::new();
        for &v in set {
            for &t in coverage.tags_of(v) {
                let t = t as usize;
                if !unread.is_unread(t) {
                    continue;
                }
                if self.bump(t) == 1 {
                    candidates.push(t);
                }
            }
        }
        candidates.retain(|&t| self.counts[t] == 1 && self.stamp_of[t] == self.stamp);
        candidates.sort_unstable();
        candidates
    }
}

/// Batch evaluator for `w(X)` over a fixed coverage table.
///
/// Reusable: allocate once per (deployment, thread), call
/// [`weight`](Self::weight) many times.
///
/// ```
/// use rfid_model::{Coverage, Scenario, TagSet, WeightEvaluator};
/// let d = Scenario::paper_evaluation(14.0, 6.0).generate(1);
/// let coverage = Coverage::build(&d);
/// let unread = TagSet::all_unread(d.n_tags());
/// let mut w = WeightEvaluator::new(&coverage);
/// // the weight is sub-additive: w(A ∪ B) ≤ w(A) + w(B)
/// let (a, b): (Vec<usize>, Vec<usize>) = ((0..25).collect(), (25..50).collect());
/// let all: Vec<usize> = (0..50).collect();
/// assert!(w.weight(&all, &unread) <= w.weight(&a, &unread) + w.weight(&b, &unread));
/// ```
#[derive(Debug, Clone)]
pub struct WeightEvaluator<'a> {
    coverage: &'a Coverage,
    core: EvalScratch,
}

impl<'a> WeightEvaluator<'a> {
    /// Creates an evaluator for one coverage table.
    pub fn new(coverage: &'a Coverage) -> Self {
        WeightEvaluator {
            coverage,
            core: EvalScratch::new(coverage.n_tags()),
        }
    }

    /// `w(X)` for a feasible set `X` against the given unread set.
    ///
    /// The caller is responsible for `X` being feasible (pairwise
    /// independent) — for infeasible sets this still returns the
    /// exactly-once-covered count, but that number is not Definition 3's
    /// weight (see `crate::collisions` for the general Definition 1 audit).
    pub fn weight(&mut self, set: &[ReaderId], unread: &TagSet) -> usize {
        self.core.weight(self.coverage, set, unread)
    }

    /// The well-covered tags of a feasible set: unread tags covered by
    /// exactly one reader of `X`. Sorted ascending.
    pub fn well_covered(&mut self, set: &[ReaderId], unread: &TagSet) -> Vec<TagId> {
        self.core.well_covered(self.coverage, set, unread)
    }

    /// `w({v})`: every unread tag in `v`'s interrogation region.
    pub fn singleton_weight(&mut self, v: ReaderId, unread: &TagSet) -> usize {
        self.coverage
            .tags_of(v)
            .iter()
            .filter(|&&t| unread.is_unread(t as usize))
            .count()
    }

    /// Per-reader singleton weights (the initial node weights of
    /// Algorithms 2/3 and Colorwave's tie-breakers).
    pub fn all_singleton_weights(&mut self, unread: &TagSet) -> Vec<usize> {
        (0..self.coverage.n_readers())
            .map(|v| self.singleton_weight(v, unread))
            .collect()
    }
}

/// Incrementally maintained per-reader singleton weights `w({v})`.
///
/// The covering-schedule driver keeps one instance alive across slots:
/// after a slot serves tags `S`, [`mark_all_read`](Self::mark_all_read)
/// walks `S` and updates only the readers covering each newly-read tag
/// (via [`Coverage::readers_of`]) instead of rescanning every reader's
/// tag list. Because tags are only ever marked read, every entry is
/// monotonically non-increasing — the property that makes a lazily
/// updated priority queue over these weights valid (a cached entry is
/// always an upper bound on the current weight).
#[derive(Debug, Clone)]
pub struct SingletonWeights<'a> {
    coverage: &'a Coverage,
    weights: Vec<usize>,
    /// Tags already discounted, so repeated marks are idempotent (the
    /// driver's `TagSet` has the same contract).
    read: Vec<bool>,
}

impl<'a> SingletonWeights<'a> {
    /// Full computation from the current unread set —
    /// `O(Σ_v |tags(v)|)`, done once per covering schedule.
    pub fn new(coverage: &'a Coverage, unread: &TagSet) -> Self {
        let weights = (0..coverage.n_readers())
            .map(|v| {
                coverage
                    .tags_of(v)
                    .iter()
                    .filter(|&&t| unread.is_unread(t as usize))
                    .count()
            })
            .collect();
        Self::with_weights(coverage, unread, weights)
    }

    /// As [`new`](Self::new), but computes the initial weights by
    /// popcounting packed coverage rows against the unread words —
    /// `O(row words)` instead of `O(incidences)`, same values.
    pub fn from_rows(
        coverage: &'a Coverage,
        rows: &crate::bits::CoverageRows,
        unread: &TagSet,
    ) -> Self {
        debug_assert_eq!(rows.n_readers(), coverage.n_readers());
        Self::with_weights(coverage, unread, rows.all_singleton_weights(unread))
    }

    fn with_weights(coverage: &'a Coverage, unread: &TagSet, weights: Vec<usize>) -> Self {
        let read = (0..coverage.n_tags())
            .map(|t| !unread.is_unread(t))
            .collect();
        SingletonWeights {
            coverage,
            weights,
            read,
        }
    }

    /// Current `w({v})`.
    #[inline]
    pub fn get(&self, v: ReaderId) -> usize {
        self.weights[v]
    }

    /// All current weights, indexed by reader id.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.weights
    }

    /// Number of readers tracked.
    pub fn n_readers(&self) -> usize {
        self.weights.len()
    }

    /// Discounts tag `t` from every reader covering it (idempotent).
    pub fn mark_read(&mut self, t: TagId) {
        if self.read[t] {
            return;
        }
        self.read[t] = true;
        for &v in self.coverage.readers_of(t) {
            self.weights[v as usize] -= 1;
        }
    }

    /// Discounts a batch of tags — the per-slot delta update.
    pub fn mark_all_read(&mut self, tags: &[TagId]) {
        for &t in tags {
            self.mark_read(t);
        }
    }
}

/// Unborrowed core behind [`IncrementalWeight`]: `w(active)` under reader
/// add/remove against a packed snapshot of the unread set.
///
/// Designed for cross-slot reuse: [`reset`](Self::reset) costs a word
/// memcpy of the unread snapshot plus `O(active)` teardown — counts are
/// stamp-invalidated, never cleared. One warm core serves every slot of a
/// covering schedule with zero allocations.
#[derive(Debug, Clone, Default)]
pub struct IncrementalCore {
    /// Packed unread snapshot (same layout as [`TagSet::words`]).
    unread: Vec<u64>,
    /// Per-tag active-cover count, valid where `count_stamp[t] == stamp`.
    counts: Vec<u32>,
    count_stamp: Vec<u64>,
    stamp: u64,
    active: Vec<bool>,
    active_list: Vec<ReaderId>,
    weight: usize,
    /// Fresh heap allocations (buffer growth events) since the last
    /// [`take_allocs`](Self::take_allocs).
    allocs: u64,
}

impl IncrementalCore {
    /// An empty core; sized by the first [`reset`](Self::reset).
    pub fn new() -> Self {
        IncrementalCore::default()
    }

    /// Clears the active set and re-snapshots the unread tags.
    pub fn reset(&mut self, coverage: &Coverage, unread: &TagSet) {
        let words = unread.words();
        if self.unread.len() != words.len()
            || self.counts.len() != coverage.n_tags()
            || self.active.len() != coverage.n_readers()
        {
            self.unread = vec![0; words.len()];
            self.counts = vec![0; coverage.n_tags()];
            self.count_stamp = vec![0; coverage.n_tags()];
            self.stamp = 0;
            self.active = vec![false; coverage.n_readers()];
            self.allocs += 4;
        }
        self.unread.copy_from_slice(words);
        self.stamp += 1;
        for v in self.active_list.drain(..) {
            self.active[v] = false;
        }
        self.weight = 0;
    }

    /// Fresh heap allocations since the last call (the `mcs.alloc` feed).
    pub fn take_allocs(&mut self) -> u64 {
        std::mem::take(&mut self.allocs)
    }

    /// Whether tag `t` was unread in the snapshot taken at the last
    /// [`reset`](Self::reset). Lets callers pre-filter coverage rows to
    /// the tags that can ever contribute weight under this snapshot.
    #[inline]
    pub fn is_unread(&self, t: usize) -> bool {
        self.unread[t / 64] >> (t % 64) & 1 == 1
    }

    #[inline]
    fn count(&self, t: usize) -> u32 {
        if self.count_stamp[t] == self.stamp {
            self.counts[t]
        } else {
            0
        }
    }

    #[inline]
    fn set_count(&mut self, t: usize, c: u32) {
        self.count_stamp[t] = self.stamp;
        self.counts[t] = c;
    }

    /// Current `w(active)`.
    #[inline]
    pub fn weight(&self) -> usize {
        self.weight
    }

    /// Current active readers in insertion order.
    pub fn active(&self) -> &[ReaderId] {
        &self.active_list
    }

    /// `true` iff `v` is active.
    pub fn is_active(&self, v: ReaderId) -> bool {
        self.active[v]
    }

    /// `w({v})` against the snapshotted unread set.
    pub fn singleton_weight(&self, coverage: &Coverage, v: ReaderId) -> usize {
        coverage
            .tags_of(v)
            .iter()
            .filter(|&&t| self.is_unread(t as usize))
            .count()
    }

    /// Weight change if `v` were added, without committing.
    pub fn delta_if_added(&self, coverage: &Coverage, v: ReaderId) -> isize {
        debug_assert!(!self.active[v], "delta_if_added on active reader {v}");
        let mut delta = 0isize;
        for &t in coverage.tags_of(v) {
            let t = t as usize;
            if !self.is_unread(t) {
                continue;
            }
            match self.count(t) {
                0 => delta += 1,
                1 => delta -= 1,
                _ => {}
            }
        }
        delta
    }

    /// Adds `v` to the active set; returns the weight delta.
    pub fn add(&mut self, coverage: &Coverage, v: ReaderId) -> isize {
        assert!(!self.active[v], "reader {v} already active");
        let before = self.weight as isize;
        for &t in coverage.tags_of(v) {
            let t = t as usize;
            if !self.is_unread(t) {
                continue;
            }
            let c = self.count(t) + 1;
            self.set_count(t, c);
            match c {
                1 => self.weight += 1,
                2 => self.weight -= 1,
                _ => {}
            }
        }
        self.active[v] = true;
        self.active_list.push(v);
        self.weight as isize - before
    }

    /// Removes `v`; returns the weight delta.
    pub fn remove(&mut self, coverage: &Coverage, v: ReaderId) -> isize {
        assert!(self.active[v], "reader {v} not active");
        let before = self.weight as isize;
        for &t in coverage.tags_of(v) {
            let t = t as usize;
            if !self.is_unread(t) {
                continue;
            }
            let c = self.count(t) - 1;
            self.set_count(t, c);
            match c {
                0 => self.weight -= 1,
                1 => self.weight += 1,
                _ => {}
            }
        }
        self.active[v] = false;
        self.active_list.retain(|&x| x != v);
        self.weight as isize - before
    }
}

/// Incrementally maintained `w(active)` under reader add/remove.
///
/// The unread set is fixed at construction ([`IncrementalWeight::new`]) or
/// [`reset`](Self::reset); mutating the `TagSet` mid-stream invalidates the
/// cached weight.
#[derive(Debug, Clone)]
pub struct IncrementalWeight<'a> {
    coverage: &'a Coverage,
    core: IncrementalCore,
}

impl<'a> IncrementalWeight<'a> {
    /// Starts with an empty active set.
    pub fn new(coverage: &'a Coverage, unread: &TagSet) -> Self {
        let mut core = IncrementalCore::new();
        core.reset(coverage, unread);
        IncrementalWeight { coverage, core }
    }

    /// Clears the active set and re-snapshots the unread tags.
    pub fn reset(&mut self, unread: &TagSet) {
        self.core.reset(self.coverage, unread);
    }

    /// Current `w(active)`.
    #[inline]
    pub fn weight(&self) -> usize {
        self.core.weight()
    }

    /// Current active readers in insertion order.
    pub fn active(&self) -> &[ReaderId] {
        self.core.active()
    }

    /// `true` iff `v` is active.
    pub fn is_active(&self, v: ReaderId) -> bool {
        self.core.is_active(v)
    }

    /// `w({v})` against the snapshotted unread set.
    pub fn singleton_weight(&self, v: ReaderId) -> usize {
        self.core.singleton_weight(self.coverage, v)
    }

    /// Weight change if `v` were added, without committing.
    pub fn delta_if_added(&self, v: ReaderId) -> isize {
        self.core.delta_if_added(self.coverage, v)
    }

    /// Adds `v` to the active set; returns the weight delta.
    pub fn add(&mut self, v: ReaderId) -> isize {
        self.core.add(self.coverage, v)
    }

    /// Removes `v`; returns the weight delta.
    pub fn remove(&mut self, v: ReaderId) -> isize {
        self.core.remove(self.coverage, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use rfid_geometry::{Point, Rect};

    /// Figure-2 style deployment: three independent readers A, B, C where
    /// activating all three loses the overlap tags but {A, C} keeps them.
    fn figure2() -> (Deployment, Coverage) {
        // A at 0, B at 10, C at 20, interrogation radius 6 (A,C) and 7 (B).
        // Tags: 1 @ -3 (A only), 2 @ 5 (A+B), 3 @ 15 (B+C), 4 @ 23 (C only),
        // 5 @ 10 (B only).
        let d = Deployment::new(
            Rect::new(-10.0, -10.0, 40.0, 10.0),
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
            ],
            vec![9.0, 9.0, 9.0],
            vec![6.0, 7.0, 6.0],
            vec![
                Point::new(-3.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(15.0, 0.0),
                Point::new(23.0, 0.0),
                Point::new(10.0, 0.0),
            ],
        );
        let c = Coverage::build(&d);
        (d, c)
    }

    #[test]
    fn figure2_weights_match_paper_example() {
        let (_, c) = figure2();
        let unread = TagSet::all_unread(5);
        let mut w = WeightEvaluator::new(&c);
        // All three active: tags 2 and 3 sit in overlaps → w = 3.
        assert_eq!(w.weight(&[0, 1, 2], &unread), 3);
        // Only A and C: every tag they cover is exclusive → w = 4.
        assert_eq!(w.weight(&[0, 2], &unread), 4);
        // Scheduling fewer readers reads more tags — the paper's Figure 2
        // moral.
        assert!(w.weight(&[0, 2], &unread) > w.weight(&[0, 1, 2], &unread));
    }

    #[test]
    fn well_covered_lists_exclusive_tags() {
        let (_, c) = figure2();
        let unread = TagSet::all_unread(5);
        let mut w = WeightEvaluator::new(&c);
        assert_eq!(w.well_covered(&[0, 1, 2], &unread), vec![0, 3, 4]);
        assert_eq!(w.well_covered(&[0, 2], &unread), vec![0, 1, 2, 3]);
        assert_eq!(w.well_covered(&[], &unread), Vec::<usize>::new());
    }

    #[test]
    fn read_tags_stop_counting() {
        let (_, c) = figure2();
        let mut unread = TagSet::all_unread(5);
        let mut w = WeightEvaluator::new(&c);
        unread.mark_all_read(&[0, 1]);
        assert_eq!(w.weight(&[0, 2], &unread), 2); // tags 2, 3 remain
        assert_eq!(w.singleton_weight(0, &unread), 0); // A covers only tags 0, 1 — both read
        assert_eq!(w.singleton_weight(1, &unread), 2); // B covers 1 (read), 2, 4
    }

    #[test]
    fn singleton_weight_counts_all_covered_unread() {
        let (_, c) = figure2();
        let unread = TagSet::all_unread(5);
        let mut w = WeightEvaluator::new(&c);
        assert_eq!(w.singleton_weight(0, &unread), 2); // tags 0, 1
        assert_eq!(w.singleton_weight(1, &unread), 3); // tags 1, 2, 4
        assert_eq!(w.singleton_weight(2, &unread), 2); // tags 2, 3
        assert_eq!(w.all_singleton_weights(&unread), vec![2, 3, 2]);
    }

    #[test]
    fn evaluator_is_reusable_across_calls() {
        let (_, c) = figure2();
        let unread = TagSet::all_unread(5);
        let mut w = WeightEvaluator::new(&c);
        for _ in 0..10 {
            assert_eq!(w.weight(&[0, 1, 2], &unread), 3);
            assert_eq!(w.weight(&[1], &unread), 3);
        }
    }

    #[test]
    fn incremental_matches_batch() {
        let (_, c) = figure2();
        let unread = TagSet::all_unread(5);
        let mut batch = WeightEvaluator::new(&c);
        let mut inc = IncrementalWeight::new(&c, &unread);
        assert_eq!(inc.weight(), 0);
        inc.add(0);
        assert_eq!(inc.weight(), batch.weight(&[0], &unread));
        inc.add(1);
        assert_eq!(inc.weight(), batch.weight(&[0, 1], &unread));
        inc.add(2);
        assert_eq!(inc.weight(), batch.weight(&[0, 1, 2], &unread));
        inc.remove(1);
        assert_eq!(inc.weight(), batch.weight(&[0, 2], &unread));
        assert_eq!(inc.active(), &[0, 2]);
    }

    #[test]
    fn peek_equals_commit_delta() {
        let (_, c) = figure2();
        let unread = TagSet::all_unread(5);
        let mut inc = IncrementalWeight::new(&c, &unread);
        inc.add(0);
        let peek = inc.delta_if_added(1);
        let actual = inc.add(1);
        assert_eq!(peek, actual);
        // Adding B next to A costs the overlap tag: w {0} = 2 → w {0,1} = 3-?
        // A covers {0,1}; B covers {1,2,4}; overlap tag 1 → w = 1 + 2 = 3.
        assert_eq!(inc.weight(), 3);
    }

    #[test]
    fn add_remove_roundtrip_restores_weight() {
        let (_, c) = figure2();
        let unread = TagSet::all_unread(5);
        let mut inc = IncrementalWeight::new(&c, &unread);
        inc.add(0);
        inc.add(2);
        let w = inc.weight();
        inc.add(1);
        inc.remove(1);
        assert_eq!(inc.weight(), w);
        assert_eq!(inc.active(), &[0, 2]);
    }

    #[test]
    fn reset_resnapshots_unread() {
        let (_, c) = figure2();
        let mut unread = TagSet::all_unread(5);
        let mut inc = IncrementalWeight::new(&c, &unread);
        inc.add(0);
        assert_eq!(inc.weight(), 2);
        unread.mark_read(0);
        inc.reset(&unread);
        inc.add(0);
        assert_eq!(inc.weight(), 1);
    }

    #[test]
    fn core_reset_is_allocation_free_when_warm() {
        let (_, c) = figure2();
        let unread = TagSet::all_unread(5);
        let mut core = IncrementalCore::new();
        core.reset(&c, &unread);
        assert!(core.take_allocs() > 0, "cold reset must size the buffers");
        for _ in 0..5 {
            core.add(&c, 0);
            core.add(&c, 2);
            core.reset(&c, &unread);
        }
        assert_eq!(core.take_allocs(), 0, "warm resets must not allocate");
        core.add(&c, 0);
        assert_eq!(core.weight(), 2);
    }

    #[test]
    fn singleton_tracker_matches_full_recompute() {
        let (_, c) = figure2();
        let mut unread = TagSet::all_unread(5);
        let mut tracker = SingletonWeights::new(&c, &unread);
        let mut full = WeightEvaluator::new(&c);
        assert_eq!(tracker.as_slice(), full.all_singleton_weights(&unread));
        for batch in [vec![1usize], vec![0, 4], vec![2, 3]] {
            unread.mark_all_read(&batch);
            tracker.mark_all_read(&batch);
            assert_eq!(
                tracker.as_slice(),
                full.all_singleton_weights(&unread),
                "after {batch:?}"
            );
        }
        assert_eq!(tracker.as_slice(), &[0, 0, 0]);
    }

    #[test]
    fn singleton_tracker_marks_are_idempotent() {
        let (_, c) = figure2();
        let unread = TagSet::all_unread(5);
        let mut tracker = SingletonWeights::new(&c, &unread);
        tracker.mark_read(1);
        let snapshot = tracker.as_slice().to_vec();
        tracker.mark_read(1);
        tracker.mark_all_read(&[1, 1]);
        assert_eq!(tracker.as_slice(), snapshot);
    }

    #[test]
    fn singleton_tracker_starts_from_partial_unread() {
        let (_, c) = figure2();
        let mut unread = TagSet::all_unread(5);
        unread.mark_all_read(&[0, 2]);
        let tracker = SingletonWeights::new(&c, &unread);
        let mut full = WeightEvaluator::new(&c);
        assert_eq!(tracker.as_slice(), full.all_singleton_weights(&unread));
        assert_eq!(tracker.n_readers(), 3);
        assert_eq!(tracker.get(0), 1);
    }

    #[test]
    fn rows_constructor_matches_the_scalar_one() {
        let (_, c) = figure2();
        let rows = crate::bits::CoverageRows::build(&c);
        let mut unread = TagSet::all_unread(5);
        unread.mark_read(3);
        let scalar = SingletonWeights::new(&c, &unread);
        let popcnt = SingletonWeights::from_rows(&c, &rows, &unread);
        assert_eq!(scalar.as_slice(), popcnt.as_slice());
    }

    #[test]
    fn incremental_singleton_uses_the_snapshot() {
        let (_, c) = figure2();
        let mut unread = TagSet::all_unread(5);
        let inc = IncrementalWeight::new(&c, &unread);
        assert_eq!(inc.singleton_weight(1), 3);
        // Mutating the TagSet afterwards must not affect the snapshot.
        unread.mark_read(4);
        assert_eq!(inc.singleton_weight(1), 3);
        let mut rebound = inc.clone();
        rebound.reset(&unread);
        assert_eq!(rebound.singleton_weight(1), 2);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn double_add_panics() {
        let (_, c) = figure2();
        let unread = TagSet::all_unread(5);
        let mut inc = IncrementalWeight::new(&c, &unread);
        inc.add(0);
        inc.add(0);
    }
}
