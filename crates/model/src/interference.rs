//! Interference-graph construction (paper Definition 7).
//!
//! "Every reader in `V` has a corresponding node, and any two nodes have an
//! edge between each other if and only if one reader is located in the
//! interference region of the other" — equivalently, iff the pair is *not*
//! independent: `‖v_i − v_j‖ ≤ max(R_i, R_j)`.
//!
//! Construction uses the uniform-grid index over reader positions so a
//! deployment with bounded radii builds in expected `O(n + |E|)` rather than
//! `O(n²)`; a quadratic fallback covers degenerate radius distributions.

use crate::deployment::Deployment;
use rfid_geometry::GridIndex;
use rfid_graph::Csr;

/// Builds the interference graph of a deployment.
pub fn interference_graph(d: &Deployment) -> Csr {
    let n = d.n_readers();
    if n == 0 {
        return Csr::from_edges(0, &[]);
    }
    let r_max = d.max_interference_radius();
    if r_max <= 0.0 {
        // Point interference disks: an edge needs coincident readers at
        // distance 0 … which the strict predicate still rejects. No edges.
        return Csr::from_edges(n, &[]);
    }
    // Querying each reader's ball of radius max(R_i, r_max)… the edge
    // predicate needs dist ≤ max(R_i, R_j) which is ≤ r_max, so querying
    // with r_max and filtering exactly is both correct and simple.
    let index = GridIndex::build(d.reader_positions(), r_max.max(1e-6));
    let mut edges = Vec::new();
    for i in 0..n {
        index.for_each_within(d.reader_positions()[i], r_max, |j, _| {
            if i < j && !d.independent(i, j) {
                edges.push((i, j));
            }
        });
    }
    Csr::from_edges(n, &edges)
}

/// Quadratic reference construction, for tests and tiny instances.
pub fn interference_graph_naive(d: &Deployment) -> Csr {
    Csr::from_predicate(d.n_readers(), |i, j| !d.independent(i, j))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radii::RadiusModel;
    use crate::scenario::{Scenario, ScenarioKind};
    use rfid_geometry::{Point, Rect};

    #[test]
    fn empty_deployment() {
        let d = Deployment::new(Rect::square(1.0), vec![], vec![], vec![], vec![]);
        let g = interference_graph(&d);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn asymmetric_interference_creates_edge() {
        // Big reader 0 jams far-away reader 1 even though 1 cannot jam 0.
        let d = Deployment::new(
            Rect::square(100.0),
            vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)],
            vec![10.0, 1.0],
            vec![1.0, 1.0],
            vec![],
        );
        let g = interference_graph(&d);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn independent_pair_has_no_edge() {
        let d = Deployment::new(
            Rect::square(100.0),
            vec![Point::new(0.0, 0.0), Point::new(11.0, 0.0)],
            vec![10.0, 1.0],
            vec![1.0, 1.0],
            vec![],
        );
        let g = interference_graph(&d);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn boundary_distance_is_an_edge() {
        let d = Deployment::new(
            Rect::square(100.0),
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            vec![10.0, 2.0],
            vec![1.0, 1.0],
            vec![],
        );
        assert!(interference_graph(&d).has_edge(0, 1));
    }

    #[test]
    fn zero_radii_give_edgeless_graph() {
        let d = Deployment::new(
            Rect::square(10.0),
            vec![Point::new(1.0, 1.0), Point::new(1.0, 1.0)],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![],
        );
        assert_eq!(interference_graph(&d).m(), 0);
    }

    #[test]
    fn fast_matches_naive_on_random_deployments() {
        for seed in 0..6u64 {
            let d = Scenario {
                kind: ScenarioKind::UniformRandom,
                n_readers: 40,
                n_tags: 50,
                region_side: 100.0,
                radius_model: RadiusModel::PoissonPair {
                    lambda_interference: 12.0,
                    lambda_interrogation: 5.0,
                },
            }
            .generate(seed);
            assert_eq!(
                interference_graph(&d),
                interference_graph_naive(&d),
                "seed {seed}"
            );
        }
    }
}
