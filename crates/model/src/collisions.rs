//! Collision audit of an arbitrary activation (paper Section II + Def. 1).
//!
//! Schedulers are supposed to emit feasible sets, but baselines (and bugs)
//! may not. [`audit_activation`] classifies every collision an activation
//! `X` would cause and derives the *general* well-covered tag set straight
//! from Definition 1 — including the RTc jamming condition the fast path in
//! `crate::weight` may omit because feasibility makes it vacuous. The system
//! simulator audits every slot with this module; integration tests assert
//! the fast and general paths agree on feasible sets.

use crate::coverage::Coverage;
use crate::deployment::Deployment;
use crate::reader::ReaderId;
use crate::tag::{TagId, TagSet};
use serde::{Deserialize, Serialize};

/// Everything that happens when `X` activates simultaneously.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivationAudit {
    /// Ordered pairs `(victim, aggressor)`: `victim ∈ X` lies inside the
    /// interference disk of `aggressor ∈ X`. Any victim reads nothing this
    /// slot (reader–tag collision).
    pub rtc_pairs: Vec<(ReaderId, ReaderId)>,
    /// Readers of `X` that suffer at least one RTc.
    pub jammed: Vec<ReaderId>,
    /// Unread tags lying in ≥ 2 active interrogation regions
    /// (reader–reader collision at the tag).
    pub rrc_tags: Vec<TagId>,
    /// Definition 1 well-covered unread tags: covered by exactly one active
    /// reader, and that reader is not jammed.
    pub well_covered: Vec<TagId>,
    /// Potential tag–tag collisions: for each non-jammed active reader, the
    /// number of its well-covered tags (>1 means the link layer must
    /// arbitrate; see `rfid-protocols`). Pairs `(reader, tag_count)` with
    /// `tag_count ≥ 2`.
    pub ttc_load: Vec<(ReaderId, usize)>,
}

impl ActivationAudit {
    /// `true` iff the activation is a feasible scheduling set (no RTc).
    pub fn is_feasible(&self) -> bool {
        self.rtc_pairs.is_empty()
    }
}

/// Audits activation `X` against the full model.
///
/// Complexity `O(|X|² + Σ_{v∈X} |tags(v)|)` — the quadratic term is exact
/// pairwise jam checking, fine for per-slot set sizes.
pub fn audit_activation(
    d: &Deployment,
    coverage: &Coverage,
    set: &[ReaderId],
    unread: &TagSet,
) -> ActivationAudit {
    // RTc: victim v inside aggressor u's interference disk.
    let mut rtc_pairs = Vec::new();
    let mut jammed_flag = vec![false; d.n_readers()];
    for &v in set {
        for &u in set {
            if v == u {
                continue;
            }
            let ru = d.reader(u);
            if ru.pos.within(d.reader(v).pos, ru.interference_radius) {
                rtc_pairs.push((v, u));
                jammed_flag[v] = true;
            }
        }
    }
    rtc_pairs.sort_unstable();
    let jammed: Vec<ReaderId> = set.iter().copied().filter(|&v| jammed_flag[v]).collect();

    // Per-tag active cover counts (and the single coverer when count == 1).
    let mut count: std::collections::HashMap<TagId, (usize, ReaderId)> =
        std::collections::HashMap::new();
    for &v in set {
        for &t in coverage.tags_of(v) {
            let t = t as usize;
            if !unread.is_unread(t) {
                continue;
            }
            let e = count.entry(t).or_insert((0, v));
            e.0 += 1;
            e.1 = v; // only meaningful when e.0 == 1
        }
    }
    let mut rrc_tags: Vec<TagId> = count
        .iter()
        .filter(|(_, &(c, _))| c >= 2)
        .map(|(&t, _)| t)
        .collect();
    rrc_tags.sort_unstable();

    let mut well_covered: Vec<TagId> = count
        .iter()
        .filter(|(_, &(c, v))| c == 1 && !jammed_flag[v])
        .map(|(&t, _)| t)
        .collect();
    well_covered.sort_unstable();

    // TTc load: well-covered tags per non-jammed reader.
    let mut per_reader: std::collections::HashMap<ReaderId, usize> =
        std::collections::HashMap::new();
    for &t in &well_covered {
        let (_, v) = count[&t];
        *per_reader.entry(v).or_insert(0) += 1;
    }
    let mut ttc_load: Vec<(ReaderId, usize)> =
        per_reader.into_iter().filter(|&(_, c)| c >= 2).collect();
    ttc_load.sort_unstable();

    ActivationAudit {
        rtc_pairs,
        jammed,
        rrc_tags,
        well_covered,
        ttc_load,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weight::WeightEvaluator;
    use rfid_geometry::{Point, Rect};

    /// Reader 1 sits inside reader 0's interference disk (asymmetric).
    fn jamming_deployment() -> (Deployment, Coverage) {
        let d = Deployment::new(
            Rect::square(50.0),
            vec![
                Point::new(0.0, 0.0),
                Point::new(8.0, 0.0),
                Point::new(30.0, 0.0),
            ],
            vec![10.0, 3.0, 3.0],
            vec![4.0, 3.0, 3.0],
            vec![
                Point::new(1.0, 0.0),  // reader 0 only
                Point::new(8.0, 0.0),  // reader 1 only (dist 8 > 4 from r0)
                Point::new(30.0, 0.0), // reader 2 only
            ],
        );
        let c = Coverage::build(&d);
        (d, c)
    }

    #[test]
    fn rtc_detected_asymmetrically() {
        let (d, c) = jamming_deployment();
        let unread = TagSet::all_unread(3);
        let audit = audit_activation(&d, &c, &[0, 1], &unread);
        // Reader 1 is inside O(v_0) (dist 8 ≤ 10) → victim 1, aggressor 0.
        // Reader 0 is NOT inside O(v_1) (dist 8 > 3).
        assert_eq!(audit.rtc_pairs, vec![(1, 0)]);
        assert_eq!(audit.jammed, vec![1]);
        assert!(!audit.is_feasible());
        // Jammed reader 1 reads nothing: its exclusive tag is not well-covered.
        assert_eq!(audit.well_covered, vec![0]);
    }

    #[test]
    fn feasible_set_audit_matches_fast_weight() {
        let (d, c) = jamming_deployment();
        let unread = TagSet::all_unread(3);
        let set = [0, 2]; // dist 30 > 10 → independent
        let audit = audit_activation(&d, &c, &set, &unread);
        assert!(audit.is_feasible());
        let mut w = WeightEvaluator::new(&c);
        assert_eq!(audit.well_covered.len(), w.weight(&set, &unread));
        assert_eq!(audit.well_covered, w.well_covered(&set, &unread));
    }

    #[test]
    fn rrc_tags_excluded_from_well_covered() {
        let d = Deployment::new(
            Rect::square(40.0),
            vec![Point::new(0.0, 0.0), Point::new(6.0, 0.0)],
            vec![5.0, 5.0],
            vec![4.0, 4.0],
            vec![Point::new(3.0, 0.0), Point::new(-2.0, 0.0)],
        );
        let c = Coverage::build(&d);
        let unread = TagSet::all_unread(2);
        // dist 6 > 5 → feasible; tag 0 at x=3 is covered by both (3 ≤ 4, 3 ≤ 4).
        let audit = audit_activation(&d, &c, &[0, 1], &unread);
        assert!(audit.is_feasible());
        assert_eq!(audit.rrc_tags, vec![0]);
        assert_eq!(audit.well_covered, vec![1]);
    }

    #[test]
    fn ttc_load_counts_multi_tag_readers() {
        let d = Deployment::new(
            Rect::square(20.0),
            vec![Point::new(5.0, 5.0)],
            vec![5.0],
            vec![4.0],
            vec![
                Point::new(5.0, 5.0),
                Point::new(6.0, 5.0),
                Point::new(4.0, 5.0),
            ],
        );
        let c = Coverage::build(&d);
        let unread = TagSet::all_unread(3);
        let audit = audit_activation(&d, &c, &[0], &unread);
        assert_eq!(audit.ttc_load, vec![(0, 3)]);
        assert_eq!(audit.well_covered.len(), 3);
    }

    #[test]
    fn read_tags_do_not_appear() {
        let (d, c) = jamming_deployment();
        let mut unread = TagSet::all_unread(3);
        unread.mark_read(0);
        let audit = audit_activation(&d, &c, &[0, 2], &unread);
        assert_eq!(audit.well_covered, vec![2]);
    }

    #[test]
    fn empty_activation() {
        let (d, c) = jamming_deployment();
        let unread = TagSet::all_unread(3);
        let audit = audit_activation(&d, &c, &[], &unread);
        assert!(audit.is_feasible());
        assert!(audit.well_covered.is_empty());
        assert!(audit.rrc_tags.is_empty());
    }
}
