#![warn(missing_docs)]
//! # rfid-cli
//!
//! Command-line front end: generate deployments, run schedulers, inspect
//! derived structures and render SVG snapshots without writing any Rust.
//!
//! ```text
//! mrrfid generate --readers 50 --tags 1200 --seed 42 --out depl.json
//! mrrfid inspect  --deployment depl.json
//! mrrfid schedule --deployment depl.json --algorithm alg1 --mode mcs
//! mrrfid render   --deployment depl.json --algorithm alg2 --out slot.svg
//! ```
//!
//! The library half hosts the parse/dispatch logic so it is unit-testable;
//! the `mrrfid` binary is a thin `main`.

use rfid_core::{
    covering_schedule_with, AlgorithmKind, McsOptions, OneShotInput, OneShotScheduler,
    SchedulerRegistry,
};
use rfid_delta::{apply_ops, derived_key, key_hex, ScenarioDelta};
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, Deployment, RadiusModel, Scenario, ScenarioKind, TagSet};
use rfid_obs::Recorder;
use rfid_serve::{
    CanonicalJob, ClientBuilder, ClientError, JobSpec, Router, RouterConfig, ScheduleReply,
    ServeClient, ServeConfig, Server, TcpClient, Workload,
};
use rfid_sim::{aggregate_series, run_sweep, SweepAxis, SweepConfig};
use std::collections::BTreeMap;
use std::time::Duration;

/// A structured CLI error: every failure mode carries a category with a
/// stable process exit code, so scripts (and CI) can branch on *why* a
/// command failed instead of grepping stderr. Replaces the old bare
/// `String` errors, under which an unwritable `--metrics-out` path and a
/// typoed flag were indistinguishable `exit 1`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Bad flags or arguments (exit 2).
    Usage(String),
    /// A filesystem read/write failed (exit 3).
    Io {
        /// The offending path.
        path: String,
        /// Full description, including the OS error.
        message: String,
    },
    /// An input file parsed but was malformed (exit 4).
    Data(String),
    /// The serve daemon (or the transport to it) reported an error
    /// (exit 5).
    Remote(String),
    /// The operation itself failed — solver stall, invalid schedule
    /// (exit 1).
    Failed(String),
}

impl CliError {
    /// The process exit code for this error category.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Failed(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Io { .. } => 3,
            CliError::Data(_) => 4,
            CliError::Remote(_) => 5,
        }
    }

    fn io(path: &str, action: &str, err: impl std::fmt::Display) -> Self {
        CliError::Io {
            path: path.to_string(),
            message: format!("{action} {path}: {err}"),
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Data(m) | CliError::Remote(m) | CliError::Failed(m) => {
                f.write_str(m)
            }
            CliError::Io { message, .. } => f.write_str(message),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ClientError> for CliError {
    fn from(err: ClientError) -> Self {
        CliError::Remote(err.to_string())
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a deployment and write it as JSON.
    Generate {
        /// Number of readers.
        readers: usize,
        /// Number of tags.
        tags: usize,
        /// Deployment seed.
        seed: u64,
        /// Poisson mean of interference radii λ_R.
        lambda_interference: f64,
        /// Poisson mean of interrogation radii λ_r.
        lambda_interrogation: f64,
        /// Side length of the square region.
        region: f64,
        /// Output path.
        out: String,
    },
    /// Print derived statistics of a stored deployment.
    Inspect {
        /// Deployment JSON path.
        deployment: String,
    },
    /// Run a scheduler on a stored deployment.
    Schedule {
        /// Deployment JSON path.
        deployment: String,
        /// Which algorithm to run.
        algorithm: AlgorithmKind,
        /// Seed for randomised algorithms.
        seed: u64,
        /// Run the full covering schedule instead of a single slot.
        mcs: bool,
        /// Optional path to save the covering schedule as JSON.
        out: Option<String>,
        /// Optional path for the metrics snapshot (`.csv` = per-slot CSV,
        /// anything else = JSON with counters + per-slot records).
        metrics_out: Option<String>,
        /// Print the recorded counter/histogram snapshot after the run.
        trace: bool,
    },
    /// Render a one-shot activation as SVG.
    Render {
        /// Deployment JSON path.
        deployment: String,
        /// Which algorithm to run.
        algorithm: AlgorithmKind,
        /// Seed for randomised algorithms.
        seed: u64,
        /// SVG output path.
        out: String,
    },
    /// Print structural statistics of a stored deployment.
    Stats {
        /// Deployment JSON path.
        deployment: String,
    },
    /// Verify a stored covering schedule against a deployment.
    Verify {
        /// Deployment JSON path.
        deployment: String,
        /// Schedule JSON path (written by `schedule --mode mcs --out …`).
        schedule: String,
    },
    /// Run a λ sweep and print a paper-style figure table.
    Sweep {
        /// Which λ varies.
        axis: SweepAxis,
        /// The swept λ values.
        values: Vec<f64>,
        /// The other axis' fixed λ.
        fixed: f64,
        /// Trials per point.
        trials: usize,
        /// `true` = covering-schedule size, `false` = one-shot weight.
        mcs: bool,
        /// Readers per deployment.
        readers: usize,
        /// Tags per deployment.
        tags: usize,
    },
    /// Print Algorithm 3's execution trace on a stored deployment.
    Trace {
        /// Deployment JSON path.
        deployment: String,
    },
    /// Run the scheduling daemon (blocks until a shutdown frame).
    Serve {
        /// Listen address, e.g. `127.0.0.1:7401`.
        addr: String,
        /// Worker threads solving cache misses.
        workers: usize,
        /// Schedule-cache capacity in entries (0 disables caching).
        cache_cap: usize,
        /// Bounded work-queue capacity (a full queue rejects with 429).
        queue_cap: usize,
        /// Optional cache TTL in seconds.
        cache_ttl_secs: Option<u64>,
        /// Directory for the cache journal + snapshots (omit = RAM-only).
        data_dir: Option<String>,
        /// Compact the journal after this many appends (0 = never).
        snapshot_every: usize,
        /// Comma-separated peer addresses to gossip cache entries to.
        peers: Vec<String>,
    },
    /// Run the shard router: consistent-hash content keys across a
    /// daemon fleet (blocks until a shutdown frame).
    Route {
        /// Listen address, e.g. `127.0.0.1:7400`.
        addr: String,
        /// Shard daemon addresses (at least one).
        shards: Vec<String>,
        /// Forwarder connections held per shard.
        conns_per_shard: usize,
    },
    /// Send one request to a running daemon.
    Request {
        /// Daemon address, e.g. `127.0.0.1:7401`.
        addr: String,
        /// Scenario (or deployment) JSON path for a schedule request.
        scenario: Option<String>,
        /// Algorithm label or alias.
        algo: String,
        /// Seed for randomised algorithms.
        algo_seed: u64,
        /// Deployment seed fed to `Scenario::generate`.
        gen_seed: u64,
        /// Optional server-side deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Run under the resilient fault policy.
        resilient: bool,
        /// Optional path to save the raw response payload.
        payload_out: Option<String>,
        /// Fetch service stats instead of scheduling.
        stats: bool,
        /// Ask the daemon to shut down gracefully.
        shutdown: bool,
        /// Comma-separated fallback addresses; schedule requests retry
        /// against them (after `addr`) on connect failure, severed
        /// responses or a draining server.
        failover: Vec<String>,
        /// Path to a `ScenarioDelta` ops JSON array — sends a protocol
        /// v3 delta frame instead of a full scenario.
        delta: Option<String>,
        /// Base content key (fixed-width hex) the delta applies to.
        base: Option<String>,
        /// Content key (fixed-width hex) — sends a protocol v4 key
        /// frame: the server answers from cache without re-reading the
        /// scenario, or a structured `key-miss` 404.
        key: Option<String>,
    },
    /// Apply a delta ops file to a base job locally, mirroring the
    /// server's canonicalise → materialise → patch pipeline: write the
    /// patched deployment and print the base and derived content keys.
    Patch {
        /// Base scenario (or deployment) JSON path.
        scenario: String,
        /// `ScenarioDelta` ops JSON array path.
        ops: String,
        /// Output path for the patched deployment JSON.
        out: String,
        /// Algorithm of the base job (part of its content key).
        algo: String,
        /// Algorithm seed of the base job.
        algo_seed: u64,
        /// Generation seed of the base job (Generated workloads).
        gen_seed: u64,
        /// Resilient flag of the base job.
        resilient: bool,
    },
    /// Print usage.
    Help,
}

/// Usage text shown by `mrrfid help` and on parse errors.
pub const USAGE: &str = "\
mrrfid — multi-reader RFID activation scheduling (IPDPS'11 reproduction)

USAGE:
  mrrfid generate --out FILE [--readers N] [--tags M] [--seed S]
                  [--lambda-interference λR] [--lambda-interrogation λr]
                  [--region SIDE]
  mrrfid inspect  --deployment FILE
  mrrfid schedule --deployment FILE [--algorithm NAME] [--seed S] [--mode oneshot|mcs]
                  [--metrics-out FILE.json|FILE.csv] [--trace]
  mrrfid render   --deployment FILE --out FILE.svg [--algorithm NAME] [--seed S]
  mrrfid sweep    [--axis interrogation|interference] [--values 3,5,7,9]
                  [--fixed 14] [--trials 5] [--metric oneshot|mcs]
                  [--readers 50] [--tags 1200]
  mrrfid trace    --deployment FILE
  mrrfid stats    --deployment FILE
  mrrfid verify   --deployment FILE --schedule FILE
  mrrfid serve    [--addr HOST:PORT] [--workers N] [--cache-cap N]
                  [--queue-cap N] [--cache-ttl-secs S] [--data-dir DIR]
                  [--snapshot-every N] [--peers HOST:PORT,HOST:PORT]
  mrrfid route    --shards HOST:PORT,HOST:PORT [--addr HOST:PORT]
                  [--conns-per-shard N]
  mrrfid request  [--addr HOST:PORT] --scenario FILE [--algo NAME] [--seed S]
                  [--gen-seed G] [--deadline-ms D] [--resilient]
                  [--payload-out FILE] [--failover HOST:PORT,HOST:PORT]
  mrrfid request  [--addr HOST:PORT] --delta OPS.json --base KEY
                  [--deadline-ms D] [--payload-out FILE]
                  [--failover HOST:PORT,HOST:PORT]
  mrrfid request  [--addr HOST:PORT] --key KEY [--payload-out FILE]
  mrrfid request  [--addr HOST:PORT] --stats
  mrrfid request  [--addr HOST:PORT] --shutdown
  mrrfid patch    --scenario FILE --ops OPS.json --out FILE
                  [--algo NAME] [--seed S] [--gen-seed G] [--resilient]
  mrrfid help

ALGORITHMS: alg1 (PTAS) | alg2 (centralized) | alg3 (distributed)
            ca (Colorwave) | ghc (hill climbing) | exact

EXIT CODES: 0 ok | 1 operation failed | 2 usage | 3 filesystem
            4 malformed data | 5 server/transport error
";

/// Default daemon address shared by `serve` and `request`.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7401";

/// Default router listen address (`route`). One below [`DEFAULT_ADDR`]
/// so a router and its first shard co-exist on one host untouched.
pub const DEFAULT_ROUTER_ADDR: &str = "127.0.0.1:7400";

fn parse_algorithm(s: &str) -> Result<AlgorithmKind, CliError> {
    SchedulerRegistry::global()
        .parse(s)
        .map_err(CliError::Usage)
}

fn flags(args: &[String]) -> Result<BTreeMap<String, String>, CliError> {
    let mut map = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| CliError::Usage(format!("expected --flag, got '{}'", args[i])))?;
        // A flag followed by another flag (or nothing) is boolean.
        match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => {
                map.insert(key.to_string(), v.clone());
                i += 2;
            }
            _ => {
                map.insert(key.to_string(), "true".to_string());
                i += 1;
            }
        }
    }
    Ok(map)
}

fn get_parse<T: std::str::FromStr>(
    flags: &BTreeMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, CliError> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| CliError::Usage(format!("--{key}: cannot parse '{v}'"))),
    }
}

fn require(flags: &BTreeMap<String, String>, key: &str, context: &str) -> Result<String, CliError> {
    flags
        .get(key)
        .cloned()
        .ok_or_else(|| CliError::Usage(format!("{context} requires --{key}")))
}

/// Parses a full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => {
            let f = flags(rest)?;
            Ok(Command::Generate {
                readers: get_parse(&f, "readers", 50)?,
                tags: get_parse(&f, "tags", 1200)?,
                seed: get_parse(&f, "seed", 42)?,
                lambda_interference: get_parse(&f, "lambda-interference", 14.0)?,
                lambda_interrogation: get_parse(&f, "lambda-interrogation", 6.0)?,
                region: get_parse(&f, "region", 100.0)?,
                out: require(&f, "out", "generate")?,
            })
        }
        "inspect" => {
            let f = flags(rest)?;
            Ok(Command::Inspect {
                deployment: require(&f, "deployment", "inspect")?,
            })
        }
        "schedule" => {
            let f = flags(rest)?;
            let mode = f.get("mode").map(String::as_str).unwrap_or("oneshot");
            if mode != "oneshot" && mode != "mcs" {
                return Err(CliError::Usage(format!(
                    "--mode must be oneshot or mcs, got '{mode}'"
                )));
            }
            Ok(Command::Schedule {
                deployment: require(&f, "deployment", "schedule")?,
                algorithm: parse_algorithm(
                    f.get("algorithm").map(String::as_str).unwrap_or("alg2"),
                )?,
                seed: get_parse(&f, "seed", 0)?,
                mcs: mode == "mcs",
                out: f.get("out").cloned(),
                metrics_out: f.get("metrics-out").cloned(),
                trace: f.contains_key("trace"),
            })
        }
        "render" => {
            let f = flags(rest)?;
            Ok(Command::Render {
                deployment: require(&f, "deployment", "render")?,
                algorithm: parse_algorithm(
                    f.get("algorithm").map(String::as_str).unwrap_or("alg2"),
                )?,
                seed: get_parse(&f, "seed", 0)?,
                out: require(&f, "out", "render")?,
            })
        }
        "sweep" => {
            let f = flags(rest)?;
            let axis = match f.get("axis").map(String::as_str).unwrap_or("interrogation") {
                "interrogation" => SweepAxis::Interrogation,
                "interference" => SweepAxis::Interference,
                other => {
                    return Err(CliError::Usage(format!(
                        "--axis must be interrogation|interference, got '{other}'"
                    )))
                }
            };
            let values: Vec<f64> = f
                .get("values")
                .map(String::as_str)
                .unwrap_or("3,5,7,9")
                .split(',')
                .map(|v| {
                    v.trim()
                        .parse()
                        .map_err(|_| CliError::Usage(format!("bad λ value '{v}'")))
                })
                .collect::<Result<_, _>>()?;
            let metric = f.get("metric").map(String::as_str).unwrap_or("oneshot");
            if metric != "oneshot" && metric != "mcs" {
                return Err(CliError::Usage(format!(
                    "--metric must be oneshot or mcs, got '{metric}'"
                )));
            }
            Ok(Command::Sweep {
                axis,
                values,
                fixed: get_parse(&f, "fixed", 14.0)?,
                trials: get_parse(&f, "trials", 5)?,
                mcs: metric == "mcs",
                readers: get_parse(&f, "readers", 50)?,
                tags: get_parse(&f, "tags", 1200)?,
            })
        }
        "trace" => {
            let f = flags(rest)?;
            Ok(Command::Trace {
                deployment: require(&f, "deployment", "trace")?,
            })
        }
        "stats" => {
            let f = flags(rest)?;
            Ok(Command::Stats {
                deployment: require(&f, "deployment", "stats")?,
            })
        }
        "verify" => {
            let f = flags(rest)?;
            Ok(Command::Verify {
                deployment: require(&f, "deployment", "verify")?,
                schedule: require(&f, "schedule", "verify")?,
            })
        }
        "serve" => {
            let f = flags(rest)?;
            let defaults = ServeConfig::default();
            Ok(Command::Serve {
                addr: f
                    .get("addr")
                    .cloned()
                    .unwrap_or_else(|| DEFAULT_ADDR.to_string()),
                workers: get_parse(&f, "workers", defaults.workers)?,
                cache_cap: get_parse(&f, "cache-cap", defaults.cache_cap)?,
                queue_cap: get_parse(&f, "queue-cap", defaults.queue_cap)?,
                cache_ttl_secs: match f.get("cache-ttl-secs") {
                    None => None,
                    Some(_) => Some(get_parse(&f, "cache-ttl-secs", 0u64)?),
                },
                data_dir: f.get("data-dir").cloned(),
                snapshot_every: get_parse(&f, "snapshot-every", defaults.snapshot_every)?,
                peers: parse_addr_list(f.get("peers")),
            })
        }
        "route" => {
            let f = flags(rest)?;
            let shards = parse_addr_list(f.get("shards"));
            if shards.is_empty() {
                return Err(CliError::Usage(
                    "route requires --shards HOST:PORT[,HOST:PORT…]".to_string(),
                ));
            }
            let defaults = RouterConfig::default();
            Ok(Command::Route {
                addr: f
                    .get("addr")
                    .cloned()
                    .unwrap_or_else(|| DEFAULT_ROUTER_ADDR.to_string()),
                shards,
                conns_per_shard: get_parse(&f, "conns-per-shard", defaults.conns_per_shard)?,
            })
        }
        "request" => {
            let f = flags(rest)?;
            let stats = f.contains_key("stats");
            let shutdown = f.contains_key("shutdown");
            let scenario = f.get("scenario").cloned();
            let delta = f.get("delta").cloned();
            let base = f.get("base").cloned();
            let key = f.get("key").cloned();
            if !stats && !shutdown && scenario.is_none() && delta.is_none() && key.is_none() {
                return Err(CliError::Usage(
                    "request needs --scenario FILE, --delta OPS.json, --key KEY, --stats \
                     or --shutdown"
                        .to_string(),
                ));
            }
            if key.is_some() && (scenario.is_some() || delta.is_some()) {
                return Err(CliError::Usage(
                    "--key is exclusive with --scenario/--delta: a key frame carries \
                     nothing but the content key"
                        .to_string(),
                ));
            }
            if delta.is_some() && base.is_none() {
                return Err(CliError::Usage(
                    "--delta requires --base KEY (the base scenario's content key)".to_string(),
                ));
            }
            if delta.is_some() && scenario.is_some() {
                return Err(CliError::Usage(
                    "--delta and --scenario are mutually exclusive: a delta frame \
                     references its base by content key"
                        .to_string(),
                ));
            }
            Ok(Command::Request {
                addr: f
                    .get("addr")
                    .cloned()
                    .unwrap_or_else(|| DEFAULT_ADDR.to_string()),
                scenario,
                algo: f.get("algo").cloned().unwrap_or_else(|| "alg2".to_string()),
                algo_seed: get_parse(&f, "seed", 0)?,
                gen_seed: get_parse(&f, "gen-seed", 0)?,
                deadline_ms: match f.get("deadline-ms") {
                    None => None,
                    Some(_) => Some(get_parse(&f, "deadline-ms", 0u64)?),
                },
                resilient: f.contains_key("resilient"),
                payload_out: f.get("payload-out").cloned(),
                stats,
                shutdown,
                failover: parse_addr_list(f.get("failover")),
                delta,
                base,
                key,
            })
        }
        "patch" => {
            let f = flags(rest)?;
            Ok(Command::Patch {
                scenario: require(&f, "scenario", "patch")?,
                ops: require(&f, "ops", "patch")?,
                out: require(&f, "out", "patch")?,
                algo: f.get("algo").cloned().unwrap_or_else(|| "alg2".to_string()),
                algo_seed: get_parse(&f, "seed", 0)?,
                gen_seed: get_parse(&f, "gen-seed", 0)?,
                resilient: f.contains_key("resilient"),
            })
        }
        other => Err(CliError::Usage(format!(
            "unknown command '{other}'\n\n{USAGE}"
        ))),
    }
}

/// Splits a comma-separated address flag; `None` (flag absent) and empty
/// segments both yield nothing.
fn parse_addr_list(value: Option<&String>) -> Vec<String> {
    value
        .map(|v| {
            v.split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(String::from)
                .collect()
        })
        .unwrap_or_default()
}

fn load_deployment(path: &str) -> Result<Deployment, CliError> {
    let body = std::fs::read_to_string(path).map_err(|e| CliError::io(path, "read", e))?;
    serde_json::from_str(&body).map_err(|e| CliError::Data(format!("parse {path}: {e}")))
}

/// Executes a command; returns the text to print.
pub fn run(cmd: Command) -> Result<String, CliError> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Generate {
            readers,
            tags,
            seed,
            lambda_interference,
            lambda_interrogation,
            region,
            out,
        } => {
            let d = Scenario {
                kind: ScenarioKind::UniformRandom,
                n_readers: readers,
                n_tags: tags,
                region_side: region,
                radius_model: RadiusModel::PoissonPair {
                    lambda_interference,
                    lambda_interrogation,
                },
            }
            .generate(seed);
            let json = serde_json::to_string(&d).map_err(|e| CliError::Data(e.to_string()))?;
            std::fs::write(&out, json).map_err(|e| CliError::io(&out, "write", e))?;
            Ok(format!(
                "wrote {readers} readers / {tags} tags (seed {seed}) to {out}\n"
            ))
        }
        Command::Inspect { deployment } => {
            let d = load_deployment(&deployment)?;
            let g = interference_graph(&d);
            let c = Coverage::build(&d);
            let mean_deg = if d.n_readers() == 0 {
                0.0
            } else {
                2.0 * g.m() as f64 / d.n_readers() as f64
            };
            let (_, components) = rfid_graph::connected_components(&g);
            let growth = rfid_graph::growth_function(&g, 3);
            Ok(format!(
                "readers:            {}\n\
                 tags:               {}\n\
                 region:             {:.0}×{:.0}\n\
                 interference edges: {} (mean degree {:.2}, {} components)\n\
                 clustering coeff:   {:.3}\n\
                 growth f(0..3):     {:?} (growth-bounded ⇒ small, ≈(r+1)²)\n\
                 coverable tags:     {} ({} unreachable)\n",
                d.n_readers(),
                d.n_tags(),
                d.region().width(),
                d.region().height(),
                g.m(),
                mean_deg,
                components,
                rfid_graph::clustering_coefficient(&g),
                growth,
                c.coverable_count(),
                d.n_tags() - c.coverable_count(),
            ))
        }
        Command::Schedule {
            deployment,
            algorithm,
            seed,
            mcs,
            out: save,
            metrics_out,
            trace,
        } => {
            let d = load_deployment(&deployment)?;
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let registry = SchedulerRegistry::global();
            let mut scheduler = registry.instantiate(algorithm, seed);
            let observing = trace || metrics_out.is_some();
            let recorder = observing.then(Recorder::new);
            let sub = recorder.as_ref().map(|r| r as &dyn rfid_obs::Subscriber);
            if mcs {
                let mut options = McsOptions::new().slot_metrics(observing);
                if let Some(s) = sub {
                    options = options.subscriber(s);
                }
                let run = covering_schedule_with(&d, &c, &g, scheduler.as_mut(), &options)
                    .map_err(|e| CliError::Failed(format!("covering schedule failed: {e}")))?;
                let schedule = run.schedule;
                if let Some(path) = &save {
                    let json = serde_json::to_string(&schedule)
                        .map_err(|e| CliError::Data(e.to_string()))?;
                    std::fs::write(path, json).map_err(|e| CliError::io(path, "write", e))?;
                }
                if let Some(path) = &metrics_out {
                    let body = if path.ends_with(".csv") {
                        rfid_obs::slot_metrics_to_csv(&run.slot_metrics)
                    } else {
                        let rec = recorder.as_ref().expect("recorder exists when observing");
                        format!(
                            "{{\"snapshot\":{},\"slots\":{}}}",
                            rec.snapshot().to_json(),
                            rfid_obs::slot_metrics_to_json(&run.slot_metrics)
                        )
                    };
                    std::fs::write(path, body).map_err(|e| CliError::io(path, "write", e))?;
                }
                let mut out = format!(
                    "{}: {} slots, {} tags served, {} unreachable\n",
                    registry.entry(algorithm).label,
                    schedule.size(),
                    schedule.tags_served(),
                    schedule.uncoverable.len()
                );
                for (i, slot) in schedule.slots.iter().enumerate() {
                    out.push_str(&format!(
                        "  slot {:>3}: {:>2} readers, {:>4} tags{}\n",
                        i,
                        slot.active.len(),
                        slot.served.len(),
                        if slot.fallback { "  [fallback]" } else { "" }
                    ));
                }
                if trace {
                    let rec = recorder.as_ref().expect("recorder exists when tracing");
                    out.push_str("\nmetrics snapshot:\n");
                    out.push_str(&rec.snapshot().to_json());
                    out.push('\n');
                }
                Ok(out)
            } else {
                let unread = TagSet::all_unread(d.n_tags());
                let mut builder = OneShotInput::builder(&d, &c, &g).unread(&unread);
                builder = builder.maybe_subscriber(sub);
                let input = builder.build();
                let set = scheduler.schedule(&input);
                let mut out = format!(
                    "{}: {} readers active, w(X) = {}\nactive: {:?}\n",
                    registry.entry(algorithm).label,
                    set.len(),
                    input.weight_of(&set),
                    set
                );
                if let Some(path) = &metrics_out {
                    let rec = recorder.as_ref().expect("recorder exists when observing");
                    std::fs::write(path, rec.snapshot().to_json())
                        .map_err(|e| CliError::io(path, "write", e))?;
                }
                if trace {
                    let rec = recorder.as_ref().expect("recorder exists when tracing");
                    out.push_str("\nmetrics snapshot:\n");
                    out.push_str(&rec.snapshot().to_json());
                    out.push('\n');
                }
                Ok(out)
            }
        }
        Command::Stats { deployment } => {
            let d = load_deployment(&deployment)?;
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let stats = rfid_model::deployment_stats(&d, &c, &g);
            let mut out = String::new();
            out.push_str(&format!(
                "mean tag coverage:      {:.2} readers/tag\n",
                stats.mean_coverage
            ));
            out.push_str(&format!(
                "overlap fraction:       {:.3} (tags at RRc risk)\n",
                stats.overlap_fraction
            ));
            out.push_str(&format!(
                "mean interference deg:  {:.2}\n",
                stats.mean_degree
            ));
            out.push_str(&format!(
                "interrogation density:  {:.2}× region area\n",
                stats.interrogation_density
            ));
            out.push_str("coverage histogram (tags covered by k readers):\n");
            for (k, &count) in stats.coverage_histogram.iter().enumerate() {
                if count > 0 {
                    out.push_str(&format!("  k={k:>2}: {count}\n"));
                }
            }
            out.push_str("interference degree histogram:\n");
            for (k, &count) in stats.degree_histogram.iter().enumerate() {
                if count > 0 {
                    out.push_str(&format!("  d={k:>2}: {count}\n"));
                }
            }
            Ok(out)
        }
        Command::Verify {
            deployment,
            schedule,
        } => {
            let d = load_deployment(&deployment)?;
            let body = std::fs::read_to_string(&schedule)
                .map_err(|e| CliError::io(&schedule, "read", e))?;
            let sched: rfid_core::CoveringSchedule = serde_json::from_str(&body)
                .map_err(|e| CliError::Data(format!("parse {schedule}: {e}")))?;
            match rfid_core::verify_covering_schedule(&d, &sched) {
                Ok(()) => Ok(format!(
                    "OK: {} slots, {} tags served, {} uncoverable — schedule is sound\n",
                    sched.size(),
                    sched.tags_served(),
                    sched.uncoverable.len()
                )),
                Err(v) => Err(CliError::Failed(format!("schedule INVALID: {v:?}"))),
            }
        }
        Command::Sweep {
            axis,
            values,
            fixed,
            trials,
            mcs,
            readers,
            tags,
        } => {
            let config = SweepConfig {
                scenario: Scenario {
                    kind: ScenarioKind::UniformRandom,
                    n_readers: readers,
                    n_tags: tags,
                    region_side: 100.0,
                    radius_model: RadiusModel::paper_default(),
                },
                axis,
                values,
                fixed_lambda: fixed,
                algorithms: AlgorithmKind::paper_lineup().to_vec(),
                trials,
                base_seed: 42,
                measure_mcs: mcs,
                measure_oneshot: !mcs,
                threads: None,
            };
            let records = run_sweep(&config);
            let x_of = move |t: &rfid_sim::TrialRecord| match axis {
                SweepAxis::Interference => t.lambda_interference,
                SweepAxis::Interrogation => t.lambda_interrogation,
            };
            let metric = move |t: &rfid_sim::TrialRecord| {
                if mcs {
                    t.mcs_size.map(|v| v as f64)
                } else {
                    t.oneshot_weight.map(|v| v as f64)
                }
            };
            let series: Vec<(&str, Vec<rfid_sim::SeriesPoint>)> = AlgorithmKind::paper_lineup()
                .iter()
                .map(|k| {
                    (
                        k.label(),
                        aggregate_series(&records, k.label(), x_of, metric),
                    )
                })
                .collect();
            let title = if mcs {
                "covering-schedule size"
            } else {
                "one-shot well-covered tags"
            };
            let x_label = match axis {
                SweepAxis::Interference => "λ_R",
                SweepAxis::Interrogation => "λ_r",
            };
            Ok(rfid_sim::table::markdown_figure(title, x_label, &series))
        }
        Command::Trace { deployment } => {
            let d = load_deployment(&deployment)?;
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let mut s = rfid_core::DistributedScheduler::default();
            let set = s.schedule(&input);
            let mut out = format!(
                "Algorithm 3 on {} readers: {} activated, w(X) = {}\n\n",
                d.n_readers(),
                set.len(),
                input.weight_of(&set)
            );
            for (round, event) in s.last_trace.unwrap_or_default() {
                use rfid_core::distributed::TraceEvent::*;
                let line = match event {
                    HeadElected { node, members, removed } => format!(
                        "round {round:>3}: reader {node:>3} elected head — Γ has {members} members, retires {removed} readers"
                    ),
                    ColoredRed { node, head } => {
                        format!("round {round:>3}: reader {node:>3} → RED (activated by head {head})")
                    }
                    ColoredBlack { node, head } => {
                        format!("round {round:>3}: reader {node:>3} → BLACK (suppressed by head {head})")
                    }
                    Retransmit { node, to, attempt } => {
                        format!("round {round:>3}: reader {node:>3} retransmits to {to} (attempt {attempt})")
                    }
                    TimeoutSuspect { node, suspect } => {
                        format!("round {round:>3}: reader {node:>3} suspects {suspect} crashed (watchdog timeout)")
                    }
                    ReElected { node, deposed } => {
                        format!("round {round:>3}: reader {node:>3} elected head in place of suspected {deposed}")
                    }
                };
                out.push_str(&line);
                out.push('\n');
            }
            Ok(out)
        }
        Command::Render {
            deployment,
            algorithm,
            seed,
            out,
        } => {
            let d = load_deployment(&deployment)?;
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let set = SchedulerRegistry::global()
                .instantiate(algorithm, seed)
                .schedule(&input);
            let served = rfid_model::WeightEvaluator::new(&c).well_covered(&set, &unread);
            let svg =
                rfid_sim::render_svg(&d, &c, &set, &served, &rfid_sim::RenderOptions::default());
            std::fs::write(&out, svg).map_err(|e| CliError::io(&out, "write", e))?;
            Ok(format!(
                "rendered {} ({} active readers, {} tags served) to {out}\n",
                algorithm.label(),
                set.len(),
                served.len()
            ))
        }
        Command::Serve {
            addr,
            workers,
            cache_cap,
            queue_cap,
            cache_ttl_secs,
            data_dir,
            snapshot_every,
            peers,
        } => {
            let config = ServeConfig {
                workers,
                queue_cap,
                cache_cap,
                cache_ttl: cache_ttl_secs.map(Duration::from_secs),
                data_dir: data_dir.clone().map(Into::into),
                snapshot_every,
                peers: peers.clone(),
            };
            let server = Server::start(&addr, config)
                .map_err(|e| CliError::Remote(format!("bind {addr}: {e}")))?;
            let recovered = server.service().stats().recovered_entries;
            // Announce readiness before blocking so wrappers (CI smoke)
            // know the port is live.
            println!(
                "serving on {} ({} workers, queue {}, cache {}{}{}{})",
                server.addr(),
                workers,
                queue_cap,
                cache_cap,
                match &data_dir {
                    Some(dir) => format!(", data dir {dir}, recovered {recovered}"),
                    None => String::new(),
                },
                if peers.is_empty() {
                    String::new()
                } else {
                    format!(", {} peers", peers.len())
                },
                if data_dir.is_some() && recovered > 0 {
                    ", warm start"
                } else {
                    ""
                },
            );
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            server.run_until_shutdown();
            Ok("server stopped\n".to_string())
        }
        Command::Route {
            addr,
            shards,
            conns_per_shard,
        } => {
            let config = RouterConfig {
                shards: shards.clone(),
                conns_per_shard,
                ..RouterConfig::default()
            };
            let router = Router::start(&addr, config)
                .map_err(|e| CliError::Remote(format!("bind {addr}: {e}")))?;
            // Announce readiness before blocking, like `serve`.
            println!(
                "routing on {} across {} shards",
                router.addr(),
                shards.len()
            );
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            router.run_until_shutdown();
            Ok("router stopped\n".to_string())
        }
        Command::Request {
            addr,
            scenario,
            algo,
            algo_seed,
            gen_seed,
            deadline_ms,
            resilient,
            payload_out,
            stats,
            shutdown,
            failover,
            delta,
            base,
            key,
        } => {
            if stats {
                let mut client = TcpClient::connect(&addr)
                    .map_err(|e| CliError::Remote(format!("connect {addr}: {e}")))?;
                let (s, metrics) = client.stats()?;
                return Ok(format!(
                    "requests:          {}\n\
                     cache hits:        {}\n\
                     cache misses:      {}\n\
                     coalesced:         {}\n\
                     cache evictions:   {}\n\
                     cache entries:     {}\n\
                     recovered entries: {}\n\
                     journal appends:   {} ({} errors)\n\
                     snapshots:         {}\n\
                     replicated out:    {} ({} dropped)\n\
                     replicated in:     {}\n\
                     deduped retries:   {}\n\
                     rejected (full):   {}\n\
                     rejected (stop):   {}\n\
                     deadline expired:  {}\n\
                     solved:            {}\n\
                     errors:            {}\n\
                     queue depth:       {}\n\
                     workers:           {}\n\
                     metrics: {metrics}\n",
                    s.requests,
                    s.cache_hits,
                    s.cache_misses,
                    s.coalesced,
                    s.cache_evictions,
                    s.cache_entries,
                    s.recovered_entries,
                    s.journal_appends,
                    s.journal_append_errors,
                    s.snapshots_written,
                    s.replicated_out,
                    s.replication_dropped,
                    s.replicated_in,
                    s.deduped,
                    s.rejected_full,
                    s.rejected_shutdown,
                    s.deadline_expired,
                    s.solved,
                    s.errors,
                    s.queue_depth,
                    s.workers,
                ));
            }
            if shutdown {
                let mut client = TcpClient::connect(&addr)
                    .map_err(|e| CliError::Remote(format!("connect {addr}: {e}")))?;
                client.shutdown_server()?;
                return Ok("server acknowledged shutdown\n".to_string());
            }
            // One builder covers both shapes: a single --addr is plain
            // TCP, --failover extras make it a retrying failover client.
            let mut targets = Vec::with_capacity(1 + failover.len());
            targets.push(addr.clone());
            targets.extend(failover.iter().cloned());
            let mut client = ClientBuilder::new()
                .addrs(targets)
                .build()
                .map_err(|e| CliError::Remote(format!("connect {addr}: {e}")))?;
            // A key request is deliberately NOT routed through the
            // builder's memo: the caller asked for the key path, so a
            // key-miss surfaces as a structured remote error (exit 5)
            // instead of silently re-solving.
            if let Some(key) = &key {
                let mut client = TcpClient::connect(&addr)
                    .map_err(|e| CliError::Remote(format!("connect {addr}: {e}")))?;
                let reply = client.schedule_by_key(key, &[])?;
                if let Some(out) = &payload_out {
                    std::fs::write(out, reply.payload.as_bytes())
                        .map_err(|e| CliError::io(out, "write", e))?;
                }
                let outcome = reply.outcome().map_err(CliError::Data)?;
                return Ok(format!(
                    "key: {}\ncached: {}\n{}: {} slots, {} tags served, {} unreachable, complete: {}\n",
                    reply.key,
                    reply.cached,
                    outcome.algorithm,
                    outcome.slots,
                    outcome.tags_served,
                    outcome.uncoverable,
                    outcome.complete
                ));
            }
            let reply: ScheduleReply = if let Some(ops_path) = &delta {
                let ops = load_ops(ops_path)?;
                let base = base.expect("parse() guarantees --base here");
                client.schedule_delta(&base, &ops, deadline_ms, None)?
            } else {
                let path = scenario.expect("parse() guarantees --scenario here");
                let job = load_job(&path, &algo, algo_seed, gen_seed, resilient)?;
                client.schedule(&job, deadline_ms)?
            };
            if let Some(out) = &payload_out {
                std::fs::write(out, reply.payload.as_bytes())
                    .map_err(|e| CliError::io(out, "write", e))?;
            }
            let outcome = reply.outcome().map_err(CliError::Data)?;
            Ok(format!(
                "key: {}\ncached: {}\n{}: {} slots, {} tags served, {} unreachable, complete: {}\n",
                reply.key,
                reply.cached,
                outcome.algorithm,
                outcome.slots,
                outcome.tags_served,
                outcome.uncoverable,
                outcome.complete
            ))
        }
        Command::Patch {
            scenario,
            ops,
            out,
            algo,
            algo_seed,
            gen_seed,
            resilient,
        } => {
            let job = load_job(&scenario, &algo, algo_seed, gen_seed, resilient)?;
            // Same pipeline as the daemon's delta path: canonicalise the
            // base job (aliases resolved, tags sorted — the form delta op
            // indices refer to), materialise its deployment, patch it.
            let canonical = CanonicalJob::new(&job, &SchedulerRegistry::global())
                .map_err(|e| CliError::Data(format!("canonicalize {scenario}: {e}")))?;
            let base_deployment = match &canonical.spec.workload {
                Workload::Generated { scenario, seed } => scenario.generate(*seed),
                Workload::Explicit { deployment } => deployment.clone(),
            };
            let ops_list = load_ops(&ops)?;
            let patched = apply_ops(&base_deployment, &ops_list)
                .map_err(|e| CliError::Data(format!("apply {ops}: {e}")))?;
            let body = serde_json::to_string_pretty(&patched.deployment)
                .map_err(|e| CliError::Data(format!("encode patched deployment: {e}")))?;
            std::fs::write(&out, &body).map_err(|e| CliError::io(&out, "write", e))?;
            Ok(format!(
                "base key:    {}\nderived key: {}\npatched: {} readers, {} tags -> {}\n",
                canonical.key_hex(),
                key_hex(derived_key(canonical.key, &ops_list)),
                patched.deployment.n_readers(),
                patched.deployment.n_tags(),
                out
            ))
        }
    }
}

/// Loads a `ScenarioDelta` ops file: a JSON array of delta operations.
fn load_ops(path: &str) -> Result<Vec<ScenarioDelta>, CliError> {
    let body = std::fs::read_to_string(path).map_err(|e| CliError::io(path, "read", e))?;
    serde_json::from_str(&body).map_err(|e| CliError::Data(format!("parse {path}: {e}")))
}

/// Builds a [`JobSpec`] from a file holding either a [`Scenario`] (the
/// cache-friendly generated workload) or a full [`Deployment`] (the
/// explicit workload, e.g. `generate --out` output).
fn load_job(
    path: &str,
    algo: &str,
    algo_seed: u64,
    gen_seed: u64,
    resilient: bool,
) -> Result<JobSpec, CliError> {
    let body = std::fs::read_to_string(path).map_err(|e| CliError::io(path, "read", e))?;
    let workload = match serde_json::from_str::<Scenario>(&body) {
        Ok(scenario) => Workload::Generated {
            scenario,
            seed: gen_seed,
        },
        Err(scenario_err) => match serde_json::from_str::<Deployment>(&body) {
            Ok(deployment) => Workload::Explicit { deployment },
            Err(deployment_err) => {
                return Err(CliError::Data(format!(
                    "parse {path}: neither a Scenario ({scenario_err}) nor a Deployment ({deployment_err})"
                )))
            }
        },
    };
    let mut job = JobSpec::new(workload);
    job.algorithm = algo.to_string();
    job.algo_seed = algo_seed;
    job.resilient = resilient;
    Ok(job)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_generate_with_defaults() {
        let cmd = parse(&argv("generate --out /tmp/x.json")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                readers: 50,
                tags: 1200,
                seed: 42,
                lambda_interference: 14.0,
                lambda_interrogation: 6.0,
                region: 100.0,
                out: "/tmp/x.json".into()
            }
        );
    }

    #[test]
    fn parses_schedule_modes_and_algorithms() {
        let cmd = parse(&argv(
            "schedule --deployment d.json --algorithm alg3 --mode mcs",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Schedule {
                deployment: "d.json".into(),
                algorithm: AlgorithmKind::Distributed,
                seed: 0,
                mcs: true,
                out: None,
                metrics_out: None,
                trace: false,
            }
        );
        assert!(parse(&argv("schedule --deployment d.json --mode nope")).is_err());
        assert!(parse(&argv("schedule --deployment d.json --algorithm nope")).is_err());
    }

    #[test]
    fn parses_trace_and_metrics_flags() {
        let cmd = parse(&argv(
            "schedule --deployment d.json --mode mcs --trace --metrics-out m.json",
        ))
        .unwrap();
        match cmd {
            Command::Schedule {
                trace, metrics_out, ..
            } => {
                assert!(trace);
                assert_eq!(metrics_out.as_deref(), Some("m.json"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn registry_errors_list_known_algorithms() {
        let err = parse_algorithm("nope").unwrap_err();
        assert!(err.to_string().contains("alg2-central"), "{err}");
        assert_eq!(parse_algorithm("ALG1").unwrap(), AlgorithmKind::Ptas);
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(parse(&argv("generate")).is_err());
        assert!(parse(&argv("inspect")).is_err());
        assert!(parse(&argv("render --deployment d.json")).is_err());
    }

    #[test]
    fn unknown_command_shows_usage() {
        let err = parse(&argv("frobnicate")).unwrap_err();
        assert!(err.to_string().contains("USAGE"));
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn end_to_end_generate_inspect_schedule_render() {
        let dir = std::env::temp_dir().join("rfid_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let depl = dir.join("d.json").to_string_lossy().into_owned();
        let svg = dir.join("d.svg").to_string_lossy().into_owned();

        let out = run(parse(&argv(&format!(
            "generate --readers 12 --tags 80 --seed 7 --out {depl}"
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("12 readers"));

        let out = run(parse(&argv(&format!("inspect --deployment {depl}"))).unwrap()).unwrap();
        assert!(out.contains("readers:            12"));
        assert!(out.contains("tags:               80"));

        let out = run(parse(&argv(&format!(
            "schedule --deployment {depl} --algorithm ghc --mode mcs"
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("slots"));

        let out = run(parse(&argv(&format!(
            "render --deployment {depl} --algorithm alg2 --out {svg}"
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("rendered"));
        let body = std::fs::read_to_string(&svg).unwrap();
        assert!(body.starts_with("<svg"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schedule_emits_metrics_files() {
        let dir = std::env::temp_dir().join("rfid_cli_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let depl = dir.join("d.json").to_string_lossy().into_owned();
        let mjson = dir.join("m.json").to_string_lossy().into_owned();
        let mcsv = dir.join("m.csv").to_string_lossy().into_owned();
        run(parse(&argv(&format!(
            "generate --readers 12 --tags 80 --seed 7 --out {depl}"
        )))
        .unwrap())
        .unwrap();
        let out = run(parse(&argv(&format!(
            "schedule --deployment {depl} --algorithm ghc --mode mcs --trace --metrics-out {mjson}"
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("metrics snapshot:"), "{out}");
        let body = std::fs::read_to_string(&mjson).unwrap();
        assert!(body.contains("\"mcs.slots\""), "{body}");
        assert!(body.contains("\"slots\":["), "{body}");
        run(parse(&argv(&format!(
            "schedule --deployment {depl} --algorithm ghc --mode mcs --metrics-out {mcsv}"
        )))
        .unwrap())
        .unwrap();
        let csv = std::fs::read_to_string(&mcsv).unwrap();
        assert!(
            csv.starts_with("slot,active_readers,tags_served,fallback,wall_nanos"),
            "{csv}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_errors_are_readable() {
        let err = run(Command::Inspect {
            deployment: "/nonexistent/x.json".into(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("read /nonexistent/x.json"));
    }
}

#[cfg(test)]
mod sweep_trace_tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_sweep_with_values() {
        let cmd = parse(&argv(
            "sweep --axis interference --values 8,10 --fixed 6 --trials 2 --metric mcs --readers 10 --tags 50",
        ))
        .unwrap();
        match cmd {
            Command::Sweep {
                axis,
                values,
                fixed,
                trials,
                mcs,
                readers,
                tags,
            } => {
                assert_eq!(axis, SweepAxis::Interference);
                assert_eq!(values, vec![8.0, 10.0]);
                assert_eq!(fixed, 6.0);
                assert_eq!(trials, 2);
                assert!(mcs);
                assert_eq!((readers, tags), (10, 50));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn sweep_rejects_bad_inputs() {
        assert!(parse(&argv("sweep --axis sideways")).is_err());
        assert!(parse(&argv("sweep --metric nope")).is_err());
        assert!(parse(&argv("sweep --values 3,x")).is_err());
    }

    #[test]
    fn sweep_runs_end_to_end() {
        let out = run(parse(&argv(
            "sweep --values 5,7 --trials 1 --readers 10 --tags 60",
        ))
        .unwrap())
        .unwrap();
        assert!(out.contains("λ_r"));
        assert!(out.contains("alg1-ptas"));
        assert!(out.contains("| 5.0 |"));
    }

    #[test]
    fn trace_runs_end_to_end() {
        let dir = std::env::temp_dir().join("rfid_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let depl = dir.join("d.json").to_string_lossy().into_owned();
        run(parse(&argv(&format!(
            "generate --readers 15 --tags 100 --seed 3 --out {depl}"
        )))
        .unwrap())
        .unwrap();
        let out = run(parse(&argv(&format!("trace --deployment {depl}"))).unwrap()).unwrap();
        assert!(out.contains("Algorithm 3"));
        assert!(out.contains("elected head"));
        assert!(out.contains("RED"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod stats_verify_tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn stats_verify_roundtrip() {
        let dir = std::env::temp_dir().join("rfid_cli_verify_test");
        std::fs::create_dir_all(&dir).unwrap();
        let depl = dir.join("d.json").to_string_lossy().into_owned();
        let sched = dir.join("s.json").to_string_lossy().into_owned();

        run(parse(&argv(&format!(
            "generate --readers 12 --tags 80 --seed 4 --out {depl}"
        )))
        .unwrap())
        .unwrap();

        let out = run(parse(&argv(&format!("stats --deployment {depl}"))).unwrap()).unwrap();
        assert!(out.contains("mean tag coverage"));
        assert!(out.contains("coverage histogram"));

        run(parse(&argv(&format!(
            "schedule --deployment {depl} --algorithm ghc --mode mcs --out {sched}"
        )))
        .unwrap())
        .unwrap();
        let out = run(parse(&argv(&format!(
            "verify --deployment {depl} --schedule {sched}"
        )))
        .unwrap())
        .unwrap();
        assert!(out.starts_with("OK:"), "{out}");

        // Tamper with the schedule: verification must fail loudly.
        let body = std::fs::read_to_string(&sched).unwrap();
        let mut parsed: rfid_core::CoveringSchedule = serde_json::from_str(&body).unwrap();
        if let Some(slot) = parsed.slots.first_mut() {
            slot.served.clear();
        }
        std::fs::write(&sched, serde_json::to_string(&parsed).unwrap()).unwrap();
        let err = run(parse(&argv(&format!(
            "verify --deployment {depl} --schedule {sched}"
        )))
        .unwrap())
        .unwrap_err();
        assert!(err.to_string().contains("INVALID"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_flags_error() {
        assert!(parse(&argv("stats")).is_err());
        assert!(parse(&argv("verify --deployment d.json")).is_err());
    }
}

#[cfg(test)]
mod serve_request_tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_serve_with_defaults_and_overrides() {
        let defaults = ServeConfig::default();
        match parse(&argv("serve")).unwrap() {
            Command::Serve {
                addr,
                workers,
                cache_cap,
                queue_cap,
                cache_ttl_secs,
                data_dir,
                snapshot_every,
                peers,
            } => {
                assert_eq!(addr, DEFAULT_ADDR);
                assert_eq!(workers, defaults.workers);
                assert_eq!(cache_cap, defaults.cache_cap);
                assert_eq!(queue_cap, defaults.queue_cap);
                assert_eq!(cache_ttl_secs, None);
                assert_eq!(data_dir, None);
                assert_eq!(snapshot_every, defaults.snapshot_every);
                assert!(peers.is_empty());
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv(
            "serve --addr 127.0.0.1:0 --workers 2 --cache-cap 32 --queue-cap 8 --cache-ttl-secs 60 \
             --data-dir /tmp/rfid --snapshot-every 16 --peers 127.0.0.1:7402,127.0.0.1:7403",
        ))
        .unwrap()
        {
            Command::Serve {
                addr,
                workers,
                cache_cap,
                queue_cap,
                cache_ttl_secs,
                data_dir,
                snapshot_every,
                peers,
            } => {
                assert_eq!(addr, "127.0.0.1:0");
                assert_eq!((workers, cache_cap, queue_cap), (2, 32, 8));
                assert_eq!(cache_ttl_secs, Some(60));
                assert_eq!(data_dir.as_deref(), Some("/tmp/rfid"));
                assert_eq!(snapshot_every, 16);
                assert_eq!(peers, vec!["127.0.0.1:7402", "127.0.0.1:7403"]);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_route_and_requires_shards() {
        match parse(&argv(
            "route --shards 127.0.0.1:7401,127.0.0.1:7402 --conns-per-shard 2",
        ))
        .unwrap()
        {
            Command::Route {
                addr,
                shards,
                conns_per_shard,
            } => {
                assert_eq!(addr, DEFAULT_ROUTER_ADDR);
                assert_eq!(shards, vec!["127.0.0.1:7401", "127.0.0.1:7402"]);
                assert_eq!(conns_per_shard, 2);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let err = parse(&argv("route --addr 127.0.0.1:0")).unwrap_err();
        assert!(err.to_string().contains("--shards"), "{err}");
    }

    #[test]
    fn parses_request_variants() {
        match parse(&argv(
            "request --scenario s.json --algo ghc --seed 9 --gen-seed 3 --deadline-ms 500 --resilient --payload-out p.json",
        ))
        .unwrap()
        {
            Command::Request {
                addr,
                scenario,
                algo,
                algo_seed,
                gen_seed,
                deadline_ms,
                resilient,
                payload_out,
                stats,
                shutdown,
                failover,
                delta,
                base,
                key,
            } => {
                assert_eq!(addr, DEFAULT_ADDR);
                assert_eq!(scenario.as_deref(), Some("s.json"));
                assert_eq!(algo, "ghc");
                assert_eq!((algo_seed, gen_seed), (9, 3));
                assert_eq!(deadline_ms, Some(500));
                assert!(resilient);
                assert_eq!(payload_out.as_deref(), Some("p.json"));
                assert!(!stats && !shutdown);
                assert!(failover.is_empty());
                assert!(delta.is_none() && base.is_none() && key.is_none());
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&argv(
            "request --scenario s.json --failover 127.0.0.1:7402,127.0.0.1:7403",
        ))
        .unwrap()
        {
            Command::Request { failover, .. } => {
                assert_eq!(failover, vec!["127.0.0.1:7402", "127.0.0.1:7403"])
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(matches!(
            parse(&argv("request --stats")).unwrap(),
            Command::Request { stats: true, .. }
        ));
        assert!(matches!(
            parse(&argv("request --shutdown")).unwrap(),
            Command::Request { shutdown: true, .. }
        ));
    }

    #[test]
    fn parses_key_request_variants() {
        match parse(&argv("request --key 00000000deadbeef")).unwrap() {
            Command::Request { key, scenario, .. } => {
                assert_eq!(key.as_deref(), Some("00000000deadbeef"));
                assert!(scenario.is_none());
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // --key carries nothing else: combining it with the full or
        // delta shapes is a usage error, not a confusing remote one.
        for bad in [
            "request --key ab --scenario s.json",
            "request --key ab --delta ops.json --base cd",
        ] {
            let err = parse(&argv(bad)).unwrap_err();
            assert_eq!(err.exit_code(), 2, "{err}");
            assert!(err.to_string().contains("--key"), "{err}");
        }
    }

    #[test]
    fn request_without_action_is_usage_error() {
        let err = parse(&argv("request")).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("--scenario"), "{err}");
    }

    #[test]
    fn exit_codes_map_error_kinds() {
        assert_eq!(CliError::Failed("x".into()).exit_code(), 1);
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(
            CliError::io("p", "read", std::io::Error::other("boom")).exit_code(),
            3
        );
        assert_eq!(CliError::Data("x".into()).exit_code(), 4);
        assert_eq!(CliError::Remote("x".into()).exit_code(), 5);
    }

    #[test]
    fn unwritable_metrics_out_is_structured_io_error() {
        let dir = std::env::temp_dir().join("rfid_cli_unwritable_test");
        std::fs::create_dir_all(&dir).unwrap();
        let depl = dir.join("d.json").to_string_lossy().into_owned();
        run(parse(&argv(&format!(
            "generate --readers 10 --tags 40 --seed 1 --out {depl}"
        )))
        .unwrap())
        .unwrap();
        let err = run(parse(&argv(&format!(
            "schedule --deployment {depl} --algorithm ghc --mode mcs --metrics-out /nonexistent/dir/m.json"
        )))
        .unwrap())
        .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        assert!(
            err.to_string().contains("write /nonexistent/dir/m.json"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn request_against_dead_server_is_remote_error() {
        // Nothing listens on this port (bound then dropped), so the
        // request must surface a Remote error, not panic or hang.
        let port = {
            let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            sock.local_addr().unwrap().port()
        };
        let err = run(parse(&argv(&format!("request --addr 127.0.0.1:{port} --stats"))).unwrap())
            .unwrap_err();
        assert_eq!(err.exit_code(), 5, "{err}");
    }

    #[test]
    fn serve_and_request_round_trip_over_loopback() {
        let dir = std::env::temp_dir().join("rfid_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let scen = dir.join("scenario.json");
        let scenario = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 10,
            n_tags: 60,
            region_side: 100.0,
            radius_model: RadiusModel::paper_default(),
        };
        std::fs::write(&scen, serde_json::to_string(&scenario).unwrap()).unwrap();
        let scen = scen.to_string_lossy().into_owned();

        let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.addr().to_string();

        let out = run(parse(&argv(&format!(
            "request --addr {addr} --scenario {scen} --algo ghc"
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("cached: false"), "{out}");
        let out2 = run(parse(&argv(&format!(
            "request --addr {addr} --scenario {scen} --algo ghc"
        )))
        .unwrap())
        .unwrap();
        assert!(out2.contains("cached: true"), "{out2}");

        // Address the cached schedule by content key alone (protocol v4).
        let key_hex = out2
            .lines()
            .find_map(|l| l.strip_prefix("key: "))
            .expect("reply prints the content key");
        let by_key =
            run(parse(&argv(&format!("request --addr {addr} --key {key_hex}"))).unwrap()).unwrap();
        assert!(by_key.contains("cached: true"), "{by_key}");
        assert!(by_key.contains(&format!("key: {key_hex}")), "{by_key}");
        // An unknown key is a structured remote error (exit 5, key-miss).
        let err = run(parse(&argv(&format!(
            "request --addr {addr} --key 00000000000000ee"
        )))
        .unwrap())
        .unwrap_err();
        assert_eq!(err.exit_code(), 5, "{err}");
        assert!(err.to_string().contains("key-miss"), "{err}");

        let stats = run(parse(&argv(&format!("request --addr {addr} --stats"))).unwrap()).unwrap();
        assert!(stats.contains("cache hits:        2"), "{stats}");

        let bye = run(parse(&argv(&format!("request --addr {addr} --shutdown"))).unwrap()).unwrap();
        assert!(bye.contains("shutdown"), "{bye}");
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parses_delta_and_patch_variants() {
        match parse(&argv(
            "request --delta ops.json --base 00000000deadbeef --deadline-ms 250",
        ))
        .unwrap()
        {
            Command::Request {
                delta,
                base,
                scenario,
                deadline_ms,
                ..
            } => {
                assert_eq!(delta.as_deref(), Some("ops.json"));
                assert_eq!(base.as_deref(), Some("00000000deadbeef"));
                assert!(scenario.is_none());
                assert_eq!(deadline_ms, Some(250));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // --delta without --base, or combined with --scenario, is a
        // usage error, not a confusing remote failure later.
        let err = parse(&argv("request --delta ops.json")).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        assert!(err.to_string().contains("--base"), "{err}");
        let err = parse(&argv(
            "request --delta ops.json --base ab --scenario s.json",
        ))
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");

        match parse(&argv(
            "patch --scenario s.json --ops ops.json --out p.json --algo ghc --seed 4",
        ))
        .unwrap()
        {
            Command::Patch {
                scenario,
                ops,
                out,
                algo,
                algo_seed,
                gen_seed,
                resilient,
            } => {
                assert_eq!(scenario, "s.json");
                assert_eq!(ops, "ops.json");
                assert_eq!(out, "p.json");
                assert_eq!(algo, "ghc");
                assert_eq!((algo_seed, gen_seed), (4, 0));
                assert!(!resilient);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        let err = parse(&argv("patch --scenario s.json --ops o.json")).unwrap_err();
        assert!(err.to_string().contains("--out"), "{err}");
    }

    #[test]
    fn delta_request_round_trip_matches_patched_cold_solve() {
        let dir = std::env::temp_dir().join("rfid_cli_delta_test");
        std::fs::create_dir_all(&dir).unwrap();
        let scen = dir.join("scenario.json");
        let scenario = Scenario {
            kind: ScenarioKind::UniformRandom,
            n_readers: 10,
            n_tags: 60,
            region_side: 100.0,
            radius_model: RadiusModel::paper_default(),
        };
        std::fs::write(&scen, serde_json::to_string(&scenario).unwrap()).unwrap();
        let scen = scen.to_string_lossy().into_owned();
        let ops = dir.join("ops.json");
        std::fs::write(
            &ops,
            serde_json::to_string(&vec![
                ScenarioDelta::AddTag { x: 42.0, y: 17.0 },
                ScenarioDelta::RemoveTag { tag: 3 },
            ])
            .unwrap(),
        )
        .unwrap();
        let ops = ops.to_string_lossy().into_owned();

        let server = Server::start("127.0.0.1:0", ServeConfig::default()).unwrap();
        let addr = server.addr().to_string();

        // Full request establishes the base; its printed key feeds the
        // delta frame.
        let full = run(parse(&argv(&format!(
            "request --addr {addr} --scenario {scen} --algo ghc"
        )))
        .unwrap())
        .unwrap();
        let base = full
            .lines()
            .find_map(|l| l.strip_prefix("key: "))
            .expect("full request prints its key")
            .to_string();

        let delta_payload = dir.join("delta_payload.json");
        let out = run(parse(&argv(&format!(
            "request --addr {addr} --delta {ops} --base {base} --payload-out {}",
            delta_payload.display()
        )))
        .unwrap())
        .unwrap();
        assert!(out.contains("cached: false"), "{out}");

        // `mrrfid patch` reproduces the patched deployment locally; a
        // full request for it must return byte-identical payload bytes.
        let patched = dir.join("patched.json");
        let patch_out = run(parse(&argv(&format!(
            "patch --scenario {scen} --ops {ops} --out {} --algo ghc",
            patched.display()
        )))
        .unwrap())
        .unwrap();
        assert!(
            patch_out.contains(&format!("base key:    {base}")),
            "{patch_out}"
        );
        let cold_payload = dir.join("cold_payload.json");
        run(parse(&argv(&format!(
            "request --addr {addr} --scenario {} --algo ghc --payload-out {}",
            patched.display(),
            cold_payload.display()
        )))
        .unwrap())
        .unwrap();
        assert_eq!(
            std::fs::read(&delta_payload).unwrap(),
            std::fs::read(&cold_payload).unwrap(),
            "delta reply must be byte-identical to a cold solve of the patched scenario"
        );

        // An unknown base is the structured base-miss, surfaced as a
        // Remote error telling the client to send the full scenario.
        let err = run(parse(&argv(&format!(
            "request --addr {addr} --delta {ops} --base 1111111111111111"
        )))
        .unwrap())
        .unwrap_err();
        assert_eq!(err.exit_code(), 5, "{err}");
        assert!(err.to_string().contains("base-miss"), "{err}");

        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
}
