//! The `mrrfid` command-line binary (thin shell around `rfid_cli`).
//!
//! Exit codes follow [`rfid_cli::CliError::exit_code`]: 0 success,
//! 1 operation failed, 2 usage, 3 filesystem, 4 malformed data,
//! 5 remote/server error.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = rfid_cli::parse(&args).and_then(rfid_cli::run);
    match outcome {
        Ok(text) => print!("{text}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(err.exit_code());
        }
    }
}
