//! The `mrrfid` command-line binary (thin shell around `rfid_cli`).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = rfid_cli::parse(&args).and_then(rfid_cli::run);
    match outcome {
        Ok(text) => print!("{text}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
