//! Cross-validation of the approximate schedulers against the exact
//! branch-and-bound optimum, plus property-based model invariants.

use proptest::prelude::*;
use rfid_core::{AlgorithmKind, ExactScheduler, OneShotInput, OneShotScheduler, SchedulerRegistry};
use rfid_integration_tests::scenario;
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, TagSet, WeightEvaluator};

/// No scheduler may beat the exact optimum, and the paper's guaranteed
/// algorithms must stay within their proven factors.
#[test]
fn approximation_guarantees_hold_on_small_instances() {
    for seed in 0..6u64 {
        let d = scenario(12, 200, 12.0, 6.0).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let registry = SchedulerRegistry::global();
        let opt = input.weight_of(&ExactScheduler::default().schedule(&input)) as f64;
        for kind in AlgorithmKind::paper_lineup() {
            let label = registry.entry(kind).label;
            let w = input.weight_of(&registry.instantiate(kind, seed).schedule(&input)) as f64;
            assert!(
                w <= opt + 1e-9,
                "{label} seed {seed}: {w} beats optimum {opt}"
            );
            let factor = match kind {
                AlgorithmKind::Ptas => (1.0 - 1.0 / 4.0f64).powi(2), // k = 4 default
                AlgorithmKind::LocalGreedy | AlgorithmKind::Distributed => 1.0 / 1.1, // ρ default
                _ => 0.0,                                            // baselines carry no guarantee
            };
            assert!(
                w + 1e-9 >= factor * opt,
                "{label} seed {seed}: {w} < {factor}·{opt}"
            );
        }
    }
}

/// Algorithm 2 and Algorithm 3 share their growth rule; with identical
/// parameters they usually coincide, and must always be within each
/// other's ρ factor of the optimum. Check mutual closeness loosely.
#[test]
fn centralized_and_distributed_are_close() {
    for seed in 0..4u64 {
        let d = scenario(30, 500, 14.0, 6.0).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let registry = SchedulerRegistry::global();
        let w2 = input.weight_of(
            &registry
                .instantiate(AlgorithmKind::LocalGreedy, 0)
                .schedule(&input),
        );
        let w3 = input.weight_of(
            &registry
                .instantiate(AlgorithmKind::Distributed, 0)
                .schedule(&input),
        );
        let lo = (w2.min(w3)) as f64;
        let hi = (w2.max(w3)) as f64;
        assert!(
            lo >= 0.8 * hi,
            "seed {seed}: centralized {w2} vs distributed {w3}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// w is sub-additive: w(A ∪ B) ≤ w(A) + w(B) for disjoint A, B.
    #[test]
    fn weight_is_subadditive(seed in 0u64..500, split in 1usize..9) {
        let d = scenario(10, 150, 12.0, 6.0).generate(seed);
        let c = Coverage::build(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let mut w = WeightEvaluator::new(&c);
        let a: Vec<usize> = (0..split).collect();
        let b: Vec<usize> = (split..10).collect();
        let ab: Vec<usize> = (0..10).collect();
        prop_assert!(w.weight(&ab, &unread) <= w.weight(&a, &unread) + w.weight(&b, &unread));
    }

    /// Weight is monotone in the unread set: marking tags read never
    /// increases any set's weight.
    #[test]
    fn weight_monotone_under_reads(seed in 0u64..500, kill in 0usize..100) {
        let d = scenario(10, 120, 12.0, 6.0).generate(seed);
        let c = Coverage::build(&d);
        let set: Vec<usize> = (0..10).collect();
        let mut w = WeightEvaluator::new(&c);
        let mut unread = TagSet::all_unread(d.n_tags());
        let before = w.weight(&set, &unread);
        for t in 0..kill.min(d.n_tags()) {
            unread.mark_read(t);
        }
        prop_assert!(w.weight(&set, &unread) <= before);
    }

    /// Every scheduler's one-shot output is feasible on arbitrary random
    /// deployments (the core contract).
    #[test]
    fn all_schedulers_feasible(seed in 0u64..200) {
        let d = scenario(18, 200, 13.0, 7.0).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let registry = SchedulerRegistry::global();
        for entry in registry.entries() {
            if entry.kind == AlgorithmKind::Exact {
                continue; // exponential; covered by the dedicated tests
            }
            let set = registry.instantiate(entry.kind, seed).schedule(&input);
            prop_assert!(d.is_feasible(&set), "{}", entry.label);
        }
    }

    /// Adding any reader to an exact optimum never increases weight
    /// (local optimality of the exact solver).
    #[test]
    fn exact_solution_is_locally_optimal(seed in 0u64..100) {
        let d = scenario(10, 150, 12.0, 6.0).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let opt_set = ExactScheduler::default().schedule(&input);
        let opt_w = input.weight_of(&opt_set);
        let mut w = WeightEvaluator::new(&c);
        for v in 0..d.n_readers() {
            if opt_set.contains(&v) {
                continue;
            }
            let mut bigger = opt_set.clone();
            bigger.push(v);
            if d.is_feasible(&bigger) {
                prop_assert!(w.weight(&bigger, &unread) <= opt_w);
            }
        }
    }
}
