//! Bit-reproducibility: every pipeline stage is a pure function of
//! `(scenario, seed)` — the property EXPERIMENTS.md's recorded numbers
//! rest on.

use rfid_core::{make_scheduler, AlgorithmKind};
use rfid_integration_tests::scenario;
use rfid_model::interference::interference_graph;
use rfid_model::Coverage;
use rfid_sim::SlotSimulator;

#[test]
fn deployments_reproduce_bitwise() {
    let s = scenario(50, 1200, 14.0, 6.0);
    let a = s.generate(123);
    let b = s.generate(123);
    assert_eq!(a, b);
    assert_eq!(Coverage::build(&a), Coverage::build(&b));
    assert_eq!(interference_graph(&a), interference_graph(&b));
}

#[test]
fn schedules_reproduce_per_seed() {
    let s = scenario(25, 400, 13.0, 6.0);
    let d = s.generate(5);
    for kind in AlgorithmKind::paper_lineup() {
        let run = |seed: u64| {
            let sim = SlotSimulator::new(&d);
            let mut scheduler = make_scheduler(kind, seed);
            let report = sim.run(scheduler.as_mut());
            report
                .schedule
                .slots
                .iter()
                .map(|s| (s.active.clone(), s.served.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9), "{kind:?} not reproducible");
    }
}

#[test]
fn different_seeds_change_randomized_algorithms() {
    // Colorwave is randomised: different seeds should (almost surely)
    // produce different colourings somewhere across several deployments.
    let s = scenario(30, 300, 14.0, 6.0);
    let mut any_diff = false;
    for dseed in 0..5u64 {
        let d = s.generate(dseed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = rfid_model::TagSet::all_unread(d.n_tags());
        let input = rfid_core::OneShotInput::new(&d, &c, &g, &unread);
        let a = make_scheduler(AlgorithmKind::Colorwave, 1).schedule(&input);
        let b = make_scheduler(AlgorithmKind::Colorwave, 2).schedule(&input);
        any_diff |= a != b;
    }
    assert!(
        any_diff,
        "colorwave ignored its seed across five deployments"
    );
}

#[test]
fn sweep_records_are_identical_across_runs() {
    use rfid_core::AlgorithmKind;
    use rfid_sim::{run_sweep, SweepAxis, SweepConfig};
    let config = SweepConfig {
        scenario: scenario(15, 150, 12.0, 6.0),
        axis: SweepAxis::Interrogation,
        values: vec![5.0, 7.0],
        fixed_lambda: 12.0,
        algorithms: vec![AlgorithmKind::LocalGreedy, AlgorithmKind::Colorwave],
        trials: 3,
        base_seed: 77,
        measure_mcs: true,
        measure_oneshot: true,
        threads: Some(3),
    };
    let a = run_sweep(&config);
    let b = run_sweep(&config);
    let strip = |rs: &[rfid_sim::TrialRecord]| {
        rs.iter()
            .map(|r| (r.algorithm.clone(), r.seed, r.mcs_size, r.oneshot_weight))
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&a), strip(&b));
}
