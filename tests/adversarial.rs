//! Adversarial geometry: degenerate and extreme deployments that stress
//! every boundary condition at once, across the whole pipeline.

use rfid_core::{make_scheduler, verify_covering_schedule, AlgorithmKind};
use rfid_geometry::{Point, Rect};
use rfid_model::Deployment;
use rfid_sim::SlotSimulator;

fn run_all(d: &Deployment, label: &str) {
    for kind in AlgorithmKind::paper_lineup() {
        let sim = SlotSimulator::new(d);
        let mut s = make_scheduler(kind, 0);
        let report = sim.run(s.as_mut());
        assert_eq!(
            report.schedule.tags_served(),
            sim.coverage().coverable_count(),
            "{label} / {kind:?}"
        );
        assert_eq!(
            verify_covering_schedule(d, &report.schedule),
            Ok(()),
            "{label} / {kind:?}"
        );
    }
}

#[test]
fn collinear_chain_of_readers() {
    // All readers on a line, each interfering only with neighbours; tags
    // exactly on the line — maximum RRc overlap along the axis.
    let n = 12;
    let readers: Vec<Point> = (0..n).map(|i| Point::new(8.0 * i as f64, 50.0)).collect();
    let tags: Vec<Point> = (0..40).map(|i| Point::new(2.3 * i as f64, 50.0)).collect();
    let d = Deployment::new(
        Rect::square(100.0),
        readers,
        vec![9.0; n],
        vec![5.0; n],
        tags,
    );
    run_all(&d, "collinear chain");
}

#[test]
fn concentric_radii_hierarchy() {
    // Readers stacked on one centre with exponentially growing radii —
    // the PTAS level machinery gets one disk per level.
    let radii = [1.0f64, 2.0, 4.0, 8.0, 16.0, 32.0];
    let readers = vec![Point::new(50.0, 50.0); radii.len()];
    let tags: Vec<Point> = (0..30)
        .map(|i| {
            let a = i as f64 * std::f64::consts::TAU / 30.0;
            let r = 1.0 + i as f64;
            Point::new(
                (50.0 + r * a.cos()).clamp(0.0, 100.0),
                (50.0 + r * a.sin()).clamp(0.0, 100.0),
            )
        })
        .collect();
    let interrogation: Vec<f64> = radii.iter().map(|r| r * 0.8).collect();
    let d = Deployment::new(
        Rect::square(100.0),
        readers,
        radii.to_vec(),
        interrogation,
        tags,
    );
    run_all(&d, "concentric hierarchy");
}

#[test]
fn tags_on_exact_boundaries() {
    // Tags precisely on interrogation-disk boundaries: closed-disk
    // semantics must be applied consistently everywhere.
    let d = Deployment::new(
        Rect::square(40.0),
        vec![Point::new(10.0, 20.0), Point::new(30.0, 20.0)],
        vec![8.0, 8.0],
        vec![5.0, 5.0],
        vec![
            Point::new(15.0, 20.0), // exactly on reader 0's boundary
            Point::new(25.0, 20.0), // exactly on reader 1's boundary
            Point::new(20.0, 20.0), // exactly between, covered by neither (dist 10 > 5)
        ],
    );
    let c = rfid_model::Coverage::build(&d);
    assert_eq!(c.readers_of(0), &[0]);
    assert_eq!(c.readers_of(1), &[1]);
    assert!(c.readers_of(2).is_empty());
    run_all(&d, "boundary tags");
}

#[test]
fn giant_jammer_with_satellites() {
    // One reader whose interference disk swallows the region: nothing can
    // run concurrently with it; the schedule must serialise around it.
    let mut readers = vec![Point::new(50.0, 50.0)];
    let mut big = vec![200.0];
    let mut small = vec![3.0];
    for i in 0..6 {
        let a = i as f64 * std::f64::consts::TAU / 6.0;
        readers.push(Point::new(50.0 + 35.0 * a.cos(), 50.0 + 35.0 * a.sin()));
        big.push(6.0);
        small.push(4.0);
    }
    let tags: Vec<Point> = readers
        .iter()
        .map(|p| Point::new(p.x, (p.y + 1.0).min(99.0)))
        .collect();
    let d = Deployment::new(Rect::square(100.0), readers, big, small, tags);
    // Interference graph is a star around reader 0.
    let g = rfid_model::interference::interference_graph(&d);
    assert_eq!(g.degree(0), 6);
    run_all(&d, "giant jammer");
}

#[test]
fn many_coincident_tags_on_one_reader() {
    // 200 tags on a single point inside one reader — a TTc stress: the
    // ALOHA link layer must still identify everyone in one slot.
    let d = Deployment::new(
        Rect::square(20.0),
        vec![Point::new(10.0, 10.0)],
        vec![5.0],
        vec![4.0],
        vec![Point::new(10.0, 11.0); 200],
    );
    let mut sim = SlotSimulator::new(&d);
    sim.link_layer = rfid_sim::LinkLayer::Aloha;
    let mut s = make_scheduler(AlgorithmKind::LocalGreedy, 0);
    let report = sim.run(s.as_mut());
    assert_eq!(
        report.schedule.size(),
        1,
        "all 200 tags well-covered in one slot"
    );
    assert_eq!(report.schedule.tags_served(), 200);
    assert!(report.link_layer_complete);
    assert!(
        report.max_microslots_per_slot >= 200,
        "ALOHA needs ≥ n micro-slots"
    );
}

#[test]
fn extreme_aspect_ratio_region() {
    // A 1000×1 corridor: grid indices and the PTAS grid must not choke on
    // anisotropy.
    let n = 10;
    let readers: Vec<Point> = (0..n)
        .map(|i| Point::new(100.0 * i as f64 + 50.0, 0.5))
        .collect();
    let tags: Vec<Point> = (0..50).map(|i| Point::new(20.0 * i as f64, 0.5)).collect();
    let d = Deployment::new(
        Rect::new(0.0, 0.0, 1000.0, 1.0),
        readers,
        vec![60.0; n],
        vec![40.0; n],
        tags,
    );
    run_all(&d, "corridor");
}
