//! Consistency of the distributed protocol (Algorithm 3) with the model
//! and with its centralized counterpart.

use rfid_core::{DistributedScheduler, LocalGreedy, OneShotInput, OneShotScheduler};
use rfid_integration_tests::scenario;
use rfid_model::interference::interference_graph;
use rfid_model::{audit_activation, Coverage, TagSet};

/// The Red set never contains an interfering pair, for a spread of
/// densities (sparse to near-clique interference graphs).
#[test]
fn red_set_is_feasible_across_densities() {
    for &lambda_big in &[6.0, 12.0, 20.0, 30.0] {
        for seed in 0..3u64 {
            let d = scenario(30, 300, lambda_big, 5.0).generate(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let set = DistributedScheduler::default().schedule(&input);
            let audit = audit_activation(&d, &c, &set, &unread);
            assert!(
                audit.is_feasible(),
                "λ_R={lambda_big} seed {seed}: {:?}",
                audit.rtc_pairs
            );
        }
    }
}

/// Protocol terminates (and the scheduler does not hit its round budget)
/// even on adversarial topologies: a long path and a star.
#[test]
fn terminates_on_path_and_star_topologies() {
    use rfid_geometry::{Point, Rect};
    use rfid_model::Deployment;
    // Path: readers in a line, each interfering only with its neighbours.
    let n = 20;
    let path = Deployment::new(
        Rect::new(0.0, 0.0, 10.0 * n as f64, 10.0),
        (0..n)
            .map(|i| Point::new(10.0 * i as f64 + 5.0, 5.0))
            .collect(),
        vec![10.0; n],
        vec![4.0; n],
        (0..n)
            .map(|i| Point::new(10.0 * i as f64 + 5.0, 2.0))
            .collect(),
    );
    // Star: one huge-interference hub plus leaves outside each other's
    // range.
    let mut pos = vec![Point::new(50.0, 50.0)];
    let mut big = vec![60.0];
    let mut small = vec![5.0];
    for i in 0..8 {
        let angle = i as f64 * std::f64::consts::TAU / 8.0;
        pos.push(Point::new(
            50.0 + 40.0 * angle.cos(),
            50.0 + 40.0 * angle.sin(),
        ));
        big.push(5.0);
        small.push(4.0);
    }
    let tags = (0..9)
        .map(|i| Point::new(pos[i].x, (pos[i].y + 1.0).min(99.0)))
        .collect();
    let star = Deployment::new(Rect::square(100.0), pos, big, small, tags);

    for (name, d) in [("path", path), ("star", star)] {
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let set = DistributedScheduler::default().schedule(&input);
        assert!(d.is_feasible(&set), "{name}");
        assert!(!set.is_empty(), "{name} should activate someone");
    }
}

/// With c large enough to cover the whole graph, the distributed result
/// matches the centralized one exactly (same growth rule, same view).
#[test]
fn matches_centralized_with_global_view() {
    for seed in 0..3u64 {
        let d = scenario(20, 250, 12.0, 6.0).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let rho = 1.1;
        // c = 10 ⇒ every component of a 20-node graph fits in the gathered
        // (2c+2)-hop ball, so head elections replicate the global argmax.
        let dist = DistributedScheduler::with_params(rho, 10).schedule(&input);
        let central = LocalGreedy::new(rho, 10).schedule(&input);
        assert_eq!(dist, central, "seed {seed}");
    }
}

/// Fault matrix: loss × delay × crash against the centralized Algorithm 2
/// baseline. Whenever the protocol completes *cleanly* (all survivors
/// terminal, network quiescent, no message abandoned, no reader falsely
/// suspected), the reliability layer has delivered a complete view and the
/// distributed weight must stay within the ρ growth bound of the
/// centralized one — crash cells get slack for the tags only the dead
/// reader could have contributed.
#[test]
fn fault_matrix_tracks_centralized_within_rho() {
    use rfid_netsim::FaultPlan;
    let rho = 1.1;
    let d = scenario(20, 250, 12.0, 6.0).generate(1);
    let c = Coverage::build(&d);
    let g = interference_graph(&d);
    let unread = TagSet::all_unread(d.n_tags());
    let input = OneShotInput::new(&d, &c, &g, &unread);
    // c = 10 ⇒ the gathered ball spans the graph, so a clean distributed
    // run replicates the centralized election (see
    // `matches_centralized_with_global_view`).
    let w_central = input.weight_of(&LocalGreedy::new(rho, 10).schedule(&input));
    let mut clean_cells = 0usize;
    for &loss in &[0.0, 0.15, 0.3] {
        for &delay in &[0u64, 2] {
            for &crash in &[None, Some(0usize)] {
                let mut plan = FaultPlan::seeded(97).with_loss(loss).with_delay(delay);
                if let Some(victim) = crash {
                    plan = plan.with_crash(victim, 6);
                }
                let mut s = DistributedScheduler::with_params(rho, 10).with_faults(plan);
                let set = s.schedule(&input);
                let cell = format!("loss={loss} delay={delay} crash={crash:?}");
                // Safety holds in every cell, clean or not.
                let audit = audit_activation(&d, &c, &set, &unread);
                assert!(audit.is_feasible(), "{cell}: {:?}", audit.rtc_pairs);
                if let Some(victim) = crash {
                    assert!(!set.contains(&victim), "{cell}: crashed reader activated");
                }
                let sum = s.last_summary.unwrap();
                let clean =
                    sum.completed && sum.quiescent && sum.gave_up == 0 && sum.suspected == 0;
                if !clean {
                    continue;
                }
                clean_cells += 1;
                let slack = crash.map_or(0, |victim| c.tags_of(victim).len());
                let w = input.weight_of(&set);
                assert!(
                    (w + slack) as f64 * rho >= w_central as f64,
                    "{cell}: weight {w} (+{slack} crash slack) fell below \
                     centralized {w_central}/ρ"
                );
            }
        }
    }
    // The benign cells (no loss, no crash) at minimum must complete
    // cleanly, or the matrix is asserting nothing.
    assert!(
        clean_cells >= 2,
        "only {clean_cells} clean cells in the matrix"
    );
}

/// Message volume scales with the gathered radius but stays bounded: the
/// whole protocol is O(n²) records in the worst case.
#[test]
fn message_volume_is_bounded() {
    let d = scenario(40, 400, 16.0, 6.0).generate(0);
    let c = Coverage::build(&d);
    let g = interference_graph(&d);
    let unread = TagSet::all_unread(d.n_tags());
    let input = OneShotInput::new(&d, &c, &g, &unread);
    let mut s = DistributedScheduler::with_params(1.1, 3);
    s.schedule(&input);
    let stats = s.last_stats.unwrap();
    // Generous sanity bound: every reader forwards every record at most
    // once per neighbour, plus result floods.
    let n = d.n_readers() as u64;
    let m = g.m() as u64;
    assert!(
        stats.messages <= 2 * m * n + 10 * n + 100,
        "suspiciously many messages: {} (n={n}, m={m})",
        stats.messages
    );
}
