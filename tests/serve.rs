//! Service-layer integration tests for `rfid-serve`.
//!
//! * **Differential determinism** — the same job solved cold, answered
//!   from the warm cache, requested through the in-process [`Client`]
//!   and requested over TCP must all yield *byte-identical* canonical
//!   payloads, and a cache-disabled service must agree too (the payload
//!   is a pure function of the canonical job, never of cache state).
//! * **Backpressure** — a full queue answers with a structured `429`,
//!   it never hangs and never silently drops a request.
//! * **Deadlines** — an unserviced request expires with `504`.
//! * **Alias convergence** — `alg2`, `ALG2` and `alg2-central` address
//!   the same cache entry.
//! * **Sharding** — the same contracts hold through the consistent-hash
//!   router: byte-identical payloads, and the fleet-wide
//!   `hits + misses + coalesced == requests` invariant summed at the
//!   router.
//! * **Request by key** — a protocol-v4 `Key` frame answers the exact
//!   bytes a full frame answers (direct, derived-delta and routed), and
//!   a key the server does not hold is a structured `404` key-miss that
//!   leaves the connection serviceable.

use rfid_integration_tests::scenario;
use rfid_serve::{
    ClientBuilder, JobSpec, Router, RouterConfig, ScenarioDelta, ServeClient, ServeConfig, Server,
    Service, TcpClient, Workload,
};
use std::time::Duration;

fn job(algorithm: &str, seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(Workload::Generated {
        scenario: scenario(16, 220, 13.0, 6.0),
        seed,
    });
    spec.algorithm = algorithm.to_string();
    spec
}

#[test]
fn payloads_identical_across_cold_warm_inproc_and_tcp() {
    let spec = job("ghc", 7);

    // Cold solve, then warm cache, on one service.
    let service = Service::start(ServeConfig {
        workers: 2,
        queue_cap: 16,
        cache_cap: 64,
        cache_ttl: None,
        ..ServeConfig::default()
    })
    .expect("start service");
    let cold = service.schedule(&spec, None).expect("cold solve");
    assert!(!cold.cached, "first request must miss");
    let warm = service.schedule(&spec, None).expect("warm hit");
    assert!(warm.cached, "second request must hit");
    assert_eq!(cold.key, warm.key);
    assert_eq!(cold.payload.as_bytes(), warm.payload.as_bytes());

    // In-process client over the same service, via the one builder.
    let mut client = ClientBuilder::new()
        .in_process(service.clone())
        .build()
        .expect("build in-process client");
    let inproc = client.schedule(&spec, None).expect("in-process");
    assert_eq!(cold.payload.as_bytes(), inproc.payload.as_bytes());

    // A cache-disabled service must produce the same bytes: the payload
    // is a function of the job, not of cache state.
    let uncached_service = Service::start(ServeConfig {
        workers: 1,
        queue_cap: 4,
        cache_cap: 0,
        cache_ttl: None,
        ..ServeConfig::default()
    })
    .expect("start service");
    let uncached = uncached_service.schedule(&spec, None).expect("uncached");
    assert!(!uncached.cached);
    assert_eq!(cold.key, uncached.key, "content key is cache-independent");
    assert_eq!(cold.payload.as_bytes(), uncached.payload.as_bytes());
    uncached_service.shutdown(true);

    // TCP round trip against a fresh daemon.
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            queue_cap: 16,
            cache_cap: 64,
            cache_ttl: None,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr().to_string();
    let mut tcp = TcpClient::connect(&addr).expect("connect");
    let remote = tcp.schedule(&spec, None).expect("tcp solve");
    assert_eq!(cold.key, remote.key);
    assert_eq!(cold.payload.as_bytes(), remote.payload.as_bytes());

    // The parsed outcome agrees with itself across transports.
    let a = cold.outcome().expect("parse cold");
    let b = remote.outcome().expect("parse tcp");
    assert_eq!(a, b);
    assert_eq!(a.slots, a.slot_summaries.len());
    server.shutdown();
    service.shutdown(true);
}

#[test]
fn algorithm_aliases_share_one_cache_entry() {
    let service = Service::start(ServeConfig {
        workers: 1,
        queue_cap: 8,
        cache_cap: 32,
        cache_ttl: None,
        ..ServeConfig::default()
    })
    .expect("start service");
    let cold = service.schedule(&job("alg2", 3), None).expect("cold");
    assert!(!cold.cached);
    for alias in ["ALG2", "central", "alg2-central"] {
        let reply = service.schedule(&job(alias, 3), None).expect(alias);
        assert!(reply.cached, "{alias} must hit the shared entry");
        assert_eq!(cold.key, reply.key, "{alias}");
        assert_eq!(cold.payload.as_bytes(), reply.payload.as_bytes(), "{alias}");
    }
    service.shutdown(true);
}

#[test]
fn full_queue_rejects_with_structured_429() {
    // No workers: enqueued jobs are never solved, so the queue fills and
    // stays full while we probe it.
    let service = Service::start(ServeConfig {
        workers: 0,
        queue_cap: 2,
        cache_cap: 0,
        cache_ttl: None,
        ..ServeConfig::default()
    })
    .expect("start service");
    let occupants: Vec<_> = (0..2)
        .map(|i| {
            let service = service.clone();
            std::thread::spawn(move || {
                service.schedule(&job("ghc", 100 + i), Some(Duration::from_millis(1500)))
            })
        })
        .collect();
    // Wait until both occupants are actually queued.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while service.stats().queue_depth < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "occupants never queued"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let err = service
        .schedule(&job("ghc", 999), Some(Duration::from_millis(200)))
        .expect_err("full queue must reject");
    assert_eq!(err.code, 429, "{err:?}");
    assert_eq!(service.stats().rejected_full, 1);
    // The occupants come back too — expired, not hung, not dropped.
    for t in occupants {
        let err = t.join().expect("no panic").expect_err("no workers");
        assert_eq!(err.code, 504, "{err:?}");
    }
    assert_eq!(service.stats().deadline_expired, 2);
    service.shutdown(false);
}

#[test]
fn unserviced_request_expires_with_504() {
    let service = Service::start(ServeConfig {
        workers: 0,
        queue_cap: 4,
        cache_cap: 0,
        cache_ttl: None,
        ..ServeConfig::default()
    })
    .expect("start service");
    let err = service
        .schedule(&job("ghc", 1), Some(Duration::from_millis(50)))
        .expect_err("no workers, must expire");
    assert_eq!(err.code, 504, "{err:?}");
    service.shutdown(false);
}

#[test]
fn unknown_algorithm_is_404_locally_and_over_tcp() {
    let service = Service::start(ServeConfig {
        workers: 1,
        queue_cap: 4,
        cache_cap: 4,
        cache_ttl: None,
        ..ServeConfig::default()
    })
    .expect("start service");
    let err = service
        .schedule(&job("nope", 0), None)
        .expect_err("unknown algorithm");
    assert_eq!(err.code, 404, "{err:?}");
    assert!(err.message.contains("alg2-central"), "{err:?}");
    service.shutdown(true);

    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.addr().to_string();
    let mut tcp = TcpClient::connect(&addr).expect("connect");
    match tcp.schedule(&job("nope", 0), None) {
        Err(rfid_serve::ClientError::Remote(remote)) => {
            assert_eq!(remote.code, 404, "{remote:?}")
        }
        other => panic!("expected remote 404, got {other:?}"),
    }
    server.shutdown();
}

fn shard_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_cap: 32,
        cache_cap: 64,
        cache_ttl: None,
        ..ServeConfig::default()
    }
}

#[test]
fn payloads_identical_through_the_router_and_invariant_holds_fleet_wide() {
    let shard_a = Server::start("127.0.0.1:0", shard_config()).expect("shard a");
    let shard_b = Server::start("127.0.0.1:0", shard_config()).expect("shard b");
    let standalone = Server::start("127.0.0.1:0", shard_config()).expect("standalone");
    let router = Router::start(
        "127.0.0.1:0",
        RouterConfig {
            shards: vec![shard_a.addr().to_string(), shard_b.addr().to_string()],
            ..RouterConfig::default()
        },
    )
    .expect("start router");

    let mut via_router = ClientBuilder::new()
        .addr(router.addr().to_string())
        .build()
        .expect("router client");
    let mut direct = ClientBuilder::new()
        .addr(standalone.addr().to_string())
        .build()
        .expect("direct client");

    // 20 distinct jobs, each requested twice through the router and once
    // against an unsharded daemon: same key, same bytes, every path.
    let jobs: Vec<JobSpec> = (0..20).map(|seed| job("ghc", seed)).collect();
    for spec in &jobs {
        let cold = via_router.schedule(spec, None).expect("cold via router");
        assert!(!cold.cached, "first routed request must miss");
        let warm = via_router.schedule(spec, None).expect("warm via router");
        assert!(warm.cached, "second routed request must hit its shard");
        let local = direct.schedule(spec, None).expect("direct");
        assert_eq!(cold.key, warm.key);
        assert_eq!(cold.key, local.key, "content key is topology-independent");
        assert_eq!(cold.payload.as_bytes(), warm.payload.as_bytes());
        assert_eq!(
            cold.payload.as_bytes(),
            local.payload.as_bytes(),
            "determinism contract holds through the router"
        );
    }

    // The routed load actually split across both shards.
    let routed = router.routed_per_shard();
    assert_eq!(routed.iter().sum::<u64>(), 40);
    assert!(
        routed.iter().all(|&n| n > 0),
        "both shards must take load: {routed:?}"
    );
    assert_eq!(router.forward_errors(), 0);

    // Fleet-wide counters summed at the router keep the queue invariant.
    let stats = via_router.stats().expect("aggregated stats");
    assert_eq!(stats.requests, 40);
    assert_eq!(
        stats.cache_hits + stats.cache_misses + stats.coalesced,
        stats.requests,
        "hits + misses + coalesced == requests must hold through the router"
    );
    assert_eq!(stats.cache_hits, 20);
    assert_eq!(stats.solved, 20);

    router.shutdown();
    shard_a.shutdown();
    shard_b.shutdown();
    standalone.shutdown();
}

#[test]
fn key_requests_are_byte_identical_and_key_misses_are_structured() {
    let server = Server::start("127.0.0.1:0", shard_config()).expect("bind loopback");
    let mut tcp = TcpClient::connect(&server.addr().to_string()).expect("connect");

    // Full frame first, then the same schedule addressed by key alone:
    // the spliced fast-path reply must carry the exact same bytes.
    let spec = job("ghc", 11);
    let cold = tcp.schedule(&spec, None).expect("cold");
    let by_key = tcp.schedule_by_key(&cold.key, &[]).expect("by key");
    assert!(by_key.cached, "key request must answer from cache");
    assert_eq!(cold.key, by_key.key);
    assert_eq!(
        cold.payload.as_bytes(),
        by_key.payload.as_bytes(),
        "key path must answer the full frame's bytes"
    );

    // A previously solved delta is addressable as `{key, ops}` under
    // the derived content key, with the same byte guarantee.
    let ops = vec![ScenarioDelta::AddTag { x: 42.0, y: 17.0 }];
    let derived = tcp
        .schedule_delta(&cold.key, &ops, None, None)
        .expect("delta solve");
    let derived_by_key = tcp.schedule_by_key(&cold.key, &ops).expect("delta by key");
    assert!(derived_by_key.cached);
    assert_eq!(derived.key, derived_by_key.key);
    assert_eq!(
        derived.payload.as_bytes(),
        derived_by_key.payload.as_bytes()
    );

    // A non-resident key is a structured 404 key-miss — and the
    // connection stays serviceable afterwards.
    match tcp.schedule_by_key("00000000000000aa", &[]) {
        Err(rfid_serve::ClientError::Remote(remote)) => {
            assert_eq!(remote.code, 404, "{remote:?}");
            assert!(remote.message.starts_with("key-miss"), "{remote:?}");
        }
        other => panic!("expected a remote key-miss, got {other:?}"),
    }
    let again = tcp.schedule_by_key(&cold.key, &[]).expect("still serving");
    assert_eq!(cold.payload.as_bytes(), again.payload.as_bytes());
    server.shutdown();
}

#[test]
fn key_requests_through_the_router_match_the_owning_shard() {
    let shard_a = Server::start("127.0.0.1:0", shard_config()).expect("shard a");
    let shard_b = Server::start("127.0.0.1:0", shard_config()).expect("shard b");
    let router = Router::start(
        "127.0.0.1:0",
        RouterConfig {
            shards: vec![shard_a.addr().to_string(), shard_b.addr().to_string()],
            ..RouterConfig::default()
        },
    )
    .expect("start router");
    let mut via_router = TcpClient::connect(&router.addr().to_string()).expect("connect");

    // Enough distinct jobs to land on both shards: the router must
    // forward each key frame to the shard that cached the schedule and
    // relay its spliced bytes untouched.
    let jobs: Vec<JobSpec> = (0..12).map(|seed| job("ghc", 30 + seed)).collect();
    for spec in &jobs {
        let cold = via_router.schedule(spec, None).expect("cold via router");
        let by_key = via_router
            .schedule_by_key(&cold.key, &[])
            .expect("by key via router");
        assert!(by_key.cached, "routed key request must hit the owner");
        assert_eq!(cold.key, by_key.key);
        assert_eq!(
            cold.payload.as_bytes(),
            by_key.payload.as_bytes(),
            "byte-for-byte through the router"
        );
    }
    let routed = router.routed_per_shard();
    assert!(
        routed.iter().all(|&n| n > 0),
        "both shards must take load: {routed:?}"
    );
    assert_eq!(router.forward_errors(), 0);

    // Key hits count as cache hits in the fleet-wide invariant.
    let mut stats_client = TcpClient::connect(&router.addr().to_string()).expect("stats");
    let (stats, _metrics) = stats_client.stats().expect("aggregated stats");
    assert_eq!(stats.requests, 24);
    assert_eq!(stats.cache_hits, 12);
    assert_eq!(
        stats.cache_hits + stats.cache_misses + stats.coalesced,
        stats.requests,
        "hits + misses + coalesced == requests must hold with key hits"
    );

    router.shutdown();
    shard_a.shutdown();
    shard_b.shutdown();
}

#[test]
fn severed_mid_pipeline_surfaces_after_the_delivered_responses() {
    use std::io::{Read, Write};

    // A fake server that accepts a pipelined batch of three requests,
    // answers the first completely, starts the second, and dies
    // mid-frame. The client must get response 1 cleanly and then a
    // structured mid-frame disconnect — not a hang, not a raw error.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake");
    let addr = listener.local_addr().expect("addr").to_string();
    let fake = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let mut buf = [0u8; 64 * 1024];
        let mut seen = Vec::new();
        // Read until all three request lines have arrived.
        while seen.iter().filter(|&&b| b == b'\n').count() < 3 {
            let n = stream.read(&mut buf).expect("read requests");
            if n == 0 {
                break;
            }
            seen.extend_from_slice(&buf[..n]);
        }
        let first = concat!(
            r#"{"Schedule":{"key":"00000000000000ff","cached":false,"payload":"{}"}}"#,
            "\n"
        );
        let second = r#"{"Schedule":{"key":"00000000000001ff","ca"#; // cut mid-frame
        stream.write_all(first.as_bytes()).expect("reply 1");
        stream
            .write_all(second.as_bytes())
            .expect("half of reply 2");
        // Dropping the stream severs the connection with reply 2 torn
        // and reply 3 never written.
    });

    let mut client = TcpClient::connect(&addr).expect("connect");
    let jobs: Vec<JobSpec> = (0..3).map(|seed| job("ghc", seed)).collect();
    let err = client
        .schedule_batch(&jobs, None)
        .expect_err("torn batch must fail");
    match err {
        rfid_serve::ClientError::Disconnected(m) => {
            assert!(m.contains("mid-frame"), "severed mid-pipeline: {m}")
        }
        other => panic!("expected a mid-frame disconnect, got {other:?}"),
    }
    fake.join().expect("fake server");
}
