//! Chaos harness for the durable, replicated serve layer (DESIGN.md §10).
//!
//! Every schedule is driven by a seeded, pure-data fault plan
//! ([`StorageFaults`], in the spirit of `rfid_netsim::FaultPlan`), so a
//! failing case replays exactly. The invariant under test is always the
//! same **differential byte-identity** guarantee: whatever the failure
//! schedule — `kill -9` mid-append (torn journal tail), denied writes,
//! a partitioned peer, a peer lost mid-sequence — every payload the
//! system returns must be byte-identical to the one a pristine,
//! fault-free service computes for the same job, and a restart must
//! recover exactly the longest valid journal prefix.
//!
//! Fault schedules exercised here:
//! * seeds 1–8 — crash mid-append at varying torn positions, with and
//!   without snapshot compaction in the loop (`kill -9` + restart);
//! * seeds 21–24 — seeded append denial (flaky disk, no crash);
//! * a partitioned gossip peer (connect refused, bounded retries);
//! * a peer killed mid-sequence with client-side failover.

use proptest::prelude::*;
use rfid_integration_tests::scenario;
use rfid_serve::{
    journal, ClientBuilder, DiskStorage, FailoverPolicy, FaultyStorage, JobSpec, ServeClient,
    ServeConfig, Server, Service, Storage, StorageFaults, Workload,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn job(seed: u64) -> JobSpec {
    let mut spec = JobSpec::new(Workload::Generated {
        scenario: scenario(12, 140, 13.0, 6.0),
        seed,
    });
    spec.algorithm = "ghc".to_string();
    spec
}

/// A fresh scratch directory per call (unique across tests and runs).
fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "rfid-serve-chaos-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch data dir");
    dir
}

/// One worker so appends land in request order — the fault schedules
/// below count on "the n-th append is the n-th job".
fn config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        queue_cap: 32,
        cache_cap: 64,
        cache_ttl: None,
        ..ServeConfig::default()
    }
}

/// Reference payloads from a pristine, fault-free, RAM-only service.
fn reference_payloads(jobs: &[JobSpec]) -> Vec<Arc<str>> {
    let service = Service::start(config()).expect("start reference service");
    let payloads = jobs
        .iter()
        .map(|spec| {
            service
                .schedule(spec, None)
                .expect("reference solve")
                .payload
        })
        .collect();
    service.shutdown(true);
    payloads
}

/// The kill-restart differential: a seeded fault plan tears the journal
/// mid-append and crash-stops the storage (the observable state of
/// `kill -9` mid-write); the service must keep serving byte-identical
/// payloads from RAM, and a restart over the same directory must
/// recover exactly the longest valid prefix — warm for the journaled
/// jobs, cold-but-identical for the rest. Eight distinct fault seeds
/// vary the torn position and (on even seeds) put snapshot compaction
/// inside the failure window.
#[test]
fn kill_restart_replay_is_byte_identical_across_fault_seeds() {
    let jobs: Vec<JobSpec> = (0..5).map(|i| job(40 + i)).collect();
    let reference = reference_payloads(&jobs);

    for fault_seed in 1..=8u64 {
        let torn_at = 1 + (fault_seed % 5); // torn positions 1..=5
        let dir = temp_dir("kill");
        let disk: Arc<dyn Storage> = Arc::new(DiskStorage::open(&dir).expect("open data dir"));
        let plan = StorageFaults::seeded(fault_seed).with_torn_append(torn_at);
        let faulty = Arc::new(FaultyStorage::new(disk, plan));
        let mut cfg = config();
        // Even seeds compact every 2 appends, so the crash can land
        // after a snapshot+truncate cycle; odd seeds never compact.
        cfg.snapshot_every = if fault_seed % 2 == 0 { 2 } else { 0 };
        let service =
            Service::start_with_storage(cfg.clone(), Some(faulty.clone() as Arc<dyn Storage>));

        // The storage dies mid-run; serving must not.
        for (i, spec) in jobs.iter().enumerate() {
            let reply = service
                .schedule(spec, None)
                .expect("service survives storage death");
            assert_eq!(
                reply.payload.as_bytes(),
                reference[i].as_bytes(),
                "seed {fault_seed}: live payload diverged"
            );
        }
        assert!(faulty.is_crashed(), "seed {fault_seed}: plan must trigger");
        let stats = service.stats();
        assert_eq!(
            stats.journal_appends,
            torn_at - 1,
            "seed {fault_seed}: appends before the tear"
        );
        assert_eq!(
            stats.journal_append_errors,
            jobs.len() as u64 - (torn_at - 1),
            "seed {fault_seed}: the torn append and everything after fail"
        );
        // kill -9: no shutdown, no drain — just drop the handle.
        drop(service);

        // Restart over the same directory on healthy storage.
        let restarted = Service::start_with_storage(
            cfg,
            Some(Arc::new(DiskStorage::open(&dir).expect("reopen")) as Arc<dyn Storage>),
        );
        let recovered = restarted.stats().recovered_entries;
        assert_eq!(
            recovered,
            torn_at - 1,
            "seed {fault_seed}: longest valid prefix"
        );
        for (i, spec) in jobs.iter().enumerate() {
            let reply = restarted.schedule(spec, None).expect("restart solve");
            assert_eq!(
                reply.payload.as_bytes(),
                reference[i].as_bytes(),
                "seed {fault_seed}: recovered payload diverged"
            );
            assert_eq!(
                reply.cached,
                (i as u64) < recovered,
                "seed {fault_seed}: job {i} warm iff journaled before the tear"
            );
        }
        restarted.shutdown(true);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Seeded append denial (flaky disk, process survives): the journal
/// keeps the surviving subset, a restart warms exactly that subset, and
/// every payload — denied or not — stays byte-identical.
#[test]
fn denied_appends_keep_serving_and_restart_warms_the_surviving_subset() {
    let jobs: Vec<JobSpec> = (0..6).map(|i| job(90 + i)).collect();
    let reference = reference_payloads(&jobs);

    for fault_seed in 21..=24u64 {
        let dir = temp_dir("deny");
        let disk: Arc<dyn Storage> = Arc::new(DiskStorage::open(&dir).expect("open data dir"));
        let plan = StorageFaults::seeded(fault_seed).with_deny_append(0.5);
        let faulty = Arc::new(FaultyStorage::new(disk, plan));
        let service =
            Service::start_with_storage(config(), Some(faulty.clone() as Arc<dyn Storage>));

        for (i, spec) in jobs.iter().enumerate() {
            let reply = service
                .schedule(spec, None)
                .expect("denied appends are not fatal");
            assert_eq!(
                reply.payload.as_bytes(),
                reference[i].as_bytes(),
                "seed {fault_seed}"
            );
        }
        let stats = service.stats();
        assert_eq!(
            stats.journal_appends + stats.journal_append_errors,
            jobs.len() as u64,
            "seed {fault_seed}: every solve attempts an append"
        );
        service.shutdown(true);

        let restarted = Service::start_with_storage(
            config(),
            Some(Arc::new(DiskStorage::open(&dir).expect("reopen")) as Arc<dyn Storage>),
        );
        assert_eq!(
            restarted.stats().recovered_entries,
            stats.journal_appends,
            "seed {fault_seed}: recovery matches the surviving appends"
        );
        let mut warm = 0u64;
        for (i, spec) in jobs.iter().enumerate() {
            let reply = restarted.schedule(spec, None).expect("restart solve");
            assert_eq!(
                reply.payload.as_bytes(),
                reference[i].as_bytes(),
                "seed {fault_seed}"
            );
            if reply.cached {
                warm += 1;
            }
        }
        assert_eq!(
            warm, stats.journal_appends,
            "seed {fault_seed}: warm hits are exactly the journaled jobs"
        );
        restarted.shutdown(true);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A partitioned gossip peer: replication gives up after bounded
/// retries (counted, never blocking), and the partitioned daemon keeps
/// serving byte-identical payloads.
#[test]
fn partitioned_peer_drops_gossip_but_serving_continues() {
    let spec = job(7);
    let reference = reference_payloads(std::slice::from_ref(&spec));

    // Bind-then-drop reserves an address nothing listens on.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
        listener.local_addr().expect("local addr").to_string()
    };
    let service = Service::start_with_storage(
        ServeConfig {
            peers: vec![dead_addr],
            ..config()
        },
        None,
    );

    let cold = service
        .schedule(&spec, None)
        .expect("partition is not fatal");
    assert_eq!(cold.payload.as_bytes(), reference[0].as_bytes());

    // The replicator's bounded retries must end in a counted drop.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while service.stats().replication_dropped == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "replicator never gave up on the partitioned peer"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(service.stats().replicated_out >= 1);

    let warm = service.schedule(&spec, None).expect("warm hit");
    assert!(warm.cached, "partition must not poison the local cache");
    assert_eq!(warm.payload.as_bytes(), reference[0].as_bytes());
    service.shutdown(true);
}

/// Peer loss mid-sequence: the failover client rides over the dead
/// peer to the survivor and every reply stays byte-identical.
#[test]
fn peer_loss_mid_sequence_fails_over_byte_identically() {
    let jobs: Vec<JobSpec> = (0..4).map(|i| job(70 + i)).collect();
    let reference = reference_payloads(&jobs);

    let doomed = Server::start("127.0.0.1:0", config()).expect("bind doomed peer");
    let survivor = Server::start("127.0.0.1:0", config()).expect("bind survivor");
    let mut client = ClientBuilder::new()
        .addrs([doomed.addr().to_string(), survivor.addr().to_string()])
        .policy(FailoverPolicy {
            attempts: 4,
            backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
        })
        .build()
        .expect("build failover client");

    let first = client.schedule(&jobs[0], None).expect("both peers alive");
    assert_eq!(first.payload.as_bytes(), reference[0].as_bytes());

    doomed.shutdown(); // peer loss

    for (i, spec) in jobs.iter().enumerate().skip(1) {
        let reply = client
            .schedule(spec, None)
            .expect("failover to the survivor");
        assert_eq!(
            reply.payload.as_bytes(),
            reference[i].as_bytes(),
            "job {i} after peer loss"
        );
    }
    assert!(
        survivor.service().stats().requests >= 3,
        "the survivor must have served the post-loss sequence"
    );
    survivor.shutdown();
}

/// An empty data directory is a clean cold start, not an error.
#[test]
fn empty_data_dir_is_a_clean_cold_start() {
    assert_eq!(journal::replay(b""), journal::ReplayReport::default());

    let dir = temp_dir("cold");
    let service = Service::start(ServeConfig {
        data_dir: Some(dir.clone()),
        ..config()
    })
    .expect("start over empty dir");
    assert_eq!(service.stats().recovered_entries, 0);
    let reply = service.schedule(&job(3), None).expect("cold solve");
    assert!(!reply.cached);
    service.shutdown(true);
    std::fs::remove_dir_all(&dir).ok();
}

/// Builds a journal byte stream and the byte offset where each record
/// starts.
fn journal_bytes(records: &[(u64, String)]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut starts = Vec::with_capacity(records.len());
    for (key, payload) in records {
        starts.push(bytes.len());
        bytes.extend_from_slice(journal::encode_record(*key, payload).as_bytes());
    }
    (bytes, starts)
}

fn sample_records(n: usize) -> Vec<(u64, String)> {
    (0..n)
        .map(|i| (i as u64 * 7 + 1, format!("{{\"slots\":{i}}}")))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property (seeded corruption offsets): flipping any bit anywhere
    /// in the journal recovers exactly the records before the corrupted
    /// one — never a partial record, never anything after it. Bit 5 is
    /// excluded because it is the ASCII case bit: `a5` → `A5` parses to
    /// the same hex value, which is equivalent, not corrupt.
    #[test]
    fn flipped_journal_byte_recovers_the_longest_valid_prefix(
        n_records in 1usize..6,
        corrupt_frac in 0.0f64..1.0,
        flip_bit in 0u8..5,
    ) {
        let records = sample_records(n_records);
        let (mut bytes, starts) = journal_bytes(&records);
        let offset = ((corrupt_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[offset] ^= 1 << flip_bit;

        let victim = starts.iter().rposition(|&s| s <= offset).expect("offset in range");
        let report = journal::replay(&bytes);
        prop_assert_eq!(report.entries.len(), victim);
        for (entry, expected) in report.entries.iter().zip(&records) {
            prop_assert_eq!(entry.0, expected.0);
            prop_assert_eq!(&entry.1, &expected.1);
        }
        prop_assert_eq!(report.dropped_bytes, bytes.len() - starts[victim]);
    }

    /// Property: truncating the journal at any byte (the torn-tail
    /// shape `kill -9` leaves) recovers exactly the records that are
    /// fully before the cut.
    #[test]
    fn truncated_journal_recovers_records_fully_before_the_cut(
        n_records in 1usize..6,
        cut_frac in 0.0f64..=1.0,
    ) {
        let records = sample_records(n_records);
        let (bytes, starts) = journal_bytes(&records);
        let cut = ((cut_frac * bytes.len() as f64) as usize).min(bytes.len());

        let complete = starts
            .iter()
            .enumerate()
            .take_while(|&(i, &s)| {
                let end = starts.get(i + 1).copied().unwrap_or(bytes.len());
                let _ = s;
                end <= cut
            })
            .count();
        let report = journal::replay(&bytes[..cut]);
        prop_assert_eq!(report.entries.len(), complete);
        for (entry, expected) in report.entries.iter().zip(&records) {
            prop_assert_eq!(entry.0, expected.0);
            prop_assert_eq!(&entry.1, &expected.1);
        }
        let tail_start = starts.get(complete).copied().unwrap_or(bytes.len()).min(cut);
        prop_assert_eq!(report.dropped_bytes, cut - tail_start);
    }
}
