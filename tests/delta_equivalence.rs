//! Differential properties of the incremental repair engine.
//!
//! The delta subsystem's core promise: repairing the previous run under
//! a scenario delta yields a *valid* covering schedule for the patched
//! scenario, never quality-drifts past the ρ guard, and degrades to a
//! cold solve (bit-for-bit) when the guards trip. These tests drive
//! `repair_schedule` with seeded random op streams — arrivals,
//! departures, reader moves, failures, retunes — and check every result
//! from first principles with `verify_covering_schedule`, then compare
//! against an independent cold solve of the patched deployment.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rfid_core::{covering_schedule, verify_covering_schedule, McsOptions, McsRun};
use rfid_delta::{apply_ops, repair_schedule, RepairOptions, ScenarioDelta};
use rfid_graph::Csr;
use rfid_integration_tests::scenario;
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, Deployment};

fn base_deployment(seed: u64) -> Deployment {
    scenario(15, 220, 12.0, 6.0).generate(seed)
}

fn solve(d: &Deployment, algo_seed: u64) -> (Coverage, Csr, McsRun) {
    let coverage = Coverage::build(d);
    let graph = interference_graph(d);
    let run = covering_schedule(d, &coverage, &graph, &McsOptions::new().seed(algo_seed))
        .expect("solvable scenario");
    (coverage, graph, run)
}

/// A seeded op stream covering every delta kind, with indices kept in
/// range against the *evolving* tag population (RemoveTag shifts later
/// indices down, so validity depends on op order).
fn op_stream(d: &Deployment, seed: u64, len: usize) -> Vec<ScenarioDelta> {
    let region = d.region();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut m = d.n_tags() as u32;
    let n = d.n_readers() as u32;
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let kind = rng.random_range(0..5u8);
        let x = region.min_x + rng.random::<f64>() * region.width();
        let y = region.min_y + rng.random::<f64>() * region.height();
        ops.push(match kind {
            1 if m > 0 => {
                m -= 1;
                ScenarioDelta::RemoveTag {
                    tag: rng.random_range(0..m + 1),
                }
            }
            2 => ScenarioDelta::MoveReader {
                reader: rng.random_range(0..n),
                x,
                y,
            },
            3 => ScenarioDelta::SetReaderAlive {
                reader: rng.random_range(0..n),
                alive: rng.random::<bool>(),
            },
            4 => {
                let interference = 4.0 + rng.random::<f64>() * 12.0;
                ScenarioDelta::Retune {
                    reader: rng.random_range(0..n),
                    interference,
                    interrogation: rng.random::<f64>() * interference,
                }
            }
            _ => {
                m += 1;
                ScenarioDelta::AddTag { x, y }
            }
        });
    }
    ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Repair under a random delta always yields a schedule that stands
    /// up to first-principles verification of the *patched* deployment,
    /// serves everything a cold solve serves, and — when it did not
    /// fall back — respects the ρ quality guard.
    #[test]
    fn repaired_schedule_is_a_valid_cover_within_rho(
        scen_seed in 0u64..12,
        op_seed in 0u64..1_000_000_000,
        n_ops in 1usize..16,
    ) {
        let d = base_deployment(scen_seed);
        let (coverage, graph, base_run) = solve(&d, 0);
        let ops = op_stream(&d, op_seed, n_ops);
        let patch = apply_ops(&d, &ops).expect("stream ops are in range");
        let options = RepairOptions::default();
        let report = repair_schedule(&d, &coverage, &graph, &base_run, &patch, &options)
            .expect("repair never exhausts the slot budget here");

        prop_assert_eq!(
            verify_covering_schedule(&patch.deployment, &report.run.schedule),
            Ok(()),
            "repair produced an invalid schedule"
        );

        let (_, _, cold) = solve(&patch.deployment, 0);
        prop_assert_eq!(
            report.run.schedule.tags_served(),
            cold.schedule.tags_served(),
            "repair must serve exactly the coverable tags"
        );
        if report.cold_fallback {
            // A fallback *is* the cold solve (same algorithm + seed).
            prop_assert_eq!(&report.run.schedule, &cold.schedule);
        } else {
            let bound =
                (options.rho * base_run.schedule.size() as f64).ceil() as usize + 1;
            prop_assert!(
                report.run.schedule.size() <= bound,
                "repair kept {} slots past the ρ guard of {bound}",
                report.run.schedule.size()
            );
            prop_assert_eq!(
                report.kept_slots + report.appended_slots,
                report.run.schedule.size()
            );
        }
    }

    /// `max_dirty_fraction = 0` forces the cold path for any delta that
    /// dirties at least one tag; the result must be bit-identical to an
    /// independent cold solve of the patched deployment.
    #[test]
    fn forced_fallback_equals_the_cold_solve(
        scen_seed in 0u64..12,
        op_seed in 0u64..1_000_000_000,
    ) {
        let d = base_deployment(scen_seed);
        let (coverage, graph, base_run) = solve(&d, 0);
        // Guarantee at least one dirty tag regardless of the stream.
        let mut ops = vec![ScenarioDelta::AddTag { x: 1.0, y: 1.0 }];
        ops.extend(op_stream(&d, op_seed, 4));
        let patch = apply_ops(&d, &ops).expect("stream ops are in range");
        let options = RepairOptions {
            max_dirty_fraction: 0.0,
            ..RepairOptions::default()
        };
        let report = repair_schedule(&d, &coverage, &graph, &base_run, &patch, &options)
            .expect("cold path is a plain solve");
        prop_assert!(report.cold_fallback);
        prop_assert_eq!(report.kept_slots, 0);
        let (_, _, cold) = solve(&patch.deployment, 0);
        prop_assert_eq!(report.run.schedule, cold.schedule);
    }
}

/// The empty delta is the strongest differential case: nothing is
/// dirty, so the repair must replay the base schedule unchanged.
#[test]
fn empty_delta_replays_the_base_schedule_exactly() {
    for seed in 0..4u64 {
        let d = base_deployment(seed);
        let (coverage, graph, base_run) = solve(&d, 0);
        let patch = apply_ops(&d, &[]).unwrap();
        let report = repair_schedule(
            &d,
            &coverage,
            &graph,
            &base_run,
            &patch,
            &RepairOptions::default(),
        )
        .unwrap();
        assert!(!report.cold_fallback);
        assert_eq!(report.appended_slots, 0, "seed {seed}");
        assert_eq!(report.run.schedule, base_run.schedule, "seed {seed}");
    }
}

/// Chained repair across a mobile epoch stream: each epoch's
/// `MoveReader` ops repair the previous epoch's schedule, and every
/// intermediate schedule must verify against its epoch's deployment.
#[test]
fn mobility_delta_stream_chains_through_repair() {
    let initial = scenario(12, 150, 12.0, 6.0).generate(9);
    let sim = rfid_sim::MobilitySim {
        initial: initial.clone(),
        model: rfid_sim::MobilityModel::RandomWalk { sigma: 2.0 },
        slots_per_epoch: 2,
        max_epochs: 4,
        seed: 9,
    };
    let stream = sim.delta_stream(4);
    let mut d = initial;
    let (mut coverage, mut graph, mut run) = solve(&d, 0);
    let mut repaired_epochs = 0usize;
    for ops in &stream {
        let patch = apply_ops(&d, ops).unwrap();
        let report = repair_schedule(
            &d,
            &coverage,
            &graph,
            &run,
            &patch,
            &RepairOptions::default(),
        )
        .unwrap();
        assert_eq!(
            verify_covering_schedule(&patch.deployment, &report.run.schedule),
            Ok(())
        );
        if !report.cold_fallback {
            repaired_epochs += 1;
        }
        d = patch.deployment;
        coverage = Coverage::build(&d);
        graph = interference_graph(&d);
        run = report.run;
    }
    assert!(
        repaired_epochs > 0,
        "σ=2 walks must leave at least one epoch repairable"
    );
}
