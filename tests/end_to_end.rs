//! End-to-end integration: deployment → derived structures → scheduler →
//! audited covering schedule, across every algorithm.

use rfid_core::{make_scheduler, AlgorithmKind, OneShotInput};
use rfid_integration_tests::scenario;
use rfid_model::interference::interference_graph;
use rfid_model::{audit_activation, Coverage, TagSet};
use rfid_sim::{LinkLayer, SlotSimulator};

/// Every algorithm × several seeds: the audited simulator must complete
/// with all coverable tags served and zero model violations (the simulator
/// panics on any RTc or served/well-covered mismatch).
#[test]
fn every_algorithm_completes_an_audited_schedule() {
    let s = scenario(25, 300, 12.0, 6.0);
    for kind in AlgorithmKind::paper_lineup() {
        for seed in 0..3u64 {
            let d = s.generate(seed);
            let sim = SlotSimulator::new(&d);
            let mut scheduler = make_scheduler(kind, seed);
            let report = sim.run(scheduler.as_mut());
            assert_eq!(
                report.schedule.tags_served(),
                sim.coverage().coverable_count(),
                "{kind:?} seed {seed}"
            );
        }
    }
}

/// The full pipeline with a real link layer still identifies every tag.
#[test]
fn end_to_end_with_aloha_link_layer() {
    let s = scenario(20, 400, 12.0, 6.0);
    let d = s.generate(11);
    let mut sim = SlotSimulator::new(&d);
    sim.link_layer = LinkLayer::Aloha;
    let mut scheduler = make_scheduler(AlgorithmKind::LocalGreedy, 0);
    let report = sim.run(scheduler.as_mut());
    assert!(report.link_layer_complete);
    assert!(report.total_microslots >= report.schedule.tags_served() as u64);
}

/// One-shot outputs satisfy Definition 1 end to end: the general collision
/// audit agrees with the scheduler's own weight accounting.
#[test]
fn oneshot_outputs_survive_the_general_audit() {
    let s = scenario(35, 500, 14.0, 6.0);
    for kind in AlgorithmKind::paper_lineup() {
        for seed in 0..3u64 {
            let d = s.generate(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let unread = TagSet::all_unread(d.n_tags());
            let input = OneShotInput::new(&d, &c, &g, &unread);
            let mut scheduler = make_scheduler(kind, seed);
            let set = scheduler.schedule(&input);
            let audit = audit_activation(&d, &c, &set, &unread);
            assert!(
                audit.is_feasible(),
                "{kind:?} seed {seed}: RTc {:?}",
                audit.rtc_pairs
            );
            assert_eq!(
                audit.well_covered.len(),
                input.weight_of(&set),
                "{kind:?} seed {seed}: audit and weight disagree"
            );
        }
    }
}

/// Degenerate deployments must not panic anywhere in the pipeline.
#[test]
fn degenerate_deployments_are_handled() {
    use rfid_geometry::{Point, Rect};
    use rfid_model::Deployment;
    let cases = vec![
        // no readers, tags exist
        Deployment::new(
            Rect::square(10.0),
            vec![],
            vec![],
            vec![],
            vec![Point::new(1.0, 1.0)],
        ),
        // readers, no tags
        Deployment::new(
            Rect::square(10.0),
            vec![Point::new(2.0, 2.0), Point::new(8.0, 8.0)],
            vec![3.0, 3.0],
            vec![1.0, 1.0],
            vec![],
        ),
        // all readers stacked on one point (fully interfering clique)
        Deployment::new(
            Rect::square(10.0),
            vec![Point::new(5.0, 5.0); 5],
            vec![2.0; 5],
            vec![1.0; 5],
            vec![Point::new(5.0, 5.5), Point::new(9.9, 9.9)],
        ),
    ];
    for (i, d) in cases.into_iter().enumerate() {
        for kind in AlgorithmKind::paper_lineup() {
            let sim = SlotSimulator::new(&d);
            let mut scheduler = make_scheduler(kind, 0);
            let report = sim.run(scheduler.as_mut());
            assert_eq!(
                report.schedule.tags_served(),
                sim.coverage().coverable_count(),
                "case {i} {kind:?}"
            );
        }
    }
}

/// The MCS loop serves each tag exactly once (no double reads across
/// slots).
#[test]
fn no_tag_is_served_twice() {
    let s = scenario(30, 600, 13.0, 7.0);
    let d = s.generate(4);
    let sim = SlotSimulator::new(&d);
    let mut scheduler = make_scheduler(AlgorithmKind::Ptas, 0);
    let report = sim.run(scheduler.as_mut());
    let mut seen = std::collections::HashSet::new();
    for slot in &report.schedule.slots {
        for &t in &slot.served {
            assert!(seen.insert(t), "tag {t} served twice");
        }
    }
}
