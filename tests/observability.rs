//! Observability contract tests: subscribers observe, they never steer.
//!
//! * Per-slot [`SlotMetrics`] must reconcile exactly with the covering
//!   schedule's own totals.
//! * Attaching any subscriber (no-op or recording) must leave the
//!   schedule byte-identical — the differential proptests compare the
//!   full `Debug` rendering of metrics-on vs metrics-off runs.

use proptest::prelude::*;
use rfid_core::{covering_schedule_with, AlgorithmKind, McsOptions, SchedulerRegistry};
use rfid_integration_tests::scenario;
use rfid_model::interference::interference_graph;
use rfid_model::Coverage;
use rfid_obs::{NoopSubscriber, Recorder};

const KINDS: [AlgorithmKind; 5] = [
    AlgorithmKind::Ptas,
    AlgorithmKind::LocalGreedy,
    AlgorithmKind::Distributed,
    AlgorithmKind::Colorwave,
    AlgorithmKind::HillClimbing,
];

#[test]
fn slot_metrics_reconcile_with_schedule_totals() {
    let registry = SchedulerRegistry::global();
    for kind in KINDS {
        for seed in [0u64, 11, 42] {
            let d = scenario(18, 260, 13.0, 6.0).generate(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let mut s = registry.instantiate(kind, seed);
            let run = covering_schedule_with(
                &d,
                &c,
                &g,
                s.as_mut(),
                &McsOptions::new().slot_metrics(true),
            )
            .expect("strict covering schedule diverged");
            let label = registry.entry(kind).label;
            let schedule = &run.schedule;
            assert_eq!(run.slot_metrics.len(), schedule.size(), "{label}");
            let mut served = 0usize;
            let mut fallback = 0usize;
            for (i, m) in run.slot_metrics.iter().enumerate() {
                assert_eq!(m.slot, i, "{label}");
                assert_eq!(m.active_readers, schedule.slots[i].active.len(), "{label}");
                assert_eq!(m.tags_served, schedule.slots[i].served.len(), "{label}");
                assert_eq!(m.fallback, schedule.slots[i].fallback, "{label}");
                served += m.tags_served;
                fallback += usize::from(m.fallback);
            }
            assert_eq!(served, schedule.tags_served(), "{label}");
            assert_eq!(fallback, schedule.fallback_slots(), "{label}");
        }
    }
}

#[test]
fn recorder_counters_match_schedule_totals() {
    let registry = SchedulerRegistry::global();
    let d = scenario(20, 300, 13.0, 6.0).generate(5);
    let c = Coverage::build(&d);
    let g = interference_graph(&d);
    for kind in KINDS {
        let recorder = Recorder::new();
        let mut s = registry.instantiate(kind, 5);
        let run = covering_schedule_with(
            &d,
            &c,
            &g,
            s.as_mut(),
            &McsOptions::new().subscriber(&recorder),
        )
        .expect("strict covering schedule diverged");
        let snap = recorder.snapshot();
        let label = registry.entry(kind).label;
        assert_eq!(
            snap.counter("mcs.slots") as usize,
            run.schedule.size(),
            "{label}"
        );
        assert_eq!(
            snap.counter("mcs.tags_served") as usize,
            run.schedule.tags_served(),
            "{label}"
        );
        assert_eq!(
            snap.counter("mcs.fallback_slots") as usize,
            run.schedule.fallback_slots(),
            "{label}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The determinism contract, differentially: a run with no subscriber,
    /// a run with a no-op subscriber, and a run with a full recorder plus
    /// slot metrics must produce byte-identical schedules.
    #[test]
    fn subscribers_never_change_the_schedule(
        seed in 0u64..500,
        n_readers in 8usize..26,
        kind_idx in 0usize..KINDS.len(),
    ) {
        let kind = KINDS[kind_idx];
        let d = scenario(n_readers, n_readers * 12, 13.0, 6.0).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let registry = SchedulerRegistry::global();

        let plain = covering_schedule_with(
            &d, &c, &g,
            registry.instantiate(kind, seed).as_mut(),
            &McsOptions::new(),
        ).expect("strict covering schedule diverged").schedule;

        let noop = NoopSubscriber;
        let with_noop = covering_schedule_with(
            &d, &c, &g,
            registry.instantiate(kind, seed).as_mut(),
            &McsOptions::new().subscriber(&noop),
        ).expect("strict covering schedule diverged").schedule;

        let recorder = Recorder::new();
        let observed = covering_schedule_with(
            &d, &c, &g,
            registry.instantiate(kind, seed).as_mut(),
            &McsOptions::new().subscriber(&recorder).slot_metrics(true),
        ).expect("strict covering schedule diverged").schedule;

        // Byte-identical, not merely equal: compare the full rendering.
        let bytes = |s: &rfid_core::CoveringSchedule| format!("{s:?}");
        prop_assert_eq!(bytes(&plain), bytes(&with_noop), "no-op subscriber steered {:?}", kind);
        prop_assert_eq!(bytes(&plain), bytes(&observed), "recorder steered {:?}", kind);
    }

    /// Recorder snapshots themselves are deterministic: two identical
    /// observed runs render identical snapshot JSON (wall times excluded).
    #[test]
    fn snapshots_are_deterministic(seed in 0u64..200, kind_idx in 0usize..KINDS.len()) {
        let kind = KINDS[kind_idx];
        let d = scenario(14, 180, 12.0, 6.0).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let registry = SchedulerRegistry::global();
        let json = || {
            let recorder = Recorder::new();
            covering_schedule_with(
                &d, &c, &g,
                registry.instantiate(kind, seed).as_mut(),
                &McsOptions::new().subscriber(&recorder),
            ).expect("strict covering schedule diverged");
            recorder.snapshot().to_json()
        };
        prop_assert_eq!(json(), json());
    }
}
