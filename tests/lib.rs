//! Shared fixtures for the cross-crate integration tests.

use rfid_model::{RadiusModel, Scenario, ScenarioKind};

/// A paper-style scenario scaled by `n_readers`/`n_tags`.
pub fn scenario(n_readers: usize, n_tags: usize, lambda_big: f64, lambda_small: f64) -> Scenario {
    Scenario {
        kind: ScenarioKind::UniformRandom,
        n_readers,
        n_tags,
        region_side: 100.0,
        radius_model: RadiusModel::PoissonPair {
            lambda_interference: lambda_big,
            lambda_interrogation: lambda_small,
        },
    }
}
