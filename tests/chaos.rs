//! Chaos property-test harness: randomized fault schedules thrown at the
//! distributed protocol, checked against its two contracts.
//!
//! **Safety** (holds under *any* fault plan): every returned activation is
//! pairwise independent (no RTc pair), crashed readers are never activated,
//! and across a full covering schedule no tag is served twice.
//!
//! **Liveness** (holds whenever loss ≤ 0.3 and ≥ 1 reader survives): the
//! network reaches quiescence within the round budget documented in
//! `rfid_core::distributed`, and every survivor reaches a terminal colour.
//!
//! The vendored proptest stand-in draws cases from a fixed per-test seed,
//! so these runs are reproducible; `PROPTEST_SEED=<n>` explores new fault
//! schedules without code changes.

use proptest::prelude::*;
use rfid_core::{DistributedScheduler, OneShotInput, OneShotScheduler};
use rfid_integration_tests::scenario;
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, TagSet};
use rfid_netsim::FaultPlan;
use rfid_sim::SlotSimulator;
use std::collections::BTreeSet;

/// Reader count for the one-shot chaos runs; crash draws are capped well
/// below it so at least one reader always survives.
const N_READERS: usize = 24;

/// Assembles a seeded plan from the drawn knobs. Duplicate crash draws
/// collapse to the earliest round ([`FaultPlan::with_crash`] semantics).
fn plan_from(
    seed: u64,
    loss_pct: u32,
    delay: u64,
    crashes: &[(usize, u64)],
    cut_rounds: u64,
    n: usize,
) -> FaultPlan {
    let mut plan = FaultPlan::seeded(seed)
        .with_loss(f64::from(loss_pct) / 100.0)
        .with_delay(delay);
    for &(node, round) in crashes {
        plan = plan.with_crash(node % n, round);
    }
    if cut_rounds > 0 {
        plan = plan.with_partition(0..n / 2, n / 2..n, 2, 2 + cut_rounds);
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// One-shot safety + liveness under randomized loss, delay, crash-stop
    /// failures and a transient partition straight down the middle.
    #[test]
    fn randomized_faults_preserve_safety_and_liveness(
        dep_seed in 0u64..4,
        plan_seed in 0u64..1_000_000,
        loss_pct in 0u32..=30,
        delay in 0u64..=2,
        crashes in proptest::collection::vec((0usize..N_READERS, 2u64..24), 0..4),
        cut_rounds in 0u64..16,
    ) {
        let d = scenario(N_READERS, 240, 13.0, 6.0).generate(dep_seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let plan = plan_from(plan_seed, loss_pct, delay, &crashes, cut_rounds, N_READERS);
        let lossy = plan.can_lose_messages();
        let mut s = DistributedScheduler::default().with_faults(plan);
        let set = s.schedule(&input);

        // Safety: feasible activation, no crashed reader in it.
        prop_assert!(d.is_feasible(&set), "RTc pair in activation {set:?}");
        let dead: BTreeSet<_> = s.crashed_readers().into_iter().collect();
        prop_assert!(
            set.iter().all(|r| !dead.contains(r)),
            "crashed reader activated: {set:?} ∩ {dead:?}"
        );

        // Liveness: loss ≤ 0.3 and ≥ 1 survivor by construction, so the
        // run must complete and quiesce within the documented budget.
        let summary = s.last_summary.unwrap();
        prop_assert!(summary.survivors >= 1, "no survivors: {summary:?}");
        prop_assert!(summary.quiescent, "not quiescent in budget: {summary:?}");
        prop_assert!(summary.completed, "a survivor stayed White: {summary:?}");

        // The quiescence bound itself, restated from the scheduler's
        // budget derivation (c = 3 defaults; hop/watchdog windows stretch
        // with the delay bound).
        let (gc, n) = (3u64, N_READERS as u64);
        let budget = if lossy {
            let hop = 64 + 16 * delay;
            let watchdog = 64 + 4 * delay;
            (2 * gc + 2) * hop + (n + 1) * (watchdog + 3 * gc + 5) + 64
        } else {
            ((2 * gc + 2) + (n + 1) * (3 * gc + 5) + 16) * (1 + delay)
        };
        let rounds = s.last_stats.unwrap().rounds;
        prop_assert!(rounds <= budget, "{rounds} rounds exceed documented bound {budget}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Full-pipeline chaos: the resilient covering schedule under loss and
    /// crashes serves every tag at most once, keeps every slot feasible,
    /// and accounts for exactly the coverable population.
    #[test]
    fn chaos_covering_schedule_serves_each_tag_at_most_once(
        dep_seed in 0u64..3,
        plan_seed in 0u64..1_000_000,
        loss_pct in 0u32..=25,
        crashes in proptest::collection::vec((0usize..15, 2u64..12), 0..3),
    ) {
        let d = scenario(15, 150, 11.0, 6.0).generate(dep_seed);
        let sim = SlotSimulator::new(&d);
        let plan = plan_from(plan_seed, loss_pct, 0, &crashes, 0, 15);
        let mut s = DistributedScheduler::default().with_faults(plan);
        let rep = sim.run_resilient(&mut s);

        let mut served = BTreeSet::new();
        for (i, slot) in rep.report.schedule.slots.iter().enumerate() {
            prop_assert!(d.is_feasible(&slot.active), "slot {i}: {:?}", slot.active);
            for &t in &slot.served {
                prop_assert!(served.insert(t), "tag {t} double-served at slot {i}");
            }
        }
        // Abandoned and served partition the coverable population.
        for &t in &rep.abandoned_tags {
            prop_assert!(!served.contains(&t), "tag {t} both served and abandoned");
        }
        prop_assert_eq!(
            served.len() + rep.abandoned_tags.len(),
            sim.coverage().coverable_count(),
            "coverable population not fully accounted for"
        );
    }
}

/// Determinism at the full-pipeline level: one [`FaultPlan`] (seed
/// included) replays the exact same chaos run — identical covering
/// schedule, degradation counters, outcome digest, and per-round trace.
#[test]
fn identical_fault_plans_reproduce_chaos_runs_bitwise() {
    let d = scenario(18, 200, 12.0, 6.0).generate(7);
    let plan = FaultPlan::seeded(41)
        .with_loss(0.25)
        .with_delay(1)
        .with_crash(2, 5)
        .with_crash(9, 14)
        .with_partition(0..9, 9..18, 3, 9);
    let run = || {
        let sim = SlotSimulator::new(&d);
        let mut s = DistributedScheduler::default().with_faults(plan.clone());
        let rep = sim.run_resilient(&mut s);
        (
            rep.report.schedule,
            rep.repaired_pairs,
            rep.crashed_dropped,
            rep.abandoned_tags,
            s.last_summary.unwrap(),
            s.last_trace.unwrap(),
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.0, b.0, "covering schedules diverged");
    assert_eq!(
        (a.1, a.2, &a.3),
        (b.1, b.2, &b.3),
        "degradation counters diverged"
    );
    assert_eq!(a.4, b.4, "run summaries diverged");
    assert_eq!(a.5, b.5, "trace event sequences diverged");
}
