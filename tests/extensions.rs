//! Integration tests for the extension features: multi-channel,
//! Q-learning, mobility, dynamic arrivals, timetables, and faulted
//! distributed runs — all exercised through the public APIs together.

use rfid_core::{
    covering_schedule_with, make_scheduler, multichannel_covering_schedule, AlgorithmKind,
    DistributedScheduler, McsOptions, MultiChannelGreedy, OneShotInput, OneShotScheduler,
    QLearningScheduler,
};
use rfid_integration_tests::scenario;
use rfid_model::interference::interference_graph;
use rfid_model::{Coverage, TagSet};
use rfid_sim::metrics::activation_churn;
use rfid_sim::{run_dynamic, DynamicConfig, MobilityModel, MobilitySim, Timetable};

#[test]
fn multichannel_dominates_single_channel_end_to_end() {
    for seed in 0..3u64 {
        let d = scenario(25, 400, 15.0, 7.0).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let w1 = {
            let s = MultiChannelGreedy::new(1);
            let a = s.schedule(&input);
            s.weight_of(&input, &a)
        };
        let w3 = {
            let s = MultiChannelGreedy::new(3);
            let a = s.schedule(&input);
            assert!(a.is_feasible(&g));
            s.weight_of(&input, &a)
        };
        assert!(w3 >= w1, "seed {seed}: 3 channels {w3} < 1 channel {w1}");
        // and the covering schedule is never longer
        let m1 = multichannel_covering_schedule(&d, &c, &g, 1, 100_000);
        let m3 = multichannel_covering_schedule(&d, &c, &g, 3, 100_000);
        assert!(m3.size() <= m1.size(), "seed {seed}");
        assert_eq!(m3.tags_served(), c.coverable_count());
    }
}

#[test]
fn qlearning_is_feasible_but_not_dominant() {
    let mut ql_total = 0usize;
    let mut alg1_total = 0usize;
    for seed in 0..3u64 {
        let d = scenario(25, 400, 14.0, 6.0).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let unread = TagSet::all_unread(d.n_tags());
        let input = OneShotInput::new(&d, &c, &g, &unread);
        let ql = QLearningScheduler::seeded(seed).schedule(&input);
        assert!(d.is_feasible(&ql), "seed {seed}");
        ql_total += input.weight_of(&ql);
        alg1_total += input.weight_of(&make_scheduler(AlgorithmKind::Ptas, seed).schedule(&input));
    }
    assert!(
        alg1_total >= ql_total,
        "PTAS ({alg1_total}) must dominate Q-learning ({ql_total}) in aggregate"
    );
}

#[test]
fn mobile_run_with_distributed_scheduler() {
    // The full stack: mobility × message-passing scheduler.
    let initial = scenario(10, 150, 12.0, 8.0).generate(5);
    let sim = MobilitySim {
        initial: initial.clone(),
        model: MobilityModel::RandomWaypoint { speed: 10.0 },
        slots_per_epoch: 1,
        max_epochs: 80,
        seed: 5,
    };
    let mut scheduler = DistributedScheduler::default();
    let report = sim.run(&mut scheduler);
    let static_coverable = Coverage::build(&initial).coverable_count();
    assert!(report.total_served >= static_coverable);
}

#[test]
fn dynamic_arrivals_with_every_paper_algorithm() {
    let readers = scenario(12, 0, 13.0, 7.0).generate(2);
    for kind in AlgorithmKind::paper_lineup() {
        let mut s = make_scheduler(kind, 1);
        let report = run_dynamic(
            &readers,
            DynamicConfig {
                arrival_rate: 4.0,
                slots: 40,
                warmup: 8,
                seed: 3,
            },
            s.as_mut(),
        );
        assert!(report.served > 0, "{kind:?} served nothing");
        assert!(report.throughput > 0.0);
    }
}

#[test]
fn timetable_matches_schedule_and_churn() {
    let d = scenario(20, 300, 13.0, 6.0).generate(9);
    let c = Coverage::build(&d);
    let g = interference_graph(&d);
    let mut s = make_scheduler(AlgorithmKind::LocalGreedy, 0);
    let schedule = covering_schedule_with(
        &d,
        &c,
        &g,
        s.as_mut(),
        &McsOptions::new().max_slots(100_000),
    )
    .expect("strict covering schedule diverged")
    .schedule;
    let table = Timetable::build(&schedule, d.n_readers());
    // total activations agree between the two views
    let slot_major: usize = schedule.slots.iter().map(|s| s.active.len()).sum();
    let reader_major: usize = (0..d.n_readers()).map(|v| table.active[v].len()).sum();
    assert_eq!(slot_major, reader_major);
    assert!(table.mean_duty_cycle() <= 1.0);
    // churn is defined on the same slot-major view
    let active: Vec<Vec<usize>> = schedule.slots.iter().map(|s| s.active.clone()).collect();
    let churn = activation_churn(&active);
    assert!((0.0..=1.0).contains(&churn));
    // render does not panic and covers every reader
    let text = table.render_text();
    assert_eq!(text.lines().count(), d.n_readers());
}

#[test]
fn faulted_distributed_stays_consistent_with_audit() {
    use rfid_model::audit_activation;
    let d = scenario(25, 300, 14.0, 6.0).generate(7);
    let c = Coverage::build(&d);
    let g = interference_graph(&d);
    let unread = TagSet::all_unread(d.n_tags());
    let input = OneShotInput::new(&d, &c, &g, &unread);
    let mut s = DistributedScheduler::default().with_loss(0.3, 11);
    s.crashes = vec![(3, 2), (8, 5)];
    let set = s.schedule(&input);
    let audit = audit_activation(&d, &c, &set, &unread);
    assert!(
        audit.is_feasible(),
        "loss+crash run produced RTc: {:?}",
        audit.rtc_pairs
    );
    assert!(!set.contains(&3) && !set.contains(&8));
}
