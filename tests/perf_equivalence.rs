//! Differential equivalence tests for the performance work (DESIGN.md §7).
//!
//! The lazy-greedy MCS engine (incremental singleton weights, lazy
//! fallback queue, scratch reuse, sorted seed cursors, parallel scoring)
//! is required to be **bit-identical** to the original eager per-slot
//! rescan semantics. These tests pin that contract:
//!
//! * a from-scratch reference implementation of the covering-schedule
//!   loops (fresh evaluator and `O(n)` `max_by_key` fallback scan every
//!   slot, no precomputed singleton weights) must produce *equal*
//!   `CoveringSchedule` / `ResilientSchedule` values across random
//!   deployments, radius mixes, schedulers and crash sets;
//! * every scheduler must return the same set with and without the
//!   driver-provided singleton weights attached to its input;
//! * the packed-bitset scoring layer ([`CoverageRows`]/[`PlaneScratch`])
//!   must agree element-wise with the eager per-tag [`WeightEvaluator`]
//!   on weights, well-covered sets, singleton rows and add-deltas;
//! * the `rfid_core::par` facade must be chunk-count invisible: 1, 2 and
//!   pool-many chunks agree element-wise (chunk boundaries are rounded to
//!   cache-line multiples — still invisible);
//! * per-slot scratch allocation must be *flat*: the `mcs.alloc` feed
//!   shows warmup confined to the first slot and zero on a warm rerun,
//!   including on the resilient audit/repair path.

use proptest::prelude::*;
use rfid_core::{
    covering_schedule_with, make_scheduler, par, AlgorithmKind, AliveSet, BallScratch,
    CoveringSchedule, McsOptions, OneShotInput, OneShotScheduler, ResilientSchedule, ScheduleError,
    SlotRecord,
};
use rfid_graph::Csr;
use rfid_model::interference::interference_graph;
use rfid_model::scenario::{Scenario, ScenarioKind};
use rfid_model::{
    audit_activation, Coverage, CoverageRows, Deployment, PlaneScratch, RadiusModel, ReaderId,
    TagId, TagSet, WeightEvaluator,
};

fn scenario(n_readers: usize, li: f64, lr: f64) -> Scenario {
    Scenario {
        kind: ScenarioKind::UniformRandom,
        n_readers,
        n_tags: n_readers * 8,
        region_side: 22.0 * (n_readers as f64).sqrt(),
        radius_model: RadiusModel::PoissonPair {
            lambda_interference: li,
            lambda_interrogation: lr,
        },
    }
}

/// The pre-optimisation greedy loop, verbatim semantics: fresh weight
/// evaluator each slot, eager `max_by_key` fallback over all readers.
fn reference_covering_schedule(
    deployment: &Deployment,
    coverage: &Coverage,
    graph: &Csr,
    scheduler: &mut dyn OneShotScheduler,
    max_slots: usize,
) -> Result<CoveringSchedule, ScheduleError> {
    let mut unread = TagSet::all_unread(deployment.n_tags());
    let uncoverable: Vec<TagId> = (0..deployment.n_tags())
        .filter(|&t| !coverage.is_coverable(t))
        .collect();
    let mut slots = Vec::new();
    let coverable_total = coverage.coverable_count();
    let mut served_total = 0usize;
    while served_total < coverable_total {
        if slots.len() >= max_slots {
            return Err(ScheduleError::SlotBudgetExhausted {
                max_slots,
                served: served_total,
                coverable: coverable_total,
            });
        }
        let mut weights = WeightEvaluator::new(coverage);
        let input = OneShotInput::new(deployment, coverage, graph, &unread);
        let mut active = scheduler.schedule(&input);
        let mut served = weights.well_covered(&active, &unread);
        let mut fallback = false;
        if served.is_empty() {
            let stall = ScheduleError::NoProgress {
                served: served_total,
                coverable: coverable_total,
            };
            let best = (0..deployment.n_readers())
                .max_by_key(|&v| (weights.singleton_weight(v, &unread), std::cmp::Reverse(v)))
                .ok_or(stall.clone())?;
            active = vec![best];
            served = weights.well_covered(&active, &unread);
            fallback = true;
            if served.is_empty() {
                return Err(stall);
            }
        }
        unread.mark_all_read(&served);
        served_total += served.len();
        slots.push(SlotRecord {
            active,
            served,
            fallback,
        });
    }
    Ok(CoveringSchedule { slots, uncoverable })
}

/// The pre-optimisation resilient loop, verbatim semantics.
/// The optimized strict engine through the unified entry point, shaped
/// like the reference for direct comparison.
fn engine_schedule(
    deployment: &Deployment,
    coverage: &Coverage,
    graph: &Csr,
    scheduler: &mut dyn OneShotScheduler,
    max_slots: usize,
) -> Result<CoveringSchedule, ScheduleError> {
    covering_schedule_with(
        deployment,
        coverage,
        graph,
        scheduler,
        &McsOptions::new().max_slots(max_slots),
    )
    .map(|run| run.schedule)
}

/// The optimized resilient engine through the unified entry point.
fn engine_resilient(
    deployment: &Deployment,
    coverage: &Coverage,
    graph: &Csr,
    scheduler: &mut dyn OneShotScheduler,
    max_slots: usize,
) -> ResilientSchedule {
    let run = covering_schedule_with(
        deployment,
        coverage,
        graph,
        scheduler,
        &McsOptions::new().max_slots(max_slots).resilient(),
    )
    .expect("resilient runs cannot fail");
    ResilientSchedule {
        schedule: run.schedule,
        repaired_pairs: run.repaired_pairs,
        crashed_dropped: run.crashed_dropped,
        abandoned_tags: run.abandoned_tags,
    }
}

fn reference_resilient(
    deployment: &Deployment,
    coverage: &Coverage,
    graph: &Csr,
    scheduler: &mut dyn OneShotScheduler,
    max_slots: usize,
) -> ResilientSchedule {
    let mut unread = TagSet::all_unread(deployment.n_tags());
    let uncoverable: Vec<TagId> = (0..deployment.n_tags())
        .filter(|&t| !coverage.is_coverable(t))
        .collect();
    let mut slots = Vec::new();
    let coverable_total = coverage.coverable_count();
    let mut served_total = 0usize;
    let mut repaired_pairs = 0usize;
    let mut crashed_dropped = 0usize;
    let mut stalled = false;
    while served_total < coverable_total && !stalled && slots.len() < max_slots {
        let mut weights = WeightEvaluator::new(coverage);
        let input = OneShotInput::new(deployment, coverage, graph, &unread);
        let mut active = scheduler.schedule(&input);
        let crashed = scheduler.crashed_readers();
        if !crashed.is_empty() {
            let before = active.len();
            active.retain(|v| !crashed.contains(v));
            crashed_dropped += before - active.len();
        }
        loop {
            let audit = audit_activation(deployment, coverage, &active, &unread);
            if audit.is_feasible() {
                break;
            }
            let (a, b) = audit.rtc_pairs[0];
            let (wa, wb) = (
                weights.singleton_weight(a, &unread),
                weights.singleton_weight(b, &unread),
            );
            let victim = if wa <= wb { a } else { b };
            active.retain(|&u| u != victim);
            repaired_pairs += 1;
        }
        let mut served = weights.well_covered(&active, &unread);
        let mut fallback = false;
        if served.is_empty() {
            let best = (0..deployment.n_readers())
                .filter(|v| !crashed.contains(v))
                .max_by_key(|&v| (weights.singleton_weight(v, &unread), std::cmp::Reverse(v)));
            match best {
                Some(best) => {
                    active = vec![best];
                    served = weights.well_covered(&active, &unread);
                    fallback = true;
                }
                None => served = Vec::new(),
            }
            if served.is_empty() {
                stalled = true;
                continue;
            }
        }
        unread.mark_all_read(&served);
        served_total += served.len();
        slots.push(SlotRecord {
            active,
            served,
            fallback,
        });
    }
    let abandoned_tags: Vec<TagId> = (0..deployment.n_tags())
        .filter(|&t| coverage.is_coverable(t) && unread.is_unread(t))
        .collect();
    ResilientSchedule {
        schedule: CoveringSchedule { slots, uncoverable },
        repaired_pairs,
        crashed_dropped,
        abandoned_tags,
    }
}

/// Wraps a scheduler with a fixed crash-stop set (claimed readers stay in
/// the returned activation — the loop must strip them).
struct Crashy {
    inner: Box<dyn OneShotScheduler>,
    crashed: Vec<ReaderId>,
}

impl OneShotScheduler for Crashy {
    fn name(&self) -> &'static str {
        "crashy"
    }
    fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId> {
        self.inner.schedule(input)
    }
    fn crashed_readers(&self) -> Vec<ReaderId> {
        self.crashed.clone()
    }
    fn take_scratch_allocations(&mut self) -> u64 {
        self.inner.take_scratch_allocations()
    }
}

/// A scheduler that never proposes anything, driving every slot through
/// the fallback queue — maximal stress for the lazy heap.
struct Silent;

impl OneShotScheduler for Silent {
    fn name(&self) -> &'static str {
        "silent"
    }
    fn schedule(&mut self, _input: &OneShotInput<'_>) -> Vec<ReaderId> {
        Vec::new()
    }
}

const KINDS: [AlgorithmKind; 4] = [
    AlgorithmKind::LocalGreedy,
    AlgorithmKind::HillClimbing,
    AlgorithmKind::Colorwave,
    AlgorithmKind::Ptas,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole contract: the lazy-greedy engine reproduces the eager
    /// reference schedule bit for bit, across deployments, radius mixes
    /// and schedulers.
    #[test]
    fn lazy_engine_matches_eager_reference(
        seed in 0u64..1000,
        n_readers in 8usize..36,
        li in 8u32..18,
        lr in 4u32..9,
        kind_idx in 0usize..KINDS.len(),
    ) {
        let kind = KINDS[kind_idx];
        let d = scenario(n_readers, f64::from(li), f64::from(lr)).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let reference =
            reference_covering_schedule(&d, &c, &g, make_scheduler(kind, seed).as_mut(), 10_000);
        let optimized =
            engine_schedule(&d, &c, &g, make_scheduler(kind, seed).as_mut(), 10_000);
        prop_assert_eq!(reference, optimized, "{:?} seed {}", kind, seed);
    }

    /// Same contract for the crash-tolerant loop, across random crash
    /// sets (including readers the inner scheduler keeps claiming).
    #[test]
    fn resilient_engine_matches_eager_reference(
        seed in 0u64..1000,
        n_readers in 8usize..30,
        li in 8u32..16,
        lr in 4u32..8,
        kind_idx in 0usize..KINDS.len(),
        crashed in proptest::collection::vec(0usize..30, 0..6),
    ) {
        let kind = KINDS[kind_idx];
        let d = scenario(n_readers, f64::from(li), f64::from(lr)).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let crashed: Vec<ReaderId> = crashed.into_iter().map(|v| v % n_readers).collect();
        let mut a = Crashy { inner: make_scheduler(kind, seed), crashed: crashed.clone() };
        let mut b = Crashy { inner: make_scheduler(kind, seed), crashed };
        let reference = reference_resilient(&d, &c, &g, &mut a, 5_000);
        let optimized = engine_resilient(&d, &c, &g, &mut b, 5_000);
        prop_assert_eq!(reference, optimized, "{:?} seed {}", kind, seed);
    }

    /// Fallback-only runs exercise the lazy queue on every slot.
    #[test]
    fn fallback_only_runs_match(
        seed in 0u64..1000,
        n_readers in 2usize..24,
        lr in 3u32..9,
    ) {
        let d = scenario(n_readers, 12.0, f64::from(lr)).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let reference = reference_covering_schedule(&d, &c, &g, &mut Silent, 100_000);
        let optimized = engine_schedule(&d, &c, &g, &mut Silent, 100_000);
        prop_assert_eq!(&reference, &optimized);
        let sched = optimized.unwrap();
        prop_assert_eq!(sched.fallback_slots(), sched.size());
    }

    /// Schedulers must not change their answer when the driver hands them
    /// precomputed singleton weights.
    #[test]
    fn singleton_weights_do_not_change_schedules(
        seed in 0u64..1000,
        n_readers in 8usize..36,
        read_tags in proptest::collection::vec(0usize..200, 0..40),
        kind_idx in 0usize..KINDS.len(),
    ) {
        let kind = KINDS[kind_idx];
        let d = scenario(n_readers, 13.0, 6.0).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let mut unread = TagSet::all_unread(d.n_tags());
        for t in read_tags {
            unread.mark_read(t % d.n_tags());
        }
        let singleton: Vec<usize> =
            WeightEvaluator::new(&c).all_singleton_weights(&unread);
        let plain = OneShotInput::new(&d, &c, &g, &unread);
        let hinted = OneShotInput::builder(&d, &c, &g)
            .unread(&unread)
            .singleton_weights(&singleton)
            .build();
        let a = make_scheduler(kind, seed).schedule(&plain);
        let b = make_scheduler(kind, seed).schedule(&hinted);
        prop_assert_eq!(a, b, "{:?} seed {}", kind, seed);
    }

    /// The par facade is chunk-count invisible: 1, 2, several and
    /// pool-many chunks agree for order-preserving maps and index argmax.
    /// Chunk boundaries snap to `par::CHUNK_ALIGN` multiples, so odd chunk
    /// counts over non-aligned lengths exercise short and empty tails.
    #[test]
    fn par_facade_is_chunk_count_invisible(
        items in proptest::collection::vec(0u64..1_000_000, 0..400),
    ) {
        let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761) >> 7).collect();
        for chunks in [Some(1), Some(2), Some(3), Some(5), None] {
            let got = par::map_chunked(&items, chunks, |&x| x.wrapping_mul(2654435761) >> 7);
            prop_assert_eq!(&got, &expect, "chunks {:?}", chunks);
        }
        let n = items.len();
        let key = |i: usize| (items[i] % 97 != 0).then(|| items[i] % 13);
        let expect_max = par::argmax_chunked(n, Some(1), 0, key);
        for chunks in [Some(1), Some(2), Some(3), Some(5), None] {
            // min_work of usize::MAX forces the parallel path even for
            // tiny inputs.
            let got = par::argmax_chunked(n, chunks, usize::MAX, key);
            prop_assert_eq!(got, expect_max, "chunks {:?}", chunks);
        }
    }

    /// The packed-bitset scoring layer agrees with the eager per-tag
    /// evaluator on every quantity the drivers consume: set weight, the
    /// well-covered tag list (same order), all singleton weights, and the
    /// popcount add-delta `Δ(v) = w(S ∪ {v}) − w(S)`.
    #[test]
    fn bitset_layer_matches_eager_evaluator(
        seed in 0u64..1000,
        n_readers in 4usize..32,
        read_tags in proptest::collection::vec(0usize..300, 0..60),
        active_sel in proptest::collection::vec(0usize..32, 0..10),
    ) {
        let d = scenario(n_readers, 12.0, 6.0).generate(seed);
        let c = Coverage::build(&d);
        let mut unread = TagSet::all_unread(d.n_tags());
        for t in read_tags {
            unread.mark_read(t % d.n_tags());
        }
        let mut active: Vec<ReaderId> =
            active_sel.into_iter().map(|v| v % n_readers).collect();
        active.sort_unstable();
        active.dedup();
        let rows = CoverageRows::build(&c);
        let mut planes = PlaneScratch::new();
        planes.ensure(rows.n_words());
        planes.clear();
        for &v in &active {
            planes.add(&rows, v);
        }
        let mut eager = WeightEvaluator::new(&c);
        prop_assert_eq!(planes.weight(unread.words()), eager.weight(&active, &unread));
        let mut got = Vec::new();
        planes.well_covered_into(unread.words(), &mut got);
        prop_assert_eq!(&got, &eager.well_covered(&active, &unread));
        prop_assert_eq!(
            rows.all_singleton_weights(&unread),
            eager.all_singleton_weights(&unread)
        );
        let base = eager.weight(&active, &unread) as isize;
        for v in 0..n_readers {
            if active.contains(&v) {
                continue;
            }
            let mut with_v = active.clone();
            with_v.push(v);
            let expect = eager.weight(&with_v, &unread) as isize - base;
            prop_assert_eq!(
                planes.delta_if_added(&rows, v, unread.words()),
                expect,
                "reader {}",
                v
            );
        }
    }

    /// Live-row compaction is invisible downstream: planes built from
    /// rows compacted against *any* intermediate unread snapshot extract
    /// the same well-covered set and weight against the current unread
    /// words as planes built from the pristine rows — the positions a
    /// compaction drops are exactly the ones the final intersection
    /// zeroes. Compacted rows must also stay structurally sound (counts
    /// match popcounts, incidences shrink monotonically).
    #[test]
    fn row_compaction_never_changes_extraction(
        seed in 0u64..1000,
        n_readers in 4usize..32,
        early_read in proptest::collection::vec(0usize..300, 0..80),
        late_read in proptest::collection::vec(0usize..300, 0..80),
        active_sel in proptest::collection::vec(0usize..32, 0..12),
    ) {
        let d = scenario(n_readers, 12.0, 6.0).generate(seed);
        let c = Coverage::build(&d);
        // Snapshot the compaction happens against…
        let mut snapshot = TagSet::all_unread(d.n_tags());
        for &t in &early_read {
            snapshot.mark_read(t % d.n_tags());
        }
        // …and the (further-read) unread set extraction runs against.
        let mut now = snapshot.clone();
        for &t in &late_read {
            now.mark_read(t % d.n_tags());
        }
        let mut active: Vec<ReaderId> =
            active_sel.into_iter().map(|v| v % n_readers).collect();
        active.sort_unstable();
        active.dedup();
        let pristine = CoverageRows::build(&c);
        let mut compacted = pristine.clone();
        let before = compacted.incidences();
        let live = compacted.retain_unread(snapshot.words());
        prop_assert_eq!(live, compacted.incidences(), "returned live count must match");
        prop_assert!(live <= before, "compaction can only shrink");
        let extract = |rows: &CoverageRows| {
            let mut planes = PlaneScratch::new();
            planes.ensure(rows.n_words());
            planes.add_all(rows, &active);
            let mut out = Vec::new();
            planes.well_covered_into(now.words(), &mut out);
            (planes.weight(now.words()), out)
        };
        prop_assert_eq!(extract(&pristine), extract(&compacted));
    }

    /// The radius-0/1 fast paths of `ball_into` agree with the generic
    /// BFS on the same alive-restricted graph, and with a from-scratch
    /// reference BFS at every radius.
    #[test]
    fn hop_balls_match_reference_bfs(
        seed in 0u64..1000,
        n_readers in 4usize..40,
        dead_sel in proptest::collection::vec(0usize..40, 0..20),
        r in 0u32..4,
    ) {
        let d = scenario(n_readers, 14.0, 6.0).generate(seed);
        let g = interference_graph(&d);
        let mut alive = AliveSet::all_alive(n_readers);
        for v in dead_sel {
            alive.kill(v % n_readers);
        }
        let mut balls = BallScratch::new(n_readers);
        let mut out = Vec::new();
        for src in 0..n_readers {
            if !alive.get(src) {
                continue;
            }
            // Reference: textbook BFS over the alive-induced subgraph.
            let mut dist = vec![u32::MAX; n_readers];
            dist[src] = 0;
            let mut queue = std::collections::VecDeque::from([src]);
            while let Some(v) = queue.pop_front() {
                if dist[v] == r {
                    continue;
                }
                for &t in g.neighbors(v) {
                    let t = t as usize;
                    if alive.get(t) && dist[t] == u32::MAX {
                        dist[t] = dist[v] + 1;
                        queue.push_back(t);
                    }
                }
            }
            let expect: Vec<usize> =
                (0..n_readers).filter(|&v| dist[v] != u32::MAX).collect();
            balls.ball_into(&g, src, r, &alive, &mut out);
            prop_assert_eq!(&out, &expect, "src {} r {}", src, r);
        }
    }

    /// The column-parallel lane merge is partition-invisible: any split
    /// of the active set across any number of lanes, merged in lane
    /// order, equals the sequential plane build bit for bit — including
    /// lanes left completely empty.
    #[test]
    fn lane_merge_matches_sequential_build(
        seed in 0u64..1000,
        n_readers in 4usize..32,
        active_sel in proptest::collection::vec(0usize..32, 0..16),
        n_lanes in 1usize..5,
    ) {
        let d = scenario(n_readers, 12.0, 6.0).generate(seed);
        let c = Coverage::build(&d);
        let rows = CoverageRows::build(&c);
        let mut active: Vec<ReaderId> =
            active_sel.into_iter().map(|v| v % n_readers).collect();
        active.sort_unstable();
        active.dedup();
        let mut sequential = PlaneScratch::new();
        sequential.ensure(rows.n_words());
        sequential.add_all(&rows, &active);
        let mut lanes: Vec<PlaneScratch> = vec![PlaneScratch::new(); n_lanes];
        let chunk = active.len().div_ceil(n_lanes).max(1);
        par::for_each_state(&mut lanes, |i, lane| {
            lane.ensure(rows.n_words());
            let lo = (i * chunk).min(active.len());
            let hi = ((i + 1) * chunk).min(active.len());
            lane.add_all(&rows, &active[lo..hi]);
        });
        let mut merged = PlaneScratch::new();
        merged.ensure(rows.n_words());
        merged.make_dense();
        let lane_planes: Vec<(&[u64], &[u64])> =
            lanes.iter().map(|l| l.planes()).collect();
        par::merge_planes(merged.planes_mut(), &lane_planes);
        prop_assert_eq!(sequential.planes(), merged.planes());
        // And the merged scratch extracts identically.
        let unread = TagSet::all_unread(d.n_tags());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        sequential.well_covered_into(unread.words(), &mut a);
        merged.well_covered_into(unread.words(), &mut b);
        prop_assert_eq!(a, b);
    }

    /// Dense mode is a strategy, not a semantics: forcing it (or letting
    /// `add_all` choose it) yields the same planes and extraction as
    /// sparse per-reader adds, and the scratch survives mode round-trips
    /// across reuse.
    #[test]
    fn dense_and_sparse_plane_modes_agree(
        seed in 0u64..1000,
        n_readers in 4usize..32,
        active_sel in proptest::collection::vec(0usize..32, 0..12),
        read_tags in proptest::collection::vec(0usize..300, 0..60),
    ) {
        let d = scenario(n_readers, 12.0, 6.0).generate(seed);
        let c = Coverage::build(&d);
        let rows = CoverageRows::build(&c);
        let mut unread = TagSet::all_unread(d.n_tags());
        for t in read_tags {
            unread.mark_read(t % d.n_tags());
        }
        let mut active: Vec<ReaderId> =
            active_sel.into_iter().map(|v| v % n_readers).collect();
        active.sort_unstable();
        active.dedup();
        let mut sparse = PlaneScratch::new();
        sparse.ensure(rows.n_words());
        for &v in &active {
            sparse.add(&rows, v);
        }
        let mut dense = PlaneScratch::new();
        dense.ensure(rows.n_words());
        dense.make_dense();
        for &v in &active {
            dense.add(&rows, v);
        }
        prop_assert_eq!(sparse.planes(), dense.planes());
        prop_assert_eq!(sparse.weight(unread.words()), dense.weight(unread.words()));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        sparse.well_covered_into(unread.words(), &mut a);
        dense.well_covered_into(unread.words(), &mut b);
        prop_assert_eq!(&a, &b);
        // Mode round-trip: a dense clear resets the planes completely, so
        // a sparse rebuild on the same scratch matches a fresh one.
        dense.clear();
        for &v in &active {
            dense.add(&rows, v);
        }
        prop_assert_eq!(sparse.planes(), dense.planes());
    }
}

/// Per-slot scratch allocation must be flat, observed through the
/// `mcs.slot.alloc` histogram on the resilient (audit + crash-strip)
/// path: warmup confined to the first slot of a cold run, zero on every
/// slot of a warm rerun — and the warm rerun byte-identical.
#[test]
fn scratch_allocation_is_flat_across_slots_on_the_resilient_path() {
    let d = scenario(24, 12.0, 6.0).generate(9);
    let c = Coverage::build(&d);
    let g = interference_graph(&d);
    let mut s = Crashy {
        inner: Box::new(rfid_core::LocalGreedy::default()),
        crashed: vec![1, 3],
    };
    let rec = rfid_obs::Recorder::new();
    let run = covering_schedule_with(
        &d,
        &c,
        &g,
        &mut s,
        &McsOptions::new()
            .max_slots(10_000)
            .resilient()
            .subscriber(&rec),
    )
    .unwrap();
    assert!(
        run.schedule.size() > 1,
        "need multiple slots to audit flatness"
    );
    let snap = rec.snapshot();
    let h = &snap.histograms["mcs.slot.alloc"];
    assert_eq!(h.count, run.schedule.size() as u64);
    assert!(h.sum > 0, "a cold scheduler must warm its arena");
    assert_eq!(
        h.max, h.sum,
        "scratch growth must be confined to a single (the first) slot"
    );
    assert!(
        snap.counter("mcs.alloc") >= h.sum,
        "the mcs.alloc counter covers setup plus every slot"
    );
    // Warm rerun: same scheduler instance, fresh recorder.
    let rec2 = rfid_obs::Recorder::new();
    let rerun = covering_schedule_with(
        &d,
        &c,
        &g,
        &mut s,
        &McsOptions::new()
            .max_slots(10_000)
            .resilient()
            .subscriber(&rec2),
    )
    .unwrap();
    assert_eq!(
        rerun.schedule, run.schedule,
        "warm rerun must be byte-identical"
    );
    let h2 = &rec2.snapshot().histograms["mcs.slot.alloc"];
    assert_eq!(h2.sum, 0, "a warm scheduler must not allocate in any slot");
}

/// Non-property pin: one mid-sized paper-default instance per scheduler,
/// engine vs reference, so a plain `cargo test` exercises the contract
/// even with a proptest stub that draws few cases.
#[test]
fn paper_default_instances_match_reference() {
    for kind in KINDS {
        for seed in [1u64, 7, 42] {
            let d = Scenario::paper_evaluation(14.0, 6.0).generate(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let reference = reference_covering_schedule(
                &d,
                &c,
                &g,
                make_scheduler(kind, seed).as_mut(),
                10_000,
            );
            let optimized =
                engine_schedule(&d, &c, &g, make_scheduler(kind, seed).as_mut(), 10_000);
            assert_eq!(reference, optimized, "{kind:?} seed {seed}");
        }
    }
}
