//! Differential equivalence tests for the performance work (DESIGN.md §7).
//!
//! The lazy-greedy MCS engine (incremental singleton weights, lazy
//! fallback queue, scratch reuse, sorted seed cursors, parallel scoring)
//! is required to be **bit-identical** to the original eager per-slot
//! rescan semantics. These tests pin that contract:
//!
//! * a from-scratch reference implementation of the covering-schedule
//!   loops (fresh evaluator and `O(n)` `max_by_key` fallback scan every
//!   slot, no precomputed singleton weights) must produce *equal*
//!   `CoveringSchedule` / `ResilientSchedule` values across random
//!   deployments, radius mixes, schedulers and crash sets;
//! * every scheduler must return the same set with and without the
//!   driver-provided singleton weights attached to its input;
//! * the `rfid_core::par` facade must be chunk-count invisible: 1, 2 and
//!   pool-many chunks agree element-wise.

use proptest::prelude::*;
use rfid_core::{
    covering_schedule_with, make_scheduler, par, AlgorithmKind, CoveringSchedule, McsOptions,
    OneShotInput, OneShotScheduler, ResilientSchedule, ScheduleError, SlotRecord,
};
use rfid_graph::Csr;
use rfid_model::interference::interference_graph;
use rfid_model::scenario::{Scenario, ScenarioKind};
use rfid_model::{
    audit_activation, Coverage, Deployment, RadiusModel, ReaderId, TagId, TagSet, WeightEvaluator,
};

fn scenario(n_readers: usize, li: f64, lr: f64) -> Scenario {
    Scenario {
        kind: ScenarioKind::UniformRandom,
        n_readers,
        n_tags: n_readers * 8,
        region_side: 22.0 * (n_readers as f64).sqrt(),
        radius_model: RadiusModel::PoissonPair {
            lambda_interference: li,
            lambda_interrogation: lr,
        },
    }
}

/// The pre-optimisation greedy loop, verbatim semantics: fresh weight
/// evaluator each slot, eager `max_by_key` fallback over all readers.
fn reference_covering_schedule(
    deployment: &Deployment,
    coverage: &Coverage,
    graph: &Csr,
    scheduler: &mut dyn OneShotScheduler,
    max_slots: usize,
) -> Result<CoveringSchedule, ScheduleError> {
    let mut unread = TagSet::all_unread(deployment.n_tags());
    let uncoverable: Vec<TagId> = (0..deployment.n_tags())
        .filter(|&t| !coverage.is_coverable(t))
        .collect();
    let mut slots = Vec::new();
    let coverable_total = coverage.coverable_count();
    let mut served_total = 0usize;
    while served_total < coverable_total {
        if slots.len() >= max_slots {
            return Err(ScheduleError::SlotBudgetExhausted {
                max_slots,
                served: served_total,
                coverable: coverable_total,
            });
        }
        let mut weights = WeightEvaluator::new(coverage);
        let input = OneShotInput::new(deployment, coverage, graph, &unread);
        let mut active = scheduler.schedule(&input);
        let mut served = weights.well_covered(&active, &unread);
        let mut fallback = false;
        if served.is_empty() {
            let stall = ScheduleError::NoProgress {
                served: served_total,
                coverable: coverable_total,
            };
            let best = (0..deployment.n_readers())
                .max_by_key(|&v| (weights.singleton_weight(v, &unread), std::cmp::Reverse(v)))
                .ok_or(stall.clone())?;
            active = vec![best];
            served = weights.well_covered(&active, &unread);
            fallback = true;
            if served.is_empty() {
                return Err(stall);
            }
        }
        unread.mark_all_read(&served);
        served_total += served.len();
        slots.push(SlotRecord {
            active,
            served,
            fallback,
        });
    }
    Ok(CoveringSchedule { slots, uncoverable })
}

/// The pre-optimisation resilient loop, verbatim semantics.
/// The optimized strict engine through the unified entry point, shaped
/// like the reference for direct comparison.
fn engine_schedule(
    deployment: &Deployment,
    coverage: &Coverage,
    graph: &Csr,
    scheduler: &mut dyn OneShotScheduler,
    max_slots: usize,
) -> Result<CoveringSchedule, ScheduleError> {
    covering_schedule_with(
        deployment,
        coverage,
        graph,
        scheduler,
        &McsOptions::new().max_slots(max_slots),
    )
    .map(|run| run.schedule)
}

/// The optimized resilient engine through the unified entry point.
fn engine_resilient(
    deployment: &Deployment,
    coverage: &Coverage,
    graph: &Csr,
    scheduler: &mut dyn OneShotScheduler,
    max_slots: usize,
) -> ResilientSchedule {
    let run = covering_schedule_with(
        deployment,
        coverage,
        graph,
        scheduler,
        &McsOptions::new().max_slots(max_slots).resilient(),
    )
    .expect("resilient runs cannot fail");
    ResilientSchedule {
        schedule: run.schedule,
        repaired_pairs: run.repaired_pairs,
        crashed_dropped: run.crashed_dropped,
        abandoned_tags: run.abandoned_tags,
    }
}

fn reference_resilient(
    deployment: &Deployment,
    coverage: &Coverage,
    graph: &Csr,
    scheduler: &mut dyn OneShotScheduler,
    max_slots: usize,
) -> ResilientSchedule {
    let mut unread = TagSet::all_unread(deployment.n_tags());
    let uncoverable: Vec<TagId> = (0..deployment.n_tags())
        .filter(|&t| !coverage.is_coverable(t))
        .collect();
    let mut slots = Vec::new();
    let coverable_total = coverage.coverable_count();
    let mut served_total = 0usize;
    let mut repaired_pairs = 0usize;
    let mut crashed_dropped = 0usize;
    let mut stalled = false;
    while served_total < coverable_total && !stalled && slots.len() < max_slots {
        let mut weights = WeightEvaluator::new(coverage);
        let input = OneShotInput::new(deployment, coverage, graph, &unread);
        let mut active = scheduler.schedule(&input);
        let crashed = scheduler.crashed_readers();
        if !crashed.is_empty() {
            let before = active.len();
            active.retain(|v| !crashed.contains(v));
            crashed_dropped += before - active.len();
        }
        loop {
            let audit = audit_activation(deployment, coverage, &active, &unread);
            if audit.is_feasible() {
                break;
            }
            let (a, b) = audit.rtc_pairs[0];
            let (wa, wb) = (
                weights.singleton_weight(a, &unread),
                weights.singleton_weight(b, &unread),
            );
            let victim = if wa <= wb { a } else { b };
            active.retain(|&u| u != victim);
            repaired_pairs += 1;
        }
        let mut served = weights.well_covered(&active, &unread);
        let mut fallback = false;
        if served.is_empty() {
            let best = (0..deployment.n_readers())
                .filter(|v| !crashed.contains(v))
                .max_by_key(|&v| (weights.singleton_weight(v, &unread), std::cmp::Reverse(v)));
            match best {
                Some(best) => {
                    active = vec![best];
                    served = weights.well_covered(&active, &unread);
                    fallback = true;
                }
                None => served = Vec::new(),
            }
            if served.is_empty() {
                stalled = true;
                continue;
            }
        }
        unread.mark_all_read(&served);
        served_total += served.len();
        slots.push(SlotRecord {
            active,
            served,
            fallback,
        });
    }
    let abandoned_tags: Vec<TagId> = (0..deployment.n_tags())
        .filter(|&t| coverage.is_coverable(t) && unread.is_unread(t))
        .collect();
    ResilientSchedule {
        schedule: CoveringSchedule { slots, uncoverable },
        repaired_pairs,
        crashed_dropped,
        abandoned_tags,
    }
}

/// Wraps a scheduler with a fixed crash-stop set (claimed readers stay in
/// the returned activation — the loop must strip them).
struct Crashy {
    inner: Box<dyn OneShotScheduler>,
    crashed: Vec<ReaderId>,
}

impl OneShotScheduler for Crashy {
    fn name(&self) -> &'static str {
        "crashy"
    }
    fn schedule(&mut self, input: &OneShotInput<'_>) -> Vec<ReaderId> {
        self.inner.schedule(input)
    }
    fn crashed_readers(&self) -> Vec<ReaderId> {
        self.crashed.clone()
    }
}

/// A scheduler that never proposes anything, driving every slot through
/// the fallback queue — maximal stress for the lazy heap.
struct Silent;

impl OneShotScheduler for Silent {
    fn name(&self) -> &'static str {
        "silent"
    }
    fn schedule(&mut self, _input: &OneShotInput<'_>) -> Vec<ReaderId> {
        Vec::new()
    }
}

const KINDS: [AlgorithmKind; 4] = [
    AlgorithmKind::LocalGreedy,
    AlgorithmKind::HillClimbing,
    AlgorithmKind::Colorwave,
    AlgorithmKind::Ptas,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tentpole contract: the lazy-greedy engine reproduces the eager
    /// reference schedule bit for bit, across deployments, radius mixes
    /// and schedulers.
    #[test]
    fn lazy_engine_matches_eager_reference(
        seed in 0u64..1000,
        n_readers in 8usize..36,
        li in 8u32..18,
        lr in 4u32..9,
        kind_idx in 0usize..KINDS.len(),
    ) {
        let kind = KINDS[kind_idx];
        let d = scenario(n_readers, f64::from(li), f64::from(lr)).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let reference =
            reference_covering_schedule(&d, &c, &g, make_scheduler(kind, seed).as_mut(), 10_000);
        let optimized =
            engine_schedule(&d, &c, &g, make_scheduler(kind, seed).as_mut(), 10_000);
        prop_assert_eq!(reference, optimized, "{:?} seed {}", kind, seed);
    }

    /// Same contract for the crash-tolerant loop, across random crash
    /// sets (including readers the inner scheduler keeps claiming).
    #[test]
    fn resilient_engine_matches_eager_reference(
        seed in 0u64..1000,
        n_readers in 8usize..30,
        li in 8u32..16,
        lr in 4u32..8,
        kind_idx in 0usize..KINDS.len(),
        crashed in proptest::collection::vec(0usize..30, 0..6),
    ) {
        let kind = KINDS[kind_idx];
        let d = scenario(n_readers, f64::from(li), f64::from(lr)).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let crashed: Vec<ReaderId> = crashed.into_iter().map(|v| v % n_readers).collect();
        let mut a = Crashy { inner: make_scheduler(kind, seed), crashed: crashed.clone() };
        let mut b = Crashy { inner: make_scheduler(kind, seed), crashed };
        let reference = reference_resilient(&d, &c, &g, &mut a, 5_000);
        let optimized = engine_resilient(&d, &c, &g, &mut b, 5_000);
        prop_assert_eq!(reference, optimized, "{:?} seed {}", kind, seed);
    }

    /// Fallback-only runs exercise the lazy queue on every slot.
    #[test]
    fn fallback_only_runs_match(
        seed in 0u64..1000,
        n_readers in 2usize..24,
        lr in 3u32..9,
    ) {
        let d = scenario(n_readers, 12.0, f64::from(lr)).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let reference = reference_covering_schedule(&d, &c, &g, &mut Silent, 100_000);
        let optimized = engine_schedule(&d, &c, &g, &mut Silent, 100_000);
        prop_assert_eq!(&reference, &optimized);
        let sched = optimized.unwrap();
        prop_assert_eq!(sched.fallback_slots(), sched.size());
    }

    /// Schedulers must not change their answer when the driver hands them
    /// precomputed singleton weights.
    #[test]
    fn singleton_weights_do_not_change_schedules(
        seed in 0u64..1000,
        n_readers in 8usize..36,
        read_tags in proptest::collection::vec(0usize..200, 0..40),
        kind_idx in 0usize..KINDS.len(),
    ) {
        let kind = KINDS[kind_idx];
        let d = scenario(n_readers, 13.0, 6.0).generate(seed);
        let c = Coverage::build(&d);
        let g = interference_graph(&d);
        let mut unread = TagSet::all_unread(d.n_tags());
        for t in read_tags {
            unread.mark_read(t % d.n_tags());
        }
        let singleton: Vec<usize> =
            WeightEvaluator::new(&c).all_singleton_weights(&unread);
        let plain = OneShotInput::new(&d, &c, &g, &unread);
        let hinted = OneShotInput::builder(&d, &c, &g)
            .unread(&unread)
            .singleton_weights(&singleton)
            .build();
        let a = make_scheduler(kind, seed).schedule(&plain);
        let b = make_scheduler(kind, seed).schedule(&hinted);
        prop_assert_eq!(a, b, "{:?} seed {}", kind, seed);
    }

    /// The par facade is chunk-count invisible: 1, 2 and pool-many chunks
    /// agree for order-preserving maps and index argmax.
    #[test]
    fn par_facade_is_chunk_count_invisible(
        items in proptest::collection::vec(0u64..1_000_000, 0..400),
    ) {
        let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761) >> 7).collect();
        for chunks in [Some(1), Some(2), None] {
            let got = par::map_chunked(&items, chunks, |&x| x.wrapping_mul(2654435761) >> 7);
            prop_assert_eq!(&got, &expect, "chunks {:?}", chunks);
        }
        let n = items.len();
        let key = |i: usize| (items[i] % 97 != 0).then(|| items[i] % 13);
        let expect_max = par::argmax_chunked(n, Some(1), 0, key);
        for chunks in [Some(1), Some(2), None] {
            // min_work of usize::MAX forces the parallel path even for
            // tiny inputs.
            let got = par::argmax_chunked(n, chunks, usize::MAX, key);
            prop_assert_eq!(got, expect_max, "chunks {:?}", chunks);
        }
    }
}

/// Non-property pin: one mid-sized paper-default instance per scheduler,
/// engine vs reference, so a plain `cargo test` exercises the contract
/// even with a proptest stub that draws few cases.
#[test]
fn paper_default_instances_match_reference() {
    for kind in KINDS {
        for seed in [1u64, 7, 42] {
            let d = Scenario::paper_evaluation(14.0, 6.0).generate(seed);
            let c = Coverage::build(&d);
            let g = interference_graph(&d);
            let reference = reference_covering_schedule(
                &d,
                &c,
                &g,
                make_scheduler(kind, seed).as_mut(),
                10_000,
            );
            let optimized =
                engine_schedule(&d, &c, &g, make_scheduler(kind, seed).as_mut(), 10_000);
            assert_eq!(reference, optimized, "{kind:?} seed {seed}");
        }
    }
}
